"""Event-kernel micro-benchmarks: dispatch, queue churn, message allocation.

Conventional pytest-benchmark timings of the hot-path substrates the
trajectory harness's ``probe_sim_kernel`` / ``probe_kernel`` summarise into
BENCH_<n>.json numbers: Timeout-object dispatch vs the flat numeric-yield
timer, :class:`~repro.sim.queues.SchedulerQueue` schedule/cancel/pop churn,
and RemoteOpResult construction raw vs recycled through a
:class:`~repro.core.messages.MessagePool`.
"""

from repro.core.messages import MessagePool, RemoteOpResult
from repro.sim.environment import Environment
from repro.sim.queues import SchedulerQueue

N_EVENTS = 20_000
N_CHURN = 20_000
N_MSGS = 10_000


def _run_lanes(ticker_factory) -> Environment:
    env = Environment()
    for _ in range(4):
        env.process(ticker_factory(env, N_EVENTS // 4))
    env.run()
    return env


def test_bench_event_dispatch_timeout_objects(benchmark):
    """The classic path: one Timeout event allocated per timer step."""

    def ticker(env, n):
        def gen():
            for _ in range(n):
                yield env.timeout(0.01)
        return gen()

    env = benchmark(_run_lanes, ticker)
    assert env.now > 0


def test_bench_event_dispatch_flat_timers(benchmark):
    """The flat path: ``yield 0.01`` reuses one tick event per process."""

    def ticker(env, n):
        def gen():
            for _ in range(n):
                yield 0.01
        return gen()

    env = benchmark(_run_lanes, ticker)
    assert env.now > 0


def test_bench_scheduler_queue_churn(benchmark):
    """Timer-wheel usage: schedule bursts with retractions and pops."""

    def churn():
        q = SchedulerQueue()
        handles = []
        for i in range(N_CHURN):
            handles.append(q.schedule(float(i % 97), i))
            if i % 3 == 2:
                q.cancel(handles[i - 2])
            if i % 7 == 6:
                q.pop()
        drained = 0
        while len(q):
            q.pop()
            drained += 1
        return drained

    drained = benchmark(churn)
    assert drained > 0


def _make_messages(pool):
    for i in range(N_MSGS):
        if pool is None:
            RemoteOpResult(
                tid="t", site="s", op_index=i, attempt=0,
                acquired=True, executed=True, deadlock=False, failed=False,
            )
        else:
            msg = pool.acquire(
                RemoteOpResult,
                tid="t", site="s", op_index=i, attempt=0,
                acquired=True, executed=True, deadlock=False, failed=False,
            )
            pool.release(msg)


def test_bench_message_alloc_raw(benchmark):
    benchmark(_make_messages, None)


def test_bench_message_alloc_pooled(benchmark):
    pool = MessagePool()
    benchmark(_make_messages, pool)
    assert pool.hits > 0
