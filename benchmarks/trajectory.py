"""Benchmark trajectory harness — runnable entry point.

The harness itself lives in :mod:`repro.experiments.trajectory` so the CLI
(``python -m repro bench``) and the tests can import it without this
directory on the path; this file is the canonical way to run it straight
from a checkout::

    PYTHONPATH=src python benchmarks/trajectory.py                # BENCH_<n>.json
    PYTHONPATH=src python benchmarks/trajectory.py --features baseline
    PYTHONPATH=src python benchmarks/trajectory.py --check        # CI regression gate

Wall-clock probes honour ``REPRO_BENCH_ROUNDS`` (>= 3 enforced here) and
report best-of-rounds; simulated metrics are fixed-seed deterministic. See
``README.md`` § Performance for how to read the output files.
"""

from __future__ import annotations

import sys

from repro.experiments.trajectory import main

if __name__ == "__main__":
    sys.exit(main())
