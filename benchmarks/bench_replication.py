"""Replication sweep: read throughput scaling vs replication factor.

Primary-copy ROWA over fragmented XMark data: each fragment is placed at
``factor`` sites, reads run at the coordinator's nearest replica, writes
at the primary with synchronous commit-time propagation. Expected shape:
read-only throughput rises (and response time falls) with the factor,
while update-heavy columns pay the synchronization cost. Set
``REPRO_FULL=1`` for the denser grid.
"""

from repro.experiments import check_replication_sweep, replication_sweep

from .conftest import run_once


def test_replication_factor_vs_read_ratio(benchmark):
    sweep = run_once(benchmark, replication_sweep)
    print()
    print(sweep.render("tx_per_s"))
    print()
    print(sweep.render("response_ms"))
    for note in check_replication_sweep(sweep):
        print(" ", note)
