"""E6 — Fig. 12: throughput and concurrency degree over time.

250 transactions (50 clients x 5), 20 % updates, 4 sites, partial
replication. Paper shape: DTX commits its transactions in a small fraction
of the tree-lock protocol's completion time (218 tx in 1553 s vs 230 tx in
16500 s) with a visibly higher concurrency degree.
"""

from repro.experiments import check_fig12, fig12

from .conftest import run_once


def test_fig12_throughput_and_concurrency(benchmark):
    result = run_once(benchmark, fig12)
    print()
    print(result.render())
    peak = {
        proto: max(c for _, c in series) if series else 0
        for proto, series in result.concurrency.items()
    }
    print(f"  peak concurrency degree: {peak}")
    for note in check_fig12(result):
        print(" ", note)
