"""Ablation — deadlock-detector cadence.

The paper fixes an (unstated) detection period; this sweep shows the
trade-off it hides: a slow detector leaves deadlock victims (and their
waiters) blocked longer, inflating response times under update-heavy load,
while an aggressive detector adds WFG-collection message traffic.
"""

from repro.config import SystemConfig
from repro.experiments import ExperimentConfig, run_experiment
from repro.workload import WorkloadSpec

from .conftest import run_once

INTERVALS_MS = (10.0, 25.0, 100.0, 400.0)


def _sweep():
    out = {}
    for interval in INTERVALS_MS:
        cfg = ExperimentConfig(
            protocol="xdgl",
            n_sites=4,
            replication="partial",
            db_bytes=100_000,
            workload=WorkloadSpec(n_clients=30, update_tx_ratio=0.4),
            system=SystemConfig().with_(
                client_think_ms=1.0,
                detector_interval_ms=interval,
                detector_initial_delay_ms=interval / 2,
            ),
        )
        out[interval] = run_experiment(cfg)
    return out


def test_ablation_detector_interval(benchmark):
    runs = run_once(benchmark, _sweep)
    print()
    print("detector interval sweep (30 clients, 40% updates):")
    for interval, run in runs.items():
        print(
            f"  {interval:6.0f} ms: response={run.mean_response_ms():8.2f} ms  "
            f"deadlocks={run.total_deadlocks:3d}  sweeps={run.detector_sweeps:4d}  "
            f"messages={run.network_messages}"
        )
    fast, slow = runs[INTERVALS_MS[0]], runs[INTERVALS_MS[-1]]
    if slow.total_deadlocks > 0:
        # With any deadlocks present, slower detection costs response time.
        assert fast.mean_response_ms() <= slow.mean_response_ms()
    # An aggressive detector sweeps (and messages) more.
    assert fast.detector_sweeps > slow.detector_sweeps
