"""Hot-path sweep — wake policy x group-commit window.

Drives the *experiment runner* (the same `ExperimentConfig` machinery as
the figure sweeps) across both `wake_policy` settings and a group-commit
window grid, so the hot-path knobs are exercised end-to-end on a
realistic replicated XMark workload — not just on the trajectory
harness's synthetic probes. The trajectory harness
(`python -m repro bench`) remains the canonical BENCH_<n>.json yardstick;
this sweep rides the normal pytest-benchmark CI job.
"""

from repro.config import SystemConfig
from repro.experiments import ExperimentConfig, run_experiment
from repro.workload import WorkloadSpec

from .conftest import run_once

WAKE_POLICIES = ("broadcast", "targeted")
WINDOWS_MS = (0.0, 0.5)


def _sweep():
    out = {}
    for wake_policy in WAKE_POLICIES:
        for window in WINDOWS_MS:
            cfg = ExperimentConfig(
                protocol="xdgl",
                n_sites=4,
                replication="partial",
                db_bytes=24_000,
                workload=WorkloadSpec(
                    n_clients=12, tx_per_client=4, ops_per_tx=4,
                    update_tx_ratio=0.5,
                ),
                system=SystemConfig().with_(
                    client_think_ms=0.2,
                    replication_factor=3,
                    replica_read_policy="nearest",
                    replica_write_policy="primary",
                    wake_policy=wake_policy,
                    group_commit_window_ms=window,
                ),
                label=f"hotpath/{wake_policy}/w{window}",
            )
            out[(wake_policy, window)] = run_experiment(cfg)
    return out


def test_hotpath_sweep(benchmark):
    runs = run_once(benchmark, _sweep)
    print()
    print("hot-path sweep (12 clients, 50% update txs, factor-3 primary-copy):")
    for (wake_policy, window), run in runs.items():
        wakes = sum(s.waiter_wakes for s in run.site_stats.values())
        batches = sum(s.group_batches_sent for s in run.site_stats.values())
        print(
            f"  wake={wake_policy:9s} window={window:4.1f} ms: "
            f"committed={len(run.committed):3d}  "
            f"response={run.mean_response_ms():6.2f} ms  "
            f"wakes={wakes:4d}  messages={run.network_messages:5d}  "
            f"batches={batches}"
        )
    # Sanity: both policies complete the workload; targeted never wakes more.
    for window in WINDOWS_MS:
        done_b = len(runs[("broadcast", window)].committed)
        done_t = len(runs[("targeted", window)].committed)
        assert done_b > 0 and done_t > 0
        wakes_b = sum(
            s.waiter_wakes for s in runs[("broadcast", window)].site_stats.values()
        )
        wakes_t = sum(
            s.waiter_wakes for s in runs[("targeted", window)].site_stats.values()
        )
        assert wakes_t <= wakes_b
