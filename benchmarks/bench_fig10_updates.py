"""E3 — Fig. 10: response time and deadlocks vs update percentage.

50 clients, update-transaction share swept 20-60 % (20 % update operations
within each update transaction), partial replication. Paper shape: XDGL
response stays low while tree locks climb; XDGL shows *more* deadlocks (its
finer granularity admits more concurrency, hence more conflicts).
"""

from repro.experiments import check_fig10, fig10

from .conftest import run_once


def test_fig10_variation_in_update_percentage(benchmark):
    fig = run_once(benchmark, fig10)
    print()
    print(fig.render("response_ms"))
    print(fig.render("deadlocks", fmt="{:.0f}"))
    for note in check_fig10(fig):
        print(" ", note)
