"""Ablation — network latency sensitivity.

The paper proposes WAN evaluation as future work (§5). This sweep scales the
LAN latency toward WAN figures and shows how the synchronous
execute-at-every-replica design amplifies latency — the motivation for that
future work.
"""

from repro.config import NetworkConfig, SystemConfig
from repro.experiments import ExperimentConfig, run_experiment
from repro.workload import WorkloadSpec

from .conftest import run_once

LATENCIES_MS = (0.25, 1.0, 5.0, 20.0)


def _sweep():
    out = {}
    for latency in LATENCIES_MS:
        cfg = ExperimentConfig(
            protocol="xdgl",
            n_sites=4,
            replication="partial",
            db_bytes=100_000,
            workload=WorkloadSpec(n_clients=10, update_tx_ratio=0.2),
            system=SystemConfig().with_(
                client_think_ms=1.0,
                network=NetworkConfig(latency_ms=latency),
            ),
        )
        out[latency] = run_experiment(cfg)
    return out


def test_ablation_network_latency(benchmark):
    runs = run_once(benchmark, _sweep)
    print()
    print("network latency sweep (10 clients, 20% updates):")
    for latency, run in runs.items():
        print(
            f"  {latency:6.2f} ms: response={run.mean_response_ms():8.2f} ms  "
            f"committed={len(run.committed)}  deadlocks={run.total_deadlocks}"
        )
    resp = [runs[l].mean_response_ms() for l in LATENCIES_MS]
    assert resp == sorted(resp), f"response should grow with latency: {resp}"
    # WAN-scale latency should dominate: >5x the LAN response time.
    assert resp[-1] > 5 * resp[0]
