"""Ablation — lock granularity: XDGL vs Node2PL vs whole-document 2PL.

DESIGN.md calls out granularity as *the* design choice behind DTX's results.
This ablation runs the identical mixed workload under all three registered
protocols, adding the document-level baseline the figure benchmarks omit
(the paper mentions it as "a traditional technique ... complete lock on the
document" without plotting it).
"""

from repro.config import SystemConfig
from repro.experiments import ExperimentConfig, run_experiment
from repro.workload import WorkloadSpec, render_comparison

from .conftest import run_once

PROTOCOLS = ("xdgl", "node2pl", "doclock2pl")


def _run_all():
    runs = {}
    for protocol in PROTOCOLS:
        cfg = ExperimentConfig(
            protocol=protocol,
            n_sites=4,
            replication="partial",
            db_bytes=100_000,
            workload=WorkloadSpec(n_clients=20, update_tx_ratio=0.2),
            system=SystemConfig().with_(client_think_ms=1.0),
        )
        runs[protocol] = run_experiment(cfg)
    return runs


def test_ablation_lock_granularity(benchmark):
    runs = run_once(benchmark, _run_all)
    print()
    print(render_comparison("lock granularity ablation (20 clients, 20% updates)", runs))
    resp = {p: runs[p].mean_response_ms() for p in PROTOCOLS}
    # Finer granularity must win on response time.
    assert resp["xdgl"] < resp["node2pl"], resp
    assert resp["xdgl"] < resp["doclock2pl"], resp
    # Whole-document locking blocks operations far more often per op served
    # (deadlock *counts* are not monotone in granularity: one lock per
    # document makes crosswise document access a deadlock, so DocLock2PL can
    # out-deadlock XDGL despite admitting less concurrency).
    def blocked_ratio(run):
        blocked = sum(s.ops_blocked for s in run.site_stats.values())
        served = sum(s.ops_executed for s in run.site_stats.values())
        return blocked / max(1, served)

    assert blocked_ratio(runs["doclock2pl"]) > blocked_ratio(runs["xdgl"])
