"""E4 — Fig. 11(a): response time and deadlocks vs database size.

Base size swept over the paper's 50-200 MB range (scaled 400:1), 4 sites,
partial replication, 20 % update transactions. Paper shape: tree-lock
response grows with the base (more nodes => more locks) while XDGL, locking
a schema-sized DataGuide, stays well below.
"""

from repro.experiments import check_fig11a, fig11a

from .conftest import run_once


def test_fig11a_variation_in_base_size(benchmark):
    fig = run_once(benchmark, fig11a)
    print()
    print(fig.render("response_ms"))
    print(fig.render("deadlocks", fmt="{:.0f}"))
    for note in check_fig11a(fig):
        print(" ", note)
