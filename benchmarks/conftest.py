"""Shared benchmark helpers.

Figure benchmarks run whole experiment sweeps, so each is executed once per
session by default (``rounds=1``) — the numbers of interest are the
*simulated* metrics printed in the tables, not the harness wall time. Set
``REPRO_FULL=1`` for paper-density sweeps.

``REPRO_BENCH_ROUNDS`` opts into real wall-clock statistics: it raises the
pytest-benchmark round count so probes that *do* care about wall time (the
trajectory harness and ad-hoc investigations) get variance instead of a
single sample, without slowing the figure sweeps for everyone else.
"""

from __future__ import annotations

from repro.experiments.trajectory import bench_rounds as _bench_rounds


def bench_rounds(default: int = 1) -> int:
    """Rounds per benchmark: ``REPRO_BENCH_ROUNDS``, floored at ``default``.

    Single source of truth for the env parsing lives with the trajectory
    harness (which floors at 3 for its wall probes); the figure sweeps
    floor at 1 so they stay single-shot unless explicitly asked.
    """
    return _bench_rounds(minimum=default)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` under pytest-benchmark and return its result.

    Exactly once unless ``REPRO_BENCH_ROUNDS`` asks for more rounds.
    """
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=bench_rounds(), iterations=1
    )
