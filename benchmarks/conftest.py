"""Shared benchmark helpers.

Figure benchmarks run whole experiment sweeps, so each is executed exactly
once per session (``rounds=1``) — the numbers of interest are the *simulated*
metrics printed in the tables, not the harness wall time. Set ``REPRO_FULL=1``
for paper-density sweeps.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
