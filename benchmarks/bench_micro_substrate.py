"""Micro-benchmarks of the substrates: parser, XPath, DataGuide, lock table.

These are conventional pytest-benchmark timings (many rounds) — they guard
the constant factors the figure experiments stand on.
"""

import pytest

from repro.dataguide import DataGuide
from repro.deadlock import WaitForGraph
from repro.locking import XDGL_MATRIX, LockMode, LockTable
from repro.update import InsertOp, apply_update
from repro.workload import generate_xmark
from repro.xml import parse_document, serialize_document
from repro.xpath import evaluate

DOC_BYTES = 60_000


@pytest.fixture(scope="module")
def xmark_doc():
    doc, _ = generate_xmark(DOC_BYTES)
    return doc


@pytest.fixture(scope="module")
def xmark_text(xmark_doc):
    return serialize_document(xmark_doc)


def test_bench_parse_document(benchmark, xmark_text):
    doc = benchmark(parse_document, xmark_text)
    assert doc.root.tag == "site"


def test_bench_serialize_document(benchmark, xmark_doc):
    text = benchmark(serialize_document, xmark_doc)
    assert text.startswith("<site>")


def test_bench_xpath_child_steps(benchmark, xmark_doc):
    result = benchmark(evaluate, "/site/people/person/name", xmark_doc)
    assert result


def test_bench_xpath_descendant_with_predicate(benchmark, xmark_doc):
    result = benchmark(evaluate, "//closed_auction[price>=50]", xmark_doc)
    assert isinstance(result, list)


def test_bench_dataguide_build(benchmark, xmark_doc):
    guide = benchmark(DataGuide.build, xmark_doc)
    # The whole point of XDGL: the guide is tiny relative to the data.
    assert guide.node_count() < len(xmark_doc) / 10


def test_bench_dataguide_incremental_insert(benchmark, xmark_doc):
    guide = DataGuide.build(xmark_doc)
    op = InsertOp("<person id='bench'><name>B</name></person>", "/site/people")

    def insert_and_sync():
        changes = apply_update(op, xmark_doc)
        for c in changes:
            guide.apply_change(c)
        for c in reversed(changes):
            guide.undo_change(c)
        for c in changes:
            c.node.detach()

    benchmark(insert_and_sync)


def test_bench_lock_table_acquire_release(benchmark):
    table = LockTable(XDGL_MATRIX)
    keys = [("d", ("site", "people", "person", str(i))) for i in range(64)]

    def cycle():
        for i, key in enumerate(keys):
            table.try_acquire(key, "tx", LockMode.ST if i % 2 else LockMode.IS)
        table.release_transaction("tx")

    benchmark(cycle)
    assert table.is_empty()


def test_bench_wfg_cycle_detection(benchmark):
    g = WaitForGraph()
    n = 200
    for i in range(n - 1):
        g.add_edge(f"t{i}", f"t{i + 1}")
    g.add_edge(f"t{n - 1}", "t0")  # one big cycle

    cycle = benchmark(g.find_any_cycle)
    assert cycle is not None and len(cycle) == n
