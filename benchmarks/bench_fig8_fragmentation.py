"""E1 — Fig. 8: fragmentation and data allocation.

Regenerates the paper's allocation table: the (scaled) 40 MB XMark base
split into size-balanced fragments for 2/4/8 sites.
"""

from repro.experiments import fig8

from .conftest import run_once


def test_fig8_fragmentation(benchmark):
    result = run_once(benchmark, fig8)
    print()
    print(result.render())
    for n_sites, ratio in sorted(result.balance_ratios.items()):
        print(f"  balance ratio @ {n_sites} sites: {ratio:.2f}")
        # Paper's contract: "each generated fragment has a similar size".
        assert ratio < 1.6
    site_counts = {n for n, _, _ in result.rows}
    assert site_counts == {2, 4, 8}
