"""Benchmark package marker: enables ``from .conftest import run_once``."""
