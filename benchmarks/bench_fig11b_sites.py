"""E5 — Fig. 11(b): response time vs number of sites.

The scaled 40 MB base fragmented over 2-8 sites, partial replication, 20 %
update transactions. Paper shape: DTX response time drops as sites grow
(data spreads, parallelism rises); tree locks stay worse throughout.
"""

from repro.experiments import check_fig11b, fig11b

from .conftest import run_once


def test_fig11b_variation_in_number_of_sites(benchmark):
    fig = run_once(benchmark, fig11b)
    print()
    print(fig.render("response_ms"))
    for note in check_fig11b(fig):
        print(" ", note)
