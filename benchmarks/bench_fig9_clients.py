"""E2 — Fig. 9: response time vs number of clients.

10-50 read-only clients (5 transactions x 5 operations each), XDGL vs
Node2PL, under total and partial replication on 4 sites. Paper shape: DTX
(XDGL) below tree locks everywhere; partial replication below total.
"""

from repro.experiments import check_fig9, fig9

from .conftest import run_once


def test_fig9_variation_in_number_of_clients(benchmark):
    fig = run_once(benchmark, fig9)
    print()
    print(fig.render("response_ms"))
    for note in check_fig9(fig):
        print(" ", note)
