"""Plugging a custom concurrency protocol into DTX.

The paper stresses DTX's flexibility: "the only modifications made to DTX
were: the lock/document representation structure and the lock
application/release rules by operation. During these modifications DTX
proved quite flexible to changes to new protocols."

This example implements exactly such a swap: a *container-level* protocol
that locks the second-level containers of a document (e.g. ``/site/people``,
``/site/regions/europe``) — coarser than XDGL, finer than DocLock2PL — in
under 60 lines, registers it, and races it against the built-ins.

Run:  python examples/custom_protocol.py
"""

from repro import SystemConfig, register_protocol
from repro.experiments import ExperimentConfig, run_experiment
from repro.locking import DOC_MATRIX, DocLockMode, LockSpec
from repro.protocols import ConcurrencyProtocol
from repro.update import InsertOp, TransposeOp
from repro.workload import WorkloadSpec, render_comparison
from repro.xpath import match_structure
from repro.xpath.parser import parse_xpath


class ContainerLockProtocol(ConcurrencyProtocol):
    """S/X locks at the granularity of top-level containers.

    The lock key for any operation is the first one or two steps of its
    target path — ``/site/people/person[...]/name`` locks ``('site',
    'people')``. Reads take S, updates take X.
    """

    name = "containerlock"

    def __init__(self):
        self._known: set[str] = set()

    @property
    def matrix(self):
        return DOC_MATRIX  # plain S/X semantics are all we need

    def register_document(self, doc):
        self._known.add(doc.name)

    def drop_document(self, doc_name):
        self._known.discard(doc_name)

    def _container_key(self, doc_name, path):
        if isinstance(path, str):
            path = parse_xpath(path)
        names = [
            s.test.name
            for s in path.steps[:2]
            if s.test.name not in ("", "*")
        ]
        return (doc_name, tuple(names) or ("<root>",))

    def lock_spec_for_query(self, doc_name, path):
        spec = LockSpec(nodes_visited=2)
        spec.add(self._container_key(doc_name, path), DocLockMode.S)
        return spec

    def lock_spec_for_update(self, doc_name, op):
        spec = LockSpec(nodes_visited=2)
        if isinstance(op, TransposeOp):
            spec.add(self._container_key(doc_name, op.source), DocLockMode.X)
            spec.add(self._container_key(doc_name, op.destination), DocLockMode.X)
        elif isinstance(op, InsertOp):
            spec.add(self._container_key(doc_name, op.target), DocLockMode.X)
        else:
            spec.add(self._container_key(doc_name, op.target), DocLockMode.X)
        return spec.deduplicated()


def main() -> None:
    register_protocol("containerlock", ContainerLockProtocol)

    runs = {}
    for protocol in ("xdgl", "containerlock", "doclock2pl"):
        cfg = ExperimentConfig(
            protocol=protocol,
            n_sites=4,
            replication="partial",
            db_bytes=80_000,
            workload=WorkloadSpec(n_clients=16, update_tx_ratio=0.3),
            system=SystemConfig().with_(client_think_ms=1.0),
        )
        print(f"running {protocol} ...")
        runs[protocol] = run_experiment(cfg)

    print()
    print(render_comparison("custom protocol vs built-ins (16 clients, 30% updates)", runs))
    print()
    print("containerlock sits between whole-document and DataGuide locking:")
    for p in ("doclock2pl", "containerlock", "xdgl"):
        print(f"  {p:>14}: {runs[p].mean_response_ms():8.2f} ms mean response")


if __name__ == "__main__":
    main()
