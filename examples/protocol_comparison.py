"""Compare the three built-in protocols on the same XMark workload.

Reproduces the core claim of the paper's evaluation in one run: DataGuide-
granular locking (XDGL) answers faster than tree locking (Node2PL) and than
whole-document locking (DocLock2PL). Deadlock counts are workload-dependent:
XDGL's concurrency breeds conflicts on shared schema paths, while whole-
document locks turn any crosswise document access into a deadlock.

Run:  python examples/protocol_comparison.py
"""

from repro import SystemConfig
from repro.experiments import ExperimentConfig, run_experiment
from repro.workload import WorkloadSpec, render_comparison


def main() -> None:
    runs = {}
    for protocol in ("xdgl", "node2pl", "doclock2pl"):
        cfg = ExperimentConfig(
            protocol=protocol,
            n_sites=4,
            replication="partial",
            db_bytes=100_000,  # the paper's 40 MB base, scaled 400:1
            workload=WorkloadSpec(
                n_clients=20,
                tx_per_client=5,
                ops_per_tx=5,
                update_tx_ratio=0.2,  # 20 % update transactions
                update_op_ratio=0.2,  # 20 % update operations within them
            ),
            system=SystemConfig().with_(client_think_ms=1.0),
        )
        print(f"running {protocol} ...")
        runs[protocol] = run_experiment(cfg)

    print()
    print(render_comparison("protocol comparison (20 clients, 20% updates, 4 sites)", runs))
    print()
    fastest = min(runs, key=lambda p: runs[p].mean_response_ms())
    print(f"fastest protocol: {fastest}")
    most_deadlocks = max(runs, key=lambda p: runs[p].total_deadlocks)
    print(f"most deadlock-prone on this workload: {most_deadlocks}")


if __name__ == "__main__":
    main()
