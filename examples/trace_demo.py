"""Trace a contended workload under broadcast vs targeted lock wake-ups.

The paper's lock manager wakes *every* waiter whenever any transaction
ends (``wake_policy="broadcast"``); the ``"targeted"`` policy wakes only
waiters whose requested (key, mode) pairs actually conflict with what
was released. Throughput tables barely show the difference — the same
transactions commit either way — but a latency decomposition does: this
demo traces the same disjoint-hot-group workload (writer groups that
conflict internally but never with each other, so every broadcast wake
is pure waste for the other groups) under both policies and diffs the
per-transaction critical path. Mean lock-wait milliseconds per
committed transaction drop visibly under targeted wake-ups, and the
response-time mean and p95 drop with them.

Run:  python examples/trace_demo.py
"""

from repro.experiments.trajectory import _build_contended
from repro.obs import (
    critical_path_report,
    diff_reports,
    render_diff,
    render_report,
    span_forest_errors,
)
from repro.obs.critical_path import PHASES

# Disjoint writer groups hammering one document through remote
# coordinators: heavy genuine lock waiting inside each group, zero
# genuine conflict between groups — the regime broadcast wakes punish.
SHAPE = dict(groups=16, clients_per_group=8, tx_per_client=2, ops_per_tx=8)


def main() -> None:
    reports = {}
    for policy in ("broadcast", "targeted"):
        cluster = _build_contended(
            dict(wake_policy=policy, tracing=True), **SHAPE
        )
        result = cluster.run()
        errors = span_forest_errors(result.spans)
        assert not errors, errors[:5]
        report = critical_path_report(result.spans, per_tx_limit=0)
        reports[policy] = report
        print(f"\n=== wake_policy={policy} "
              f"({len(result.spans)} spans, {result.duration_ms:.1f} sim-ms) ===")
        for line in render_report(report, title=f"critical path ({policy})"):
            print(line)

    print()
    diff = diff_reports(reports["broadcast"], reports["targeted"])
    for line in render_diff(diff, label_a="broadcast", label_b="targeted"):
        print(line)

    # Shares barely move — everything shrinks together — so the headline
    # is the absolute decomposition: mean milliseconds per committed
    # transaction spent in each phase (duration-weighted share x mean).
    print("\nmean ms per committed tx (broadcast -> targeted):")
    a, b = reports["broadcast"], reports["targeted"]
    for phase in PHASES:
        ms_a = a["phase_share"][phase] * a["mean_ms"]
        ms_b = b["phase_share"][phase] * b["mean_ms"]
        if max(ms_a, ms_b) < 0.05:
            continue
        pct = (ms_b - ms_a) / ms_a * 100.0 if ms_a else 0.0
        print(f"  {phase:<10} {ms_a:8.2f} -> {ms_b:8.2f}  ({pct:+.0f}%)")

    wait_a = a["phase_share"]["lock_wait"] * a["mean_ms"]
    wait_b = b["phase_share"]["lock_wait"] * b["mean_ms"]
    print(
        f"\nlock wait per committed tx: {wait_a:.1f} ms -> {wait_b:.1f} ms "
        f"({(wait_b - wait_a) / wait_a * 100.0:+.0f}%) under targeted "
        f"wake-ups; response mean {a['mean_ms']:.1f} -> {b['mean_ms']:.1f} ms."
    )


if __name__ == "__main__":
    main()
