"""Primary-copy read-one-write-all replication, end to end.

Three sites hold two copies each of two documents. Under the paper's
regime every operation runs at every replica; here reads run at the
coordinator's nearest replica and writes run at the primary only, with
the committed updates pushed synchronously to the secondaries before
the primary's locks are released.

Run with::

    PYTHONPATH=src python examples/replication_demo.py
"""

from repro import DTXCluster, Operation, SystemConfig, Transaction
from repro.update import ChangeOp, InsertOp
from repro.xml import E, doc, serialize_document


def make_documents():
    people = doc(
        "people",
        E(
            "people",
            E("person", E("id", text="1"), E("name", text="Carlos")),
            E("person", E("id", text="4"), E("name", text="Maria")),
        ),
    )
    products = doc(
        "products",
        E(
            "products",
            E("product", E("id", text="4"), E("price", text="250.00")),
            E("product", E("id", text="14"), E("price", text="35.50")),
        ),
    )
    return people, products


def main() -> None:
    config = SystemConfig().with_(
        client_think_ms=0.0,
        replication_factor=2,
        replica_read_policy="nearest",
        replica_write_policy="primary",
    )
    cluster = DTXCluster(protocol="xdgl", config=config)
    for site in ("s1", "s2", "s3"):
        cluster.add_site(site)

    people, products = make_documents()
    cluster.replicate_document(people, ["s1", "s2"])  # primary s1
    cluster.replicate_document(products, ["s2", "s3"])  # primary s2

    print("placement:")
    print(cluster.catalog.describe())
    for name in cluster.catalog.all_documents():
        print(f"  replica set: {cluster.catalog.replica_set(name)}")
    print(f"routing policy: {cluster.replication.describe()}")
    print()

    writer = Transaction(
        [
            Operation.update(
                "people", InsertOp("<person><id>9</id><name>Rui</name></person>", "/people")
            ),
            Operation.query("people", "/people/person"),  # pinned to primary s1
        ],
        label="writer",
    )
    reader = Transaction(
        [
            Operation.query("people", "/people/person[id=4]"),  # local copy at s2
            Operation.query("products", "/products/product"),  # local copy at s2
        ],
        label="reader",
    )
    repricer = Transaction(
        [Operation.update("products", ChangeOp("/products/product[id=14]/price", "29.99"))],
        label="repricer",
    )

    cluster.add_client("c1", "s1", [writer])
    cluster.add_client("c2", "s2", [reader])
    cluster.add_client("c3", "s3", [repricer])
    result = cluster.run()

    print("outcomes:")
    for record in sorted(result.records, key=lambda r: r.label):
        print(f"  {record.label}: {record.status} in {record.response_ms:.2f} ms")
    print()

    print("replica states after commit:")
    for name, sites in (("people", ("s1", "s2")), ("products", ("s2", "s3"))):
        texts = {s: serialize_document(cluster.document_at(s, name)) for s in sites}
        identical = len(set(texts.values())) == 1
        print(f"  {name}: replicas at {sites} identical = {identical}")
        assert identical, texts
    assert "Rui" in serialize_document(cluster.document_at("s2", "people"))
    assert "29.99" in serialize_document(cluster.document_at("s2", "products"))

    syncs = {s: cluster.site(s).stats.replica_syncs_served for s in ("s1", "s2", "s3")}
    print(f"  replica syncs served: {syncs}")
    print(f"  network messages: {result.network_messages}")
    print()
    print("ok: writes visible at every secondary, replicas byte-identical")


if __name__ == "__main__":
    main()
