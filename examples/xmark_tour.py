"""Tour of the data layer: XMark generation, DataGuide, fragmentation.

Shows the substrate pieces individually — generate an auction database,
summarize it into the DataGuide XDGL locks against, fragment it for partial
replication, and run a few XPath queries and update-language statements.

Run:  python examples/xmark_tour.py
"""

from repro.dataguide import DataGuide
from repro.update import UndoLog, apply_update, parse_update
from repro.workload import generate_xmark, xmark_fragments
from repro.xpath import evaluate, evaluate_values
from repro.xml import serialize_document


def main() -> None:
    # 1. Generate a deterministic, scaled-down XMark database (Fig. 7 schema).
    doc, stats = generate_xmark(target_bytes=60_000, seed=7)
    print(f"generated {doc.name!r}: {len(doc)} elements, "
          f"{doc.size_bytes()} bytes")
    print(f"  items={stats.items} persons={stats.persons} "
          f"open={stats.open_auctions} closed={stats.closed_auctions}")

    # 2. The DataGuide: every label path exactly once. This is the structure
    #    XDGL locks — compare its size with the document's.
    guide = DataGuide.build(doc)
    print(f"\nDataGuide: {guide.node_count()} nodes summarize "
          f"{len(doc)} document nodes "
          f"({len(doc) / guide.node_count():.0f}x compression)")
    print("first levels of the guide:")
    for line in guide.pretty().splitlines()[:12]:
        print(" ", line)

    # 3. XPath queries from the XMark-adapted workload.
    print("\nqueries:")
    expensive = evaluate("/site/closed_auctions/closed_auction[price>=100]", doc)
    print(f"  closed auctions with price >= 100: {len(expensive)}")
    names = evaluate_values("/site/regions/europe/item/name", doc)
    print(f"  items in europe: {len(names)}, first: {names[0]!r}")
    person = evaluate_values('/site/people/person[@id="person0"]/name', doc)
    print(f"  person0 name: {person[0]!r}")

    # 4. The update language, with undo.
    undo = UndoLog()
    stmt = ('INSERT <item id="tour-item"><location>Brazil</location>'
            "<quantity>1</quantity><name>tour special</name></item> "
            "INTO /site/regions/samerica")
    changes = apply_update(parse_update(stmt), doc, undo)
    for c in changes:
        guide.apply_change(c)
    print(f"\napplied: {stmt[:60]}...")
    print(f"  samerica now has {len(evaluate('/site/regions/samerica/item', doc))} items")
    undo.rollback()
    for c in reversed(changes):
        guide.undo_change(c)
    guide.validate_against(doc)
    print("  rolled back; DataGuide re-validated against the document")

    # 5. Fragmentation for partial replication (Fig. 8).
    frags = xmark_fragments(doc, 4)
    print("\nfragments for 4 sites:")
    for f in frags:
        n_items = len(evaluate("//item", f))
        print(f"  {f.name}: {f.size_bytes():>7} bytes, {n_items} items")


if __name__ == "__main__":
    main()
