"""Quickstart: a two-site DTX cluster in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro import DTXCluster, Operation, Transaction
from repro.update import parse_update
from repro.xml import parse_document, serialize_document

PEOPLE = """
<people>
  <person><id>1</id><name>Carlos</name></person>
  <person><id>4</id><name>Maria</name></person>
</people>
"""

PRODUCTS = """
<products>
  <product><id>4</id><description>Monitor</description><price>250.00</price></product>
  <product><id>14</id><description>Webcam</description><price>35.50</price></product>
</products>
"""


def main() -> None:
    # 1. Build a cluster: site s1 holds `people`; site s2 holds both
    #    documents (so `people` is replicated, exactly like the paper's §2.4).
    cluster = DTXCluster(protocol="xdgl")
    cluster.add_site("s1", [parse_document(PEOPLE, name="people")])
    cluster.add_site(
        "s2",
        [parse_document(PEOPLE, name="people"), parse_document(PRODUCTS, name="products")],
    )

    # 2. A distributed transaction: read a person, then insert a product.
    #    The query is plain XPath; the update uses the textual XDGL update
    #    language (INSERT/REMOVE/RENAME/CHANGE/TRANSPOSE).
    tx = Transaction(
        [
            Operation.query("people", "/people/person[id=4]/name"),
            Operation.update(
                "products",
                parse_update(
                    "INSERT <product><id>13</id><description>Mouse</description>"
                    "<price>10.30</price></product> INTO /products"
                ),
            ),
        ],
        label="quickstart-tx",
    )

    # 3. Submit through a client connected to s1 and run the simulation.
    cluster.add_client("c1", "s1", [tx])
    result = cluster.run()

    # 4. Inspect the outcome.
    print(result.summary())
    record = result.records[0]
    print(f"\ntransaction {record.label}: {record.status} "
          f"in {record.response_ms:.2f} simulated ms")
    print("\nproducts at s2 after commit:")
    print(serialize_document(cluster.document_at("s2", "products"), indent=2))


if __name__ == "__main__":
    main()
