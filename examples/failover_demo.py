"""Primary failover, live: crash the primary mid-workload, watch the
failure monitor promote a secondary and the recovered site catch up.

Three sites replicate one document (primary s1). A stream of writers keeps
inserting people while the fault schedule kills s1 in the middle of the
run and brings it back later. The crash fails the in-flight transactions
that executed at s1; the monitor promotes the most-caught-up live
secondary (fenced by an epoch bump), the coordinators re-route, and the
workload finishes against the new primary. When s1 recovers it replays the
missed update-log entries from the new primary and converges to the same
bytes — with every committed insert present exactly once.

Run with::

    PYTHONPATH=src python examples/failover_demo.py
"""

from repro import DTXCluster, Operation, SystemConfig, Transaction
from repro.update import InsertOp
from repro.xml import E, doc, serialize_document

CRASH_AT_MS = 1.5
RECOVER_AT_MS = 12.0


def make_document():
    return doc(
        "people",
        E(
            "people",
            E("person", E("id", text="1"), E("name", text="Carlos")),
            E("person", E("id", text="4"), E("name", text="Maria")),
        ),
    )


def writer(marker: int) -> Transaction:
    return Transaction(
        [
            Operation.update(
                "people",
                InsertOp(f"<person><id>{marker}</id></person>", "/people"),
            )
        ],
        label=f"w{marker}",
    )


def main() -> None:
    config = SystemConfig().with_(
        client_think_ms=0.3,
        replication_factor=3,
        replica_read_policy="nearest",
        replica_write_policy="primary",
    )
    cluster = DTXCluster(protocol="xdgl", config=config)
    for site in ("s1", "s2", "s3", "s4"):
        cluster.add_site(site)
    cluster.replicate_document(make_document(), ["s1", "s2", "s3"])

    print("before:", cluster.catalog.replica_set("people"),
          f"(epoch {cluster.catalog.epoch('people')})")

    transactions = []
    for i, site in enumerate(("s2", "s3", "s4")):
        mine = [writer(100 + 10 * i + k) for k in range(3)]
        transactions.extend(mine)
        cluster.add_client(f"c-{site}", site, mine)

    cluster.schedule_crash("s1", at_ms=CRASH_AT_MS, recover_at_ms=RECOVER_AT_MS)
    print(f"fault schedule: crash s1 at {CRASH_AT_MS} ms, "
          f"recover at {RECOVER_AT_MS} ms\n")

    result = cluster.run(drain_ms=120.0)

    rset = cluster.catalog.replica_set("people")
    print(f"after: {rset} (epoch {cluster.catalog.epoch('people')})")
    for when, doc_name, old, new, epoch in cluster.faults.stats.promotion_log:
        print(f"  t={when:.2f} ms: {doc_name}: {old} -> {new} (epoch {epoch})")
    print(result.summary())
    print()

    texts = {s: serialize_document(cluster.document_at(s, "people"))
             for s in ("s1", "s2", "s3")}
    identical = len(set(texts.values())) == 1
    print(f"replicas identical after recovery = {identical}")
    assert identical, "recovered replica failed to converge"

    committed = [t for t in transactions if t.state.value == "committed"]
    for tx in committed:
        marker = f"<id>{tx.label[1:]}</id>"
        for site, text in texts.items():
            count = text.count(marker)
            assert count == 1, f"{tx.label} at {site}: {count} copies"
    print(f"all {len(committed)} committed inserts present exactly once "
          f"at every replica")

    s1 = cluster.site("s1")
    print(f"s1 recovery: {s1.stats.catchups} catch-up round(s), "
          f"{s1.stats.catchup_entries_replayed} log entries replayed, "
          f"{s1.stats.catchup_snapshots} snapshot transfers")
    assert s1.stats.catchup_entries_replayed >= 1
    print()
    print("ok: failover promoted a secondary, the workload finished, and "
          "the crashed primary caught back up by log replay")


if __name__ == "__main__":
    main()
