"""Primary failover, live: crash the primary mid-workload, watch the
failure monitor promote a secondary and the recovered site catch up.

Three sites replicate one document (primary s1). A stream of writers keeps
inserting people while the fault schedule kills s1 in the middle of the
run and brings it back later. The crash fails the in-flight transactions
that executed at s1; the monitor promotes the most-caught-up live
secondary (fenced by an epoch bump), the coordinators re-route, and the
workload finishes against the new primary. When s1 recovers it replays the
missed update-log entries from the new primary and converges to the same
bytes — with every committed insert present exactly once.

Run with::

    PYTHONPATH=src python examples/failover_demo.py
    PYTHONPATH=src python examples/failover_demo.py --detector lease

``--detector perfect`` (default) uses the paper's oracle: the crash is
announced within one hop and the monitor promotes directly. ``--detector
lease`` removes the oracle — the survivors *notice* the silence when the
dead primary's lease expires, elect over the wire (log-tip majority vote),
and announce the winner with an epoch bump; the recovered site learns it
was deposed from the heartbeats that greet it.
"""

import argparse

from repro import DTXCluster, Operation, SystemConfig, Transaction
from repro.update import InsertOp
from repro.xml import E, doc, serialize_document

CRASH_AT_MS = 1.5


def make_document():
    return doc(
        "people",
        E(
            "people",
            E("person", E("id", text="1"), E("name", text="Carlos")),
            E("person", E("id", text="4"), E("name", text="Maria")),
        ),
    )


def writer(marker: int) -> Transaction:
    return Transaction(
        [
            Operation.update(
                "people",
                InsertOp(f"<person><id>{marker}</id></person>", "/people"),
            )
        ],
        label=f"w{marker}",
    )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--detector", choices=("perfect", "lease"), default="perfect",
        help="failure detector: the paper's oracle, or lease-based "
        "heartbeats with election over the wire",
    )
    args = parser.parse_args(argv)
    lease = args.detector == "lease"
    # The lease detector needs time to *notice* the silence (a lease
    # timeout) and to elect (an election timeout): recover later and give
    # the clients retries, or every transaction burns in the detection
    # window.
    recover_at_ms = 40.0 if lease else 12.0
    config = SystemConfig().with_(
        client_think_ms=0.3 if not lease else 2.0,
        replication_factor=3,
        replica_read_policy="nearest",
        replica_write_policy="primary",
        failure_detector=args.detector,
        max_restarts=3 if lease else 0,
        lock_wait_timeout_ms=100.0 if lease else 0.0,
    )
    cluster = DTXCluster(protocol="xdgl", config=config)
    for site in ("s1", "s2", "s3", "s4"):
        cluster.add_site(site)
    cluster.replicate_document(make_document(), ["s1", "s2", "s3"])

    print(f"detector: {args.detector}")
    print("before:", cluster.catalog.replica_set("people"),
          f"(epoch {cluster.catalog.epoch('people')})")

    transactions = []
    for i, site in enumerate(("s2", "s3", "s4")):
        mine = [writer(100 + 10 * i + k) for k in range(3)]
        transactions.extend(mine)
        cluster.add_client(f"c-{site}", site, mine)

    cluster.schedule_crash("s1", at_ms=CRASH_AT_MS, recover_at_ms=recover_at_ms)
    print(f"fault schedule: crash s1 at {CRASH_AT_MS} ms, "
          f"recover at {recover_at_ms} ms\n")

    result = cluster.run(drain_ms=250.0 if lease else 120.0)

    # Under the lease detector the *shared* catalog never moves — each
    # site's own view does. Report a survivor's view.
    catalog = cluster.site("s2").catalog if lease else cluster.catalog
    rset = catalog.replica_set("people")
    print(f"after: {rset} (epoch {catalog.epoch('people')})")
    for when, doc_name, old, new, epoch in cluster.faults.stats.promotion_log:
        print(f"  t={when:.2f} ms: {doc_name}: {old} -> {new} (epoch {epoch})")
    print(result.summary())
    print()

    texts = {s: serialize_document(cluster.document_at(s, "people"))
             for s in ("s1", "s2", "s3")}
    identical = len(set(texts.values())) == 1
    print(f"replicas identical after recovery = {identical}")
    assert identical, "recovered replica failed to converge"

    committed = [t for t in transactions if t.state.value == "committed"]
    for tx in committed:
        marker = f"<id>{tx.label[1:]}</id>"
        for site, text in texts.items():
            count = text.count(marker)
            assert count == 1, f"{tx.label} at {site}: {count} copies"
    print(f"all {len(committed)} committed inserts present exactly once "
          f"at every replica")

    s1 = cluster.site("s1")
    print(f"s1 recovery: {s1.stats.catchups} catch-up round(s), "
          f"{s1.stats.catchup_entries_replayed} log entries replayed, "
          f"{s1.stats.catchup_snapshots} snapshot transfers")
    # The ex-primary reconciles by log replay when its tip is on the
    # survivors' timeline, or by snapshot transfer when it crashed holding
    # records the (primary-first) fan-out never delivered anywhere.
    assert s1.stats.catchup_entries_replayed + s1.stats.catchup_snapshots >= 1
    mechanism = (
        "log replay"
        if s1.stats.catchup_entries_replayed
        else "snapshot transfer"
    )
    print()
    print(f"ok: failover promoted a secondary, the workload finished, and "
          f"the crashed primary caught back up by {mechanism}")


if __name__ == "__main__":
    main()
