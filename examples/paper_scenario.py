"""The paper's §2.4 execution scenario, narrated step by step.

Two sites, three transactions, one distributed deadlock: t1 and t2 block
each other crosswise (each needs an IX lock under the other's held ST), the
periodic detector unions the two wait-for graphs, finds the cycle, and rolls
back the most recent transaction (t2). t1 then completes; client c2 discards
t2 and runs t3.

Run:  python examples/paper_scenario.py
"""

from repro import DTXCluster, Operation, SystemConfig, Transaction
from repro.update import InsertOp
from repro.xml import E, doc, serialize_document


def build_documents():
    d1 = doc(
        "d1",
        E(
            "people",
            E("person", E("id", text="1"), E("name", text="Carlos")),
            E("person", E("id", text="4"), E("name", text="Maria")),
        ),
    )
    d2 = doc(
        "d2",
        E(
            "products",
            E("product", E("id", text="4"), E("description", text="Monitor"),
              E("price", text="250.00")),
            E("product", E("id", text="14"), E("description", text="Webcam"),
              E("price", text="35.50")),
        ),
    )
    return d1, d2


def main() -> None:
    cfg = SystemConfig().with_(
        client_think_ms=0.0, detector_interval_ms=50.0, detector_initial_delay_ms=10.0
    )
    cluster = DTXCluster(protocol="xdgl", config=cfg)
    d1, d2 = build_documents()
    cluster.add_site("s1", [d1])           # s1 holds a copy of d1
    cluster.add_site("s2", [d1, d2])       # s2 holds d1 and d2 (Fig. 4)

    t1 = Transaction(
        [
            Operation.query("d1", "/people/person[id=4]"),  # t1op1
            Operation.update("d2", InsertOp(                # t1op2
                "<product><id>13</id><description>Mouse</description>"
                "<price>10.30</price></product>", "/products")),
        ],
        label="t1",
    )
    t2 = Transaction(
        [
            Operation.query("d2", "/products/product"),     # t2op1
            Operation.update("d1", InsertOp(                # t2op2
                "<person><id>22</id><name>Patricia</name></person>", "/people")),
        ],
        label="t2",
    )
    t3 = Transaction(
        [
            Operation.query("d2", "/products/product[id=14]"),  # t3op1
            Operation.update("d2", InsertOp(                    # t3op2
                "<product><id>32</id><description>Keyboard</description>"
                "<price>9.90</price></product>", "/products")),
        ],
        label="t3",
    )

    cluster.add_client("c1", "s1", [t1])
    cluster.add_client("c2", "s2", [t2, t3])

    # Show the DataGuides the locks live on (paper Fig. 5).
    cluster.start()
    print("DataGuide of d1 at s1 (locks are taken on these nodes):")
    print(cluster.site("s1").protocol.guide("d1").pretty())
    print()

    result = cluster.run()

    print("outcomes:")
    for r in sorted(result.records, key=lambda r: r.label):
        reason = f" ({r.reason})" if r.reason else ""
        print(f"  {r.label}: {r.status}{reason}  response={r.response_ms:.2f} ms")
    print(f"\ndistributed deadlocks detected: {result.distributed_deadlocks}")
    print(f"detector sweeps: {result.detector_sweeps}")

    print("\nd2 after the scenario (Mouse and Keyboard in, no Patricia anywhere):")
    print(serialize_document(cluster.document_at("s2", "d2"), indent=2))

    same = serialize_document(cluster.document_at("s1", "d1")) == serialize_document(
        cluster.document_at("s2", "d1")
    )
    print(f"\nd1 replicas identical across sites: {same}")


if __name__ == "__main__":
    main()
