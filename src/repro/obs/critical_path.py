"""Critical-path analysis and trace exporters.

Takes the span forest a traced run recorded and answers the question the
flat counters cannot: *where did each committed transaction's response
time actually go* — lock waits vs. message transfers vs. participant
execution vs. 2PC rounds vs. replica sync.

The decomposition is a timeline sweep per transaction tree: every
instant of the root span ``[submit, outcome]`` is attributed to exactly
one phase — the deepest span covering that instant, ties broken by a
fixed phase priority (a lock wait inside an operation round beats the
round itself). Because each instant is attributed exactly once, the
per-phase shares of every transaction sum to 100% of its duration by
construction.

Exports: Chrome-trace-viewer JSON (``chrome://tracing`` / Perfetto's
"Open trace file"), embedding the critical-path report and the raw span
forest so a file round-trips through the integrity checker and
``--diff``.
"""

from __future__ import annotations

from typing import Optional

from .tracer import Span, transaction_trees

#: span category -> reported phase
PHASE_OF = {
    "lock_wait": "lock_wait",
    "net": "network",
    "exec": "exec",
    "sync": "sync",
    "2pc": "2pc",
    "view": "view",
    "op": "coord",
    "tx": "other",
}

#: tie-break priority at equal tree depth (higher wins)
_PRIORITY = {
    "lock_wait": 7,
    "exec": 6,
    "net": 5,
    "sync": 4,
    "2pc": 3,
    "view": 2,
    "op": 1,
    "tx": 0,
}

PHASES = ("lock_wait", "network", "exec", "sync", "2pc", "view", "coord", "other")


def _depths(members: list) -> dict[int, int]:
    by_id = {s.sid: s for s in members}
    depth: dict[int, int] = {}

    def d(s: Span) -> int:
        if s.sid in depth:
            return depth[s.sid]
        parent = by_id.get(s.parent)
        depth[s.sid] = 0 if parent is None else d(parent) + 1
        return depth[s.sid]

    for s in members:
        d(s)
    return depth


def tx_breakdown(members: list, root: Span) -> dict:
    """Phase decomposition of one transaction tree.

    ``members`` must include ``root``. Returns per-phase milliseconds
    plus shares of the root duration; shares sum to 1.0 (up to float
    rounding) because the sweep attributes each instant exactly once.
    """
    t0, t1 = root.start, root.end if root.end is not None else root.start
    phases = {p: 0.0 for p in PHASES}
    duration = t1 - t0
    if duration <= 0:
        return {
            "tid": root.label("tx"),
            "status": root.label("status"),
            "duration_ms": 0.0,
            "phases_ms": phases,
            "shares": {p: 0.0 for p in PHASES},
        }
    depth = _depths(members)
    clipped = []
    bounds = {t0, t1}
    for s in members:
        end = s.end if s.end is not None else t1
        lo, hi = max(s.start, t0), min(end, t1)
        if hi > lo:
            clipped.append((lo, hi, depth[s.sid], _PRIORITY.get(s.cat, 0), s.cat))
            bounds.add(lo)
            bounds.add(hi)
    edges = sorted(bounds)
    for lo, hi in zip(edges, edges[1:]):
        mid = (lo + hi) / 2.0
        best = None
        for c_lo, c_hi, c_depth, c_prio, c_cat in clipped:
            if c_lo <= mid < c_hi:
                key = (c_depth, c_prio)
                if best is None or key > best[0]:
                    best = (key, c_cat)
        cat = best[1] if best else "tx"
        phases[PHASE_OF.get(cat, "other")] += hi - lo
    return {
        "tid": root.label("tx"),
        "status": root.label("status"),
        "duration_ms": duration,
        "phases_ms": phases,
        "shares": {p: v / duration for p, v in phases.items()},
    }


def _aggregate_shares(breakdowns: list) -> dict:
    """Duration-weighted mean phase shares over a set of transactions."""
    total = sum(b["duration_ms"] for b in breakdowns)
    if total <= 0:
        return {p: 0.0 for p in PHASES}
    return {
        p: sum(b["phases_ms"][p] for b in breakdowns) / total for p in PHASES
    }


def _percentile(values: list, q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[idx]


def critical_path_report(spans: list, per_tx_limit: int = 200) -> dict:
    """The headline analysis: per-phase latency decomposition of a run.

    ``phase_share`` aggregates every committed transaction
    (duration-weighted); ``p95_phase_share`` aggregates only the slowest
    transactions (at or above the p95 response time) — the population the
    paper's latency arguments are about.
    """
    trees = transaction_trees(spans)
    by_id = {s.sid: s for tree in trees.values() for s in tree}
    breakdowns = []
    statuses = {"committed": 0, "aborted": 0, "failed": 0}
    for root_sid, members in sorted(trees.items()):
        root = by_id[root_sid]
        status = root.label("status") or "failed"
        statuses[status] = statuses.get(status, 0) + 1
        if status == "committed":
            breakdowns.append(tx_breakdown(members, root))
    durations = [b["duration_ms"] for b in breakdowns]
    p95 = _percentile(durations, 0.95)
    slow = [b for b in breakdowns if b["duration_ms"] >= p95] or breakdowns
    return {
        "transactions": sum(statuses.values()),
        "committed": statuses.get("committed", 0),
        "aborted": statuses.get("aborted", 0),
        "failed": statuses.get("failed", 0),
        "mean_ms": sum(durations) / len(durations) if durations else 0.0,
        "p50_ms": _percentile(durations, 0.5),
        "p95_ms": p95,
        "phase_share": _aggregate_shares(breakdowns),
        "p95_phase_share": _aggregate_shares(slow),
        "per_tx": breakdowns[:per_tx_limit],
    }


def render_report(report: dict, title: str = "critical path") -> list[str]:
    """Human-readable report lines (the CLI's stdout section)."""
    lines = [
        f"-- {title} --",
        (
            f"transactions: {report['transactions']} "
            f"(committed {report['committed']}, aborted {report['aborted']}, "
            f"failed {report['failed']})"
        ),
        (
            f"committed response ms: mean {report['mean_ms']:.2f}  "
            f"p50 {report['p50_ms']:.2f}  p95 {report['p95_ms']:.2f}"
        ),
    ]
    for key, label in (("phase_share", "all committed"), ("p95_phase_share", "p95 tail")):
        shares = report.get(key) or {}
        parts = [
            f"{phase} {share * 100.0:.1f}%"
            for phase, share in sorted(shares.items(), key=lambda kv: -kv[1])
            if share >= 0.0005
        ]
        lines.append(f"{label}: " + ("  ".join(parts) if parts else "no data"))
    return lines


def diff_reports(a: dict, b: dict) -> dict:
    """Phase-share deltas between two critical-path reports (b - a)."""
    out = {"phases": {}, "p95_ms": (a.get("p95_ms", 0.0), b.get("p95_ms", 0.0))}
    shares_a = a.get("phase_share") or {}
    shares_b = b.get("phase_share") or {}
    for phase in PHASES:
        sa = shares_a.get(phase, 0.0)
        sb = shares_b.get(phase, 0.0)
        out["phases"][phase] = {"a": sa, "b": sb, "delta": sb - sa}
    return out


def render_diff(diff: dict, label_a: str = "A", label_b: str = "B") -> list[str]:
    lines = [f"-- critical-path diff ({label_a} -> {label_b}) --"]
    p95_a, p95_b = diff["p95_ms"]
    lines.append(f"p95 response ms: {p95_a:.2f} -> {p95_b:.2f}")
    for phase, cell in sorted(
        diff["phases"].items(), key=lambda kv: -abs(kv[1]["delta"])
    ):
        if abs(cell["delta"]) < 0.0005 and cell["a"] < 0.0005 and cell["b"] < 0.0005:
            continue
        lines.append(
            f"  {phase:<10} {cell['a'] * 100.0:6.1f}% -> {cell['b'] * 100.0:6.1f}%  "
            f"({cell['delta'] * 100.0:+.1f} pts)"
        )
    return lines


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------


def chrome_trace(
    spans: list, meta: Optional[dict] = None, report: Optional[dict] = None
) -> dict:
    """Chrome Trace Event Format JSON (dict) for ``chrome://tracing``.

    One process lane per site; spans become complete ("X") events with
    simulated milliseconds mapped to trace microseconds. The raw span
    forest rides along under ``"spans"`` (unknown top-level keys are
    ignored by the viewers) so exported files round-trip through the
    integrity checker and ``--diff`` without loss.
    """
    sites = sorted({str(s.site) for s in spans})
    pid_of = {site: i + 1 for i, site in enumerate(sites)}
    events: list[dict] = []
    for site, pid in pid_of.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"site {site}"},
            }
        )
    for s in spans:
        end = s.end if s.end is not None else s.start
        args = {"sid": s.sid, "parent": s.parent}
        if s.labels:
            args.update({str(k): str(v) for k, v in s.labels.items()})
        events.append(
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": s.start * 1000.0,  # sim ms -> trace µs
                "dur": (end - s.start) * 1000.0,
                "pid": pid_of[str(s.site)],
                "tid": 1,
                "args": args,
            }
        )
    out = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "spans": [s.to_dict() for s in spans],
    }
    if meta:
        out["meta"] = meta
    if report is not None:
        out["criticalPath"] = report
    return out


def spans_from_chrome(data: dict) -> list:
    """Rebuild :class:`Span` objects from an exported trace file dict."""
    return [Span.from_dict(d) for d in data.get("spans", [])]
