"""``python -m repro trace`` — replay a workload with tracing on.

Runs a seeded workload with ``SystemConfig.tracing=True`` (the schedule
is identical to the untraced run — tracing is wall-clock-only), verifies
the recorded span forest, writes a Chrome-trace-viewer JSON file and
prints the per-transaction critical-path breakdown.

``--diff A B`` instead compares the critical-path sections of two
previously exported trace files (e.g. a broadcast-wake vs a
targeted-wake run of the same workload).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, TextIO

from ..config import SystemConfig
from ..experiments.runner import ExperimentConfig, build_cluster
from ..workload.generator import WorkloadSpec
from .critical_path import (
    chrome_trace,
    critical_path_report,
    diff_reports,
    render_diff,
    render_report,
)
from .tracer import span_forest_errors


def run_traced_workload(
    sites: int = 4,
    clients: int = 8,
    seed: int = 42,
    protocol: str = "xdgl",
    tx_per_client: int = 5,
    ops_per_tx: int = 5,
    update_ratio: float = 0.5,
    wake_policy: str = "broadcast",
    replication_factor: int = 1,
    label: str = "",
    system: Optional[SystemConfig] = None,
):
    """One traced run; returns ``(result, spans)``.

    ``system`` overrides the whole config (the caller still gets
    ``tracing=True`` forced on); otherwise a config is assembled from the
    keyword knobs.
    """
    if system is None:
        system = SystemConfig(
            seed=seed,
            wake_policy=wake_policy,
            replication_factor=replication_factor,
            tracing=True,
        )
    elif not system.tracing:
        system = system.with_(tracing=True)
    cfg = ExperimentConfig(
        protocol=protocol,
        n_sites=sites,
        replication="partial",
        workload=WorkloadSpec(
            n_clients=clients,
            tx_per_client=tx_per_client,
            ops_per_tx=ops_per_tx,
            update_tx_ratio=update_ratio,
            seed=seed,
        ),
        system=system,
        label=label or f"trace/{protocol}/{sites}s{clients}c",
    )
    cluster, _ = build_cluster(cfg)
    result = cluster.run(label=cfg.label)
    return result, result.spans


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="replay a workload with causal tracing and decompose latency",
    )
    parser.add_argument("--sites", type=int, default=4)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--protocol", default="xdgl")
    parser.add_argument("--tx-per-client", type=int, default=5)
    parser.add_argument("--ops-per-tx", type=int, default=5)
    parser.add_argument(
        "--update-ratio",
        type=float,
        default=0.5,
        help="fraction of update transactions (contention driver)",
    )
    parser.add_argument(
        "--wake-policy", choices=["broadcast", "targeted"], default="broadcast"
    )
    parser.add_argument(
        "--replication-factor",
        type=int,
        default=1,
        help="copies per fragment (>= 2 exercises the sync spans)",
    )
    parser.add_argument(
        "--out",
        default="trace.json",
        help="Chrome-trace JSON output path (default: trace.json)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the critical-path report as JSON"
    )
    parser.add_argument(
        "--diff",
        nargs=2,
        metavar=("A", "B"),
        help="compare the critical-path sections of two exported trace files",
    )
    return parser


def trace_main(argv: Optional[list] = None, out: TextIO = sys.stdout) -> int:
    args = _build_parser().parse_args(argv)

    if args.diff:
        path_a, path_b = args.diff
        reports = []
        for path in (path_a, path_b):
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            report = data.get("criticalPath")
            if report is None:
                print(f"error: {path} carries no criticalPath section", file=out)
                return 1
            reports.append(report)
        diff = diff_reports(reports[0], reports[1])
        for line in render_diff(diff, label_a=path_a, label_b=path_b):
            print(line, file=out)
        return 0

    result, spans = run_traced_workload(
        sites=args.sites,
        clients=args.clients,
        seed=args.seed,
        protocol=args.protocol,
        tx_per_client=args.tx_per_client,
        ops_per_tx=args.ops_per_tx,
        update_ratio=args.update_ratio,
        wake_policy=args.wake_policy,
        replication_factor=args.replication_factor,
    )
    errors = span_forest_errors(spans)
    if errors:
        for err in errors[:20]:
            print(f"span-forest error: {err}", file=out)
        return 1

    report = critical_path_report(spans)
    meta = {
        "sites": args.sites,
        "clients": args.clients,
        "seed": args.seed,
        "protocol": args.protocol,
        "wake_policy": args.wake_policy,
        "update_ratio": args.update_ratio,
        "duration_ms": result.duration_ms,
        "spans": len(spans),
    }
    data = chrome_trace(spans, meta=meta, report=report)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(data, fh)
    print(
        f"traced {meta['spans']} spans over {result.duration_ms:.1f} sim-ms "
        f"-> {args.out}",
        file=out,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
    else:
        for line in render_report(report):
            print(line, file=out)
    return 0
