"""Labeled metrics: counters, gauges and log-scale latency histograms.

The :class:`MetricsRegistry` is the queryable view over the simulator's
flat hot-path counters. ``SiteStats`` stays what it is — a plain
dataclass the sites increment attribute-by-attribute, because that is the
cheapest thing Python can do on the hot path — and the registry ingests
those counters *after* a run, fanning each field into a labeled series
(site, protocol) derived from ``dataclasses.fields`` so a newly added
counter can never be silently dropped. On top of that it ingests
per-transaction records and trace spans into labeled log-scale latency
histograms, giving the per-document and per-protocol breakdowns the flat
dataclass cannot express.

Series are keyed by ``(name, sorted(labels))``; labels are plain
key=value strings. Nothing here touches the simulation.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Hashable, Iterable, Optional


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic labeled counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins labeled gauge."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Log-scale latency histogram (powers of two, in milliseconds).

    Bucket ``i`` counts observations ``v`` with ``bounds[i-1] < v <=
    bounds[i]``; the bounds run from 2**-10 ms (~1 µs) to 2**14 ms
    (~16 s), which brackets every latency the simulator produces. The
    quantile estimate is the upper bound of the bucket the rank falls in
    — coarse by design, like any fixed-bucket histogram.
    """

    __slots__ = ("counts", "count", "sum", "max")

    BOUNDS = tuple(2.0**k for k in range(-10, 15))

    def __init__(self) -> None:
        self.counts = [0] * (len(self.BOUNDS) + 1)  # +1: overflow bucket
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value_ms: float) -> None:
        self.counts[bisect_left(self.BOUNDS, value_ms)] += 1
        self.count += 1
        self.sum += value_ms
        if value_ms > self.max:
            self.max = value_ms

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile (0 < q <= 1)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.BOUNDS[i] if i < len(self.BOUNDS) else self.max
        return self.max

    def to_dict(self) -> dict:
        buckets = {}
        for i, c in enumerate(self.counts):
            if c:
                le = self.BOUNDS[i] if i < len(self.BOUNDS) else float("inf")
                buckets[str(le)] = c
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Labeled series store: ``(name, labels) -> Counter|Gauge|Histogram``."""

    __slots__ = ("_series",)

    def __init__(self) -> None:
        self._series: dict[tuple, tuple] = {}  # (name, labelkey) -> (labels, metric)

    def _get(self, name: str, labels: dict, cls):
        key = (name, _label_key(labels))
        entry = self._series.get(key)
        if entry is None:
            entry = (dict(labels), cls())
            self._series[key] = entry
        metric = entry[1]
        if not isinstance(metric, cls):
            raise TypeError(
                f"series {name!r}{labels} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(name, labels, Histogram)

    def collect(self, name: Optional[str] = None) -> list[tuple]:
        """``(name, labels, metric)`` triples, optionally filtered by name."""
        out = []
        for (series_name, _), (labels, metric) in sorted(self._series.items()):
            if name is None or series_name == name:
                out.append((series_name, labels, metric))
        return out

    def total(self, name: str, **labels) -> float:
        """Sum of every matching counter/gauge series (labels filter)."""
        total = 0.0
        for _, series_labels, metric in self.collect(name):
            if all(str(series_labels.get(k)) == str(v) for k, v in labels.items()):
                total += metric.value
        return total

    def to_dict(self) -> dict:
        """JSON-ready dump: ``name{k=v,...}`` -> metric dict."""
        out = {}
        for series_name, labels, metric in self.collect():
            label_str = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            out[f"{series_name}{{{label_str}}}"] = metric.to_dict()
        return out

    # -- ingestion bridges -------------------------------------------------

    def ingest_site_stats(
        self, site_stats: dict, protocol: str = ""
    ) -> None:
        """Fan every ``SiteStats`` field into per-site labeled counters.

        Field discovery is ``dataclasses.fields``-driven — the drift
        hazard of hand-enumerated reporting (a new counter silently
        missing from output) cannot occur here.
        """
        from dataclasses import fields as dc_fields

        for site_id, stats in site_stats.items():
            for f in dc_fields(stats):
                self.counter(
                    f"site_{f.name}", site=site_id, protocol=protocol
                ).inc(getattr(stats, f.name))

    def ingest_records(self, records: Iterable, protocol: str = "") -> None:
        """Per-transaction latency histograms, labeled by outcome status."""
        for r in records:
            self.counter("tx_total", status=r.status, protocol=protocol).inc()
            self.histogram(
                "tx_response_ms", status=r.status, protocol=protocol
            ).observe(r.response_ms)
            if r.restarts:
                self.counter("tx_restarts", protocol=protocol).inc(r.restarts)

    def ingest_spans(self, spans: Iterable, protocol: str = "") -> None:
        """Per-category span-duration histograms, labeled by document.

        This is where the per-document breakdown comes from: lock-wait
        and execution spans carry a ``doc`` label, so contended documents
        get their own latency series.
        """
        for s in spans:
            if s.end is None:
                continue
            doc = s.label("doc") or ""
            self.histogram(
                "span_ms", cat=s.cat, doc=doc, protocol=protocol
            ).observe(s.end - s.start)
            self.counter("span_total", cat=s.cat, protocol=protocol).inc()


def registry_from_run(
    result, protocol: str = "", spans: Optional[list] = None
) -> MetricsRegistry:
    """Build a registry from a :class:`~repro.core.results.RunResult`.

    Ingests site counters (fields-driven), client transaction records,
    and — when the run was traced — the span forest, in one call.
    """
    registry = MetricsRegistry()
    proto = protocol or getattr(result, "protocol", "")
    registry.ingest_site_stats(result.site_stats, protocol=proto)
    registry.ingest_records(result.records, protocol=proto)
    span_list = spans if spans is not None else getattr(result, "spans", [])
    if span_list:
        registry.ingest_spans(span_list, protocol=proto)
    return registry
