"""Observability: causal tracing, labeled metrics, critical-path analysis.

Everything here is wall-clock-only instrumentation over the simulator:
with ``SystemConfig.tracing`` off (the default) nothing in this package
runs and schedules stay byte-identical; with it on, spans are recorded
without adding messages, RNG draws or simulated delays, so the schedule
is still the same — only the lens changes.
"""

from .critical_path import (
    PHASES,
    chrome_trace,
    critical_path_report,
    diff_reports,
    render_diff,
    render_report,
    spans_from_chrome,
    tx_breakdown,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, registry_from_run
from .tracer import Span, Tracer, span_forest_errors, transaction_trees

__all__ = [
    "PHASES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "chrome_trace",
    "critical_path_report",
    "diff_reports",
    "registry_from_run",
    "render_diff",
    "render_report",
    "span_forest_errors",
    "spans_from_chrome",
    "transaction_trees",
    "tx_breakdown",
]
