"""Causal span tracing for the simulated transaction lifecycle.

A :class:`Tracer` records :class:`Span` records — intervals of *simulated*
time, causally linked by parent ids — across the whole distributed
transaction lifecycle: client submit, per-operation coordinator rounds,
lock waits, participant execution, message transfers, 2PC commit/abort
rounds, replica sync and group-commit batches, view serves, elections,
catch-up and deadlock-detector sweeps.

The tracer is wall-clock-only instrumentation. It never touches the
simulation: no messages, no RNG draws, no timeouts. Sites hold
``self.tracer = None`` unless ``SystemConfig.tracing`` is on, and every
instrumentation point is gated by one falsy attribute check — the off
path allocates nothing and schedules stay byte-identical (the same
discipline as ``spec_cache`` and the message pool). Span ids ride through
existing message dataclasses as plain integers excluded from
``size_bytes()``, so remote work parents correctly without changing any
modeled wire cost.

Span ids start at 1; parent id 0 means "no parent" (a root or a global
span such as a detector sweep or an election).
"""

from __future__ import annotations

from typing import Any, Hashable, Optional


class Span:
    """One interval of simulated time, causally linked to a parent span."""

    __slots__ = ("sid", "parent", "name", "cat", "site", "start", "end", "labels")

    def __init__(
        self,
        sid: int,
        parent: int,
        name: str,
        cat: str,
        site: Hashable,
        start: float,
        end: Optional[float],
        labels: Optional[dict],
    ):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.cat = cat
        self.site = site
        self.start = start
        self.end = end
        self.labels = labels

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def label(self, key: str) -> Any:
        return self.labels.get(key) if self.labels else None

    def to_dict(self) -> dict:
        return {
            "sid": self.sid,
            "parent": self.parent,
            "name": self.name,
            "cat": self.cat,
            "site": str(self.site),
            "start": self.start,
            "end": self.end,
            "labels": dict(self.labels) if self.labels else {},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(
            sid=d["sid"],
            parent=d.get("parent", 0),
            name=d.get("name", ""),
            cat=d.get("cat", ""),
            site=d.get("site"),
            start=d.get("start", 0.0),
            end=d.get("end"),
            labels=d.get("labels") or None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.sid}, parent={self.parent}, {self.cat}/{self.name}"
            f" @{self.site} [{self.start}, {self.end}])"
        )


class Tracer:
    """Append-only span recorder shared by every site of one cluster run.

    Span ids are list indices offset by one, so lookups are O(1) and the
    whole structure is two attributes. One tracer serves one run (like the
    message pool) — ids are meaningless across runs.
    """

    __slots__ = ("spans", "_flights")

    def __init__(self) -> None:
        self.spans: list[Span] = []
        # Future-ended message-flight spans per transaction root: a flight
        # recorded at send time ends at arrival time, which can postdate
        # the commit when the round has already settled (bounded rounds,
        # quorum stragglers). Closing a tx root clips its registered
        # flights to the root end, keeping the committed-tree invariant —
        # a root outlives every descendant — true by construction.
        self._flights: dict[int, list[int]] = {}

    def begin(
        self,
        name: str,
        cat: str,
        site: Hashable,
        parent: int,
        t: float,
        labels: Optional[dict] = None,
    ) -> int:
        """Open a span at simulated time ``t``; returns its id."""
        sid = len(self.spans) + 1
        self.spans.append(Span(sid, parent, name, cat, site, t, None, labels))
        return sid

    def end(self, sid: int, t: float) -> None:
        """Close span ``sid`` at ``t``. Idempotent: the first close wins
        (a crash-unwound generator's ``finally`` may run late)."""
        if sid:
            span = self.spans[sid - 1]
            if span.end is None:
                span.end = t
                if span.parent == 0 and span.cat == "tx":
                    for fid in self._flights.pop(sid, ()):
                        flight = self.spans[fid - 1]
                        if flight.end is not None and flight.end > t:
                            flight.end = t

    def add(
        self,
        name: str,
        cat: str,
        site: Hashable,
        parent: int,
        start: float,
        end: float,
        labels: Optional[dict] = None,
    ) -> int:
        """Record an already-complete span (e.g. a message transfer whose
        delay the network model just returned)."""
        sid = len(self.spans) + 1
        self.spans.append(Span(sid, parent, name, cat, site, start, end, labels))
        return sid

    def add_flight(
        self,
        name: str,
        cat: str,
        site: Hashable,
        parent: int,
        start: float,
        end: float,
        labels: Optional[dict] = None,
    ) -> int:
        """Record a message flight ``[send, arrival]``.

        Like :meth:`add`, but the span's end lies in the simulated future
        — so it is registered against its transaction root and clipped if
        the root closes first (see ``_flights``)."""
        sid = self.add(name, cat, site, parent, start, end, labels)
        root = self._root_of(parent)
        if root:
            self._flights.setdefault(root, []).append(sid)
        return sid

    def live_parent(self, sid: int) -> int:
        """``sid`` if that span is still open, else 0.

        Post-hoc participant work — a stale attempt executing after its
        operation round settled, a quorum straggler applying a batch after
        the round closed — must become a global span rather than dangle
        off a tree whose root may already be closed."""
        if sid and self.spans[sid - 1].end is None:
            return sid
        return 0

    def _root_of(self, sid: int) -> int:
        """The tx-root sid above ``sid``, or 0 (global / broken chain)."""
        while sid:
            span = self.spans[sid - 1]
            if span.parent == 0:
                return sid if span.cat == "tx" else 0
            sid = span.parent
        return 0

    def set_label(self, sid: int, key: str, value: Any) -> None:
        if sid:
            span = self.spans[sid - 1]
            if span.labels is None:
                span.labels = {}
            span.labels[key] = value

    def get(self, sid: int) -> Span:
        return self.spans[sid - 1]

    def finish(self, t: float) -> None:
        """Clip every still-open span to ``t`` (end of run)."""
        for span in self.spans:
            if span.end is None:
                span.end = t


# ----------------------------------------------------------------------
# span-forest integrity checking
# ----------------------------------------------------------------------


def span_forest_errors(spans: list) -> list[str]:
    """Structural integrity errors of a recorded span forest.

    Checks, for every span: the parent reference resolves, no parent
    cycle exists, and ``end >= start``. For every *committed* transaction
    root (``cat == "tx"``, label ``status == "committed"``): the tree
    under it is singly rooted and acyclic by construction of the parent
    pointers, and the root (the commit-carrying span) ends at or after
    every descendant span — the paper-level causality statement that a
    commit is reported only once all its constituent work is done.

    Returns a list of human-readable error strings; empty means the
    forest is well-formed. Accepts :class:`Span` objects or the dicts
    produced by :meth:`Span.to_dict` (so exported files can be checked).
    """
    objs = [s if isinstance(s, Span) else Span.from_dict(s) for s in spans]
    by_id = {s.sid: s for s in objs}
    errors: list[str] = []

    roots: dict[int, Optional[int]] = {}  # sid -> root sid (None = broken)
    for s in objs:
        if s.sid in roots:
            continue
        chain = []
        cur: Optional[Span] = s
        while cur is not None:
            if cur.sid in chain:
                errors.append(f"span {s.sid}: parent cycle through {cur.sid}")
                for c in chain:
                    roots[c] = None
                break
            chain.append(cur.sid)
            if cur.parent == 0:
                for c in chain:
                    roots[c] = cur.sid
                break
            if cur.sid in roots:  # memoized suffix
                for c in chain:
                    roots[c] = roots[cur.sid]
                break
            nxt = by_id.get(cur.parent)
            if nxt is None:
                errors.append(f"span {cur.sid}: dangling parent {cur.parent}")
                for c in chain:
                    roots[c] = None
                nxt = None
            cur = nxt

    for s in objs:
        if s.end is not None and s.end < s.start:
            errors.append(f"span {s.sid}: ends ({s.end}) before it starts ({s.start})")

    # Committed transaction trees: the root must outlive every descendant.
    committed_roots = [
        s for s in objs
        if s.cat == "tx" and s.parent == 0 and s.label("status") == "committed"
    ]
    for root in committed_roots:
        if root.end is None:
            errors.append(f"tx root {root.sid}: committed but never ended")
            continue
        for s in objs:
            if s.sid != root.sid and roots.get(s.sid) == root.sid:
                if s.end is None:
                    errors.append(
                        f"tx root {root.sid}: descendant span {s.sid} never ended"
                    )
                elif s.end > root.end + 1e-9:
                    errors.append(
                        f"tx root {root.sid}: descendant span {s.sid} "
                        f"({s.cat}/{s.name}) ends at {s.end} after the "
                        f"commit-carrying root end {root.end}"
                    )
    return errors


def transaction_trees(spans: list) -> dict[int, list]:
    """Group spans into per-transaction trees: root sid -> member spans.

    Only trees rooted in a ``cat == "tx"`` span are returned (global
    spans — detector sweeps, elections, catch-up, lazy flushes — have no
    transaction root and are left out). The root span itself is included
    in its member list.
    """
    objs = [s if isinstance(s, Span) else Span.from_dict(s) for s in spans]
    by_id = {s.sid: s for s in objs}
    root_of: dict[int, int] = {}

    def find_root(s: Span) -> int:
        seen = []
        cur: Optional[Span] = s
        while cur is not None:
            if cur.sid in root_of:
                rid = root_of[cur.sid]
                break
            if cur.sid in seen:
                rid = 0
                break
            seen.append(cur.sid)
            if cur.parent == 0:
                rid = cur.sid if cur.cat == "tx" else 0
                break
            cur = by_id.get(cur.parent)
        else:
            rid = 0
        for sid in seen:
            root_of[sid] = rid
        return rid

    trees: dict[int, list] = {}
    for s in objs:
        rid = find_root(s)
        if rid:
            trees.setdefault(rid, []).append(s)
    return trees
