"""Run results: per-transaction records plus site/network/detector telemetry.

Everything the paper's evaluation measures comes out of this object:
response times (Figs. 9–11), deadlock counts (Figs. 10–11), and committed
transactions over time / concurrency degree (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Optional

from .client import ClientTxRecord


@dataclass
class RunResult:
    records: list[ClientTxRecord] = field(default_factory=list)
    duration_ms: float = 0.0
    site_stats: dict = field(default_factory=dict)  # site_id -> SiteStats
    network_messages: int = 0
    network_bytes: int = 0
    detector_sweeps: int = 0
    distributed_deadlocks: int = 0
    site_crashes: int = 0
    site_recoveries: int = 0
    promotions: int = 0  # primary failovers performed by the fault manager
    protocol: str = ""
    label: str = ""
    # Span forest recorded by the run's Tracer (config.tracing only;
    # empty otherwise). Shared with the cluster's tracer, not copied.
    spans: list = field(default_factory=list)

    # -- aggregation -----------------------------------------------------

    @property
    def committed(self) -> list[ClientTxRecord]:
        return [r for r in self.records if r.status == "committed"]

    @property
    def aborted(self) -> list[ClientTxRecord]:
        return [r for r in self.records if r.status == "aborted"]

    @property
    def failed(self) -> list[ClientTxRecord]:
        return [r for r in self.records if r.status == "failed"]

    def mean_response_ms(self, committed_only: bool = True) -> float:
        pool = self.committed if committed_only else self.records
        if not pool:
            return 0.0
        return mean(r.response_ms for r in pool)

    def max_response_ms(self) -> float:
        if not self.committed:
            return 0.0
        return max(r.response_ms for r in self.committed)

    @property
    def local_deadlocks(self) -> int:
        return sum(s.local_deadlocks for s in self.site_stats.values())

    @property
    def total_deadlocks(self) -> int:
        return self.local_deadlocks + self.distributed_deadlocks

    @property
    def total_restarts(self) -> int:
        return sum(r.restarts for r in self.records)

    def throughput_series(self, bucket_ms: float) -> list[tuple[float, int]]:
        """Committed transactions per time bucket (Fig. 12 left axis)."""
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be > 0")
        horizon = max((r.finished_ts for r in self.committed), default=0.0)
        n_buckets = int(horizon // bucket_ms) + 1 if horizon > 0 else 0
        buckets = [0] * n_buckets
        for r in self.committed:
            buckets[int(r.finished_ts // bucket_ms)] += 1
        return [((i + 1) * bucket_ms, c) for i, c in enumerate(buckets)]

    def concurrency_series(self, bucket_ms: float) -> list[tuple[float, int]]:
        """Transactions in flight per time bucket (Fig. 12 right axis)."""
        if bucket_ms <= 0:
            raise ValueError("bucket_ms must be > 0")
        horizon = max((r.finished_ts for r in self.records), default=0.0)
        n_buckets = int(horizon // bucket_ms) + 1 if horizon > 0 else 0
        out: list[tuple[float, int]] = []
        for i in range(n_buckets):
            t0, t1 = i * bucket_ms, (i + 1) * bucket_ms
            active = sum(
                1 for r in self.records if r.submitted_ts < t1 and r.finished_ts > t0
            )
            out.append((t1, active))
        return out

    def completion_time_ms(self) -> float:
        """When the last committed transaction finished (Fig. 12 totals)."""
        return max((r.finished_ts for r in self.committed), default=0.0)

    def summary(self) -> str:
        lines = [
            f"run {self.label or self.protocol}: "
            f"{len(self.committed)} committed, {len(self.aborted)} aborted, "
            f"{len(self.failed)} failed ({len(self.records)} total)",
            f"  mean response: {self.mean_response_ms():.2f} ms; "
            f"duration: {self.duration_ms:.1f} ms",
            f"  deadlocks: {self.local_deadlocks} local + "
            f"{self.distributed_deadlocks} distributed",
            f"  network: {self.network_messages} messages, {self.network_bytes} bytes",
        ]
        return "\n".join(lines)
