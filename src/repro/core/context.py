"""Per-site, per-transaction bookkeeping.

A :class:`SiteTxContext` exists at every site where a transaction has
executed at least one operation: it owns the undo log, the per-operation
applied-change records (for DataGuide re-sync on rollback) and the lock pairs
each operation newly acquired (so a *single* operation can be backed out when
it fails to lock at a sibling site, per Algorithm 1 l. 16).

A :class:`CoordinatorRecord` exists only at the coordinator site and tracks
the in-flight protocol state of Algorithm 1: the current attempt number,
outstanding participant responses, acknowledgement collection for
undo/commit/abort rounds, and the wake/abort signalling used when the
transaction is in wait mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional

from ..update.operations import AppliedChange
from ..update.undo import UndoLog
from .transaction import Operation, OpKind, Transaction, TxId


@dataclass
class OpEntry:
    """What one executed operation did at this site."""

    doc_name: str
    undo_count: int = 0  # undo-log entries appended by this operation
    changes: list[AppliedChange] = field(default_factory=list)
    lock_pairs: list = field(default_factory=list)  # (key, mode) newly granted
    executed: bool = False
    op: Optional[Operation] = None  # the operation itself (update logging)
    result_size: int = 0  # query answer bytes (replayed on duplicate delivery)


@dataclass
class SiteTxContext:
    tid: TxId
    coordinator: Hashable
    undo: UndoLog = field(default_factory=UndoLog)
    op_entries: dict[int, OpEntry] = field(default_factory=dict)
    # Set when this site learned the transaction's updates were replicated
    # to the secondaries (it received the log-entry record): if the
    # coordinator then dies, the orphan resolves to commit, never to an
    # undo that would diverge from the already-synced secondaries.
    synced: bool = False
    # Documents whose updates were already folded into this site's stable
    # (committed-state) copy during the replica sync — the commit must not
    # fold them twice.
    stable_applied: set = field(default_factory=set)
    # op.index -> (structure version, LockSpec): the spec a blocked
    # operation computed, reused on retry while the protocol's structure
    # summary is unchanged (config.spec_cache). The cached spec keeps its
    # nodes_visited meter, so retries are charged identical simulated cost.
    spec_cache: dict = field(default_factory=dict)

    def touched_doc_names(self) -> list[str]:
        """Documents with data effects at this site (need persisting/undo)."""
        out: list[str] = []
        for idx in sorted(self.op_entries):
            entry = self.op_entries[idx]
            if entry.undo_count and entry.doc_name not in out:
                out.append(entry.doc_name)
        return out

    def executed_updates_by_doc(self) -> dict[str, list[Operation]]:
        """Executed update operations at this site, per document, in order."""
        out: dict[str, list[Operation]] = {}
        for idx in sorted(self.op_entries):
            entry = self.op_entries[idx]
            if entry.executed and entry.op is not None and entry.op.kind is OpKind.UPDATE:
                out.setdefault(entry.doc_name, []).append(entry.op)
        return out


class _AbortTx(Exception):
    """Internal control flow: unwind Algorithm 1 into the abort procedure."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _SiteCrashed(Exception):
    """Internal control flow: the site died under a running coordinator.

    The crash already delivered the client outcome and wiped the volatile
    state; the coordinator generator must stop without touching anything.
    """


@dataclass
class CoordinatorRecord:
    tx: Transaction
    tid: TxId
    deliver: Callable[[Any], None]  # called with the TxOutcome at the end

    # wake signalling (wait mode)
    wake_event: Optional[Any] = None
    wake_pending: bool = False

    # abort signalling (deadlock detector / timeouts)
    abort_requested: bool = False
    abort_reason: str = ""

    # remote-operation response collection
    attempt: int = 0
    expected: set = field(default_factory=set)
    responses: dict = field(default_factory=dict)
    response_event: Optional[Any] = None

    # ack collection for undo / sync / commit / abort rounds
    phase: str = ""  # '', 'undo', 'sync', 'commit', 'abort'
    ack_expected: set = field(default_factory=set)
    acks: dict = field(default_factory=dict)
    ack_event: Optional[Any] = None
    # Quorum-write rounds (replica_write_policy="quorum"): doc_name -> how
    # many *ok* remote sync acks settle that document. The round fires as
    # soon as every entry is satisfied — commit latency stops tracking the
    # slowest replica — or when every expected ack arrived, whichever is
    # first. Empty for all-ack rounds.
    ack_quorum: dict = field(default_factory=dict)
    # Documents whose routed secondary refused a read as unboundably stale
    # (max_read_staleness_ms): the retry re-routes these to the primary.
    stale_read_docs: set = field(default_factory=set)

    # documents this transaction has updated (primary-copy ROWA pins
    # subsequent reads of them to the primary: read-your-writes)
    written_docs: set = field(default_factory=set)

    # doc -> sites where its updates executed; at commit the sync layer
    # verifies the executing site still is the live primary (a promotion in
    # between means the uncommitted effects died with the old primary)
    write_sites: dict = field(default_factory=dict)

    # set once a secondary durably applied the commit-time sync; past this
    # point the updates are durable beyond the primary and the transaction
    # can no longer be undone (it fails instead of aborting)
    synced: bool = False

    # set when the commit round partially applied — some participant
    # committed (or crashed mid-round, ambiguously) while another refused
    # or died. A clean abort would lie to the client; the transaction
    # degrades to fail-with-state-kept instead.
    partial_commit: bool = False

    # sites where an operation of this transaction completed (locks held /
    # data effects present): a crash of any of them voids the transaction
    executed_sites: set = field(default_factory=set)

    # operations answered by a materialized-view host: the host never joins
    # the transaction, so when *every* operation was view-served the commit
    # is pure bookkeeping — no locks to release, no 2PC round to run
    view_served_ops: int = 0

    # sites dropped from the current ack round because they crashed
    down_acks: set = field(default_factory=set)

    # Open span ids at this coordinator (repro.obs, config.tracing): the
    # transaction's root span, the current operation round's span, and the
    # current operation's blocked-period span (one lock_wait span per
    # blocked period — it is *extended* across spurious wakes and retry
    # rounds rather than re-opened, so wasted wake churn reads as lock
    # wait, not coordinator work). All stay 0 when tracing is off.
    root_span: int = 0
    op_span: int = 0
    wait_span: int = 0

    def drop_site_from_acks(self, down) -> bool:
        """Remove a crashed site's outstanding ack keys; True if any were."""
        stale = {
            key
            for key in self.ack_expected
            if key not in self.acks
            and (key == down or (isinstance(key, tuple) and key[0] == down))
        }
        if stale:
            self.ack_expected -= stale
            self.down_acks.add(down)
        return bool(stale)
