"""Distributed deadlock detection (Algorithm 4).

A single designated site periodically collects every site's wait-for graph,
unions them, and looks for a cycle. If one is found, the most recently
started transaction in the cycle is ordered aborted at its coordinator site.

Modification (iii) of the paper: "a process was added that periodically goes
through all instances of DTX and verifies if a circle is present at the union
of the wait-for graphs."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..deadlock.wfg import WaitForGraph, newest_transaction
from .messages import AbortOrder, WfgRequest, WfgResponse


@dataclass
class DetectorStats:
    sweeps: int = 0
    deadlocks_found: int = 0
    victims: list = field(default_factory=list)
    edges_examined: int = 0


class DeadlockDetector:
    def __init__(self, site, all_site_ids: list, config):
        self.site = site
        self.env = site.env
        self.network = site.network
        self.all_site_ids = list(all_site_ids)
        self.config = config
        self.stats = DetectorStats()
        self._collect_event = None
        self._pending: set = set()
        self._edges: list = []
        site.detector = self
        self.process = self.env.process(self._run())

    def on_response(self, msg: WfgResponse) -> None:
        """Fed by the site's Listener when a WfgResponse arrives."""
        if self._collect_event is None or msg.site not in self._pending:
            return
        self._pending.discard(msg.site)
        self._edges.extend(msg.edges)
        if not self._pending and not self._collect_event.triggered:
            self._collect_event.succeed(None)

    def on_site_down(self, site_id) -> None:
        """A polled site crashed: stop waiting for its graph this sweep."""
        if self._collect_event is None or site_id not in self._pending:
            return
        self._pending.discard(site_id)
        if not self._pending and not self._collect_event.triggered:
            self._collect_event.succeed(None)

    def _run(self):
        yield self.env.timeout(self.config.detector_initial_delay_ms)
        while True:
            if self.site.alive:
                yield from self._sweep()
            yield self.env.timeout(self.config.detector_interval_ms)

    def _sweep(self):
        tr = self.site.tracer
        if tr is None:
            return (yield from self._sweep_inner())
        # Sweeps poll every site's wait-for graph: global span (parent 0).
        sid = tr.begin(
            "detector_sweep", "deadlock", self.site.site_id, 0, self.env.now
        )
        try:
            return (yield from self._sweep_inner())
        finally:
            tr.end(sid, self.env.now)

    def _sweep_inner(self):
        self.stats.sweeps += 1
        # Local graph is read directly; remote graphs are requested from the
        # *live* sites (Alg. 4 l. 4); a site crashing mid-collection is
        # dropped via on_site_down, and the interval timeout bounds the
        # sweep either way (detection pauses rather than wedges while the
        # detector's own site is down).
        self._edges = list(self.site.wfg.snapshot())
        others = [
            s
            for s in self.all_site_ids
            if s != self.site.site_id and self.network.is_up(s)
        ]
        if others:
            self._pending = set(others)
            self._collect_event = self.env.event()
            for s in others:
                self.network.send(self.site.site_id, s, WfgRequest(requester=self.site.site_id))
            deadline = self.env.timeout(self.config.detector_interval_ms)
            yield self.env.any_of([self._collect_event, deadline])
            self._collect_event = None
            if not self.site.alive:
                return
        edges = self._edges
        self.stats.edges_examined += len(edges)
        if edges:
            yield self.env.timeout(len(edges) * self.config.costs.wfg_merge_per_edge_ms)
        graph = WaitForGraph.from_edges(edges)
        cycle = graph.find_any_cycle()
        if cycle is None:
            return
        victim = newest_transaction(cycle)
        self.stats.deadlocks_found += 1
        self.stats.victims.append(victim)
        tr = self.site.tracer
        if tr is not None:
            now = self.env.now
            tr.add(
                "deadlock_victim", "deadlock", self.site.site_id, 0, now, now,
                {"tx": str(victim), "cycle": str(len(cycle))},
            )
        # The victim's coordinator lives at the site that assigned its TxId.
        self.network.send(self.site.site_id, victim.site, AbortOrder(tid=victim))
