"""Membership: who is up, who leads, and how the cluster finds out.

Two regimes, selected by ``SystemConfig.failure_detector``:

**"perfect"** (default — the paper's modeling assumption, and bit-identical
to the pre-membership code). The cluster owns one omniscient monitor: when
a site crashes it

1. partitions the site off the network (its sends and deliveries drop);
2. promotes a new primary for every document the dead site led, choosing
   the **most-caught-up live secondary** (highest applied LSN in its
   durable update log; placement order breaks ties deterministically) and
   bumping the document's election epoch so the deposed primary is fenced;
3. broadcasts a :class:`~repro.core.messages.SiteDownNotice` to every live
   site so in-flight coordinators stop waiting on the dead participant.

The monitor reads the candidates' log tips directly off the in-process
site objects and mutates the *shared* catalog — the in-process stand-in
for the election round trip. Recovery is the inverse (rejoin + a
:class:`~repro.core.messages.SiteUpNotice` broadcast).

**"lease"**. The oracle is gone: every membership fact travels as a
message over :class:`~repro.sim.network.Network`. Each site heartbeats
every other site (``heartbeat_interval_ms``); a peer becomes *suspected*
only when its lease expires (nothing heard for ``lease_timeout_ms``) —
which a crash, a partition, or plain message loss can all cause, so
suspicion can be **false**. A site that suspects the primary of a document
it hosts runs an election over the wire (:class:`LogTipQuery` /
:class:`LogTipReport`, requiring reports from a **majority** of the
replica set), and the winner announces itself with an epoch-bumped
:class:`PrimaryAnnounce` applied at each receiver's own
:class:`~repro.distribution.catalog.CatalogView`. Nothing here mutates
the shared catalog; split-brain is prevented by epoch fencing and the
commit-time sync quorum, not by perfect knowledge. The per-site state for
all of this lives in :class:`SiteMembership`; the processes that drive it
live in :class:`~repro.core.site.DTXSite`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..distribution.catalog import Catalog
from ..sim.network import Network
from .messages import SiteDownNotice, SiteUpNotice

# Source id used for monitor broadcasts; never registered, never down.
MONITOR_ID = "$failure-monitor"


@dataclass
class FaultStats:
    crashes: int = 0
    recoveries: int = 0
    promotions: int = 0
    orphaned_docs: int = 0  # primary crashed with no live secondary
    promotion_log: list = field(default_factory=list)  # (time, doc, old, new, epoch)


class MembershipService:
    """Cluster-level membership authority (and, in lease mode, scorekeeper).

    In perfect mode this *is* the failure monitor. In lease mode it only
    flips the physical network state on crash/recovery — detection,
    election and dissemination all run at the sites — and aggregates the
    promotion statistics the sites report via :meth:`record_promotion`.
    """

    def __init__(
        self,
        env,
        network: Network,
        catalog: Catalog,
        sites: dict,
        detector: str = "perfect",
    ):
        self.env = env
        self.network = network
        self.catalog = catalog
        self.sites = sites  # site_id -> DTXSite (the cluster's live view)
        self.detector = detector
        self.stats = FaultStats()

    @property
    def is_lease(self) -> bool:
        return self.detector == "lease"

    # -- crash -------------------------------------------------------------

    def on_site_crashed(self, site_id: Hashable) -> None:
        """Called by the crashing site after it wiped its volatile state."""
        self.stats.crashes += 1
        self.network.set_down(site_id)
        if self.is_lease:
            # No oracle: the crash is physical only. Peers notice when the
            # site's lease expires and elect over the wire.
            return
        self._promote_away_from(site_id)
        for other_id, other in self.sites.items():
            if other_id != site_id and other.alive:
                self.network.send(MONITOR_ID, other_id, SiteDownNotice(site=site_id))

    def _promote_away_from(self, down: Hashable) -> None:
        for doc_name in self.catalog.documents_at(down):
            rset = self.catalog.replica_set(doc_name)
            if rset.primary != down:
                continue
            live = [s for s in rset.secondaries if self.network.is_up(s)]
            if not live:
                # Every replica is down: the document is unavailable until a
                # holder recovers (operations on it abort with
                # 'no-live-replica' in the meantime).
                self.stats.orphaned_docs += 1
                continue
            order = list(rset.secondaries)
            best = min(
                live,
                key=lambda s: (-self._applied_lsn(s, doc_name), order.index(s)),
            )
            self.catalog.set_primary(doc_name, best)  # bumps the epoch
            new_log = self.sites[best].log_for(doc_name)
            if new_log.applied_lsn != new_log.max_recorded_lsn:
                # A hole inherited at promotion can never fill: its batch
                # died with the old primary. Compact the log to a snapshot
                # base at the tip — the data of every recorded entry is
                # already applied here — so catch-up serving keeps working
                # (replicas below the base are healed by state transfer).
                new_log.reset_to_snapshot(
                    new_log.max_recorded_lsn, self.catalog.epoch(doc_name)
                )
            # New allocations continue above everything the new primary has
            # recorded (including what the compaction just folded into the
            # base), so no LSN is re-allocated under the new epoch at the
            # serving primary.
            self.catalog.reset_lsn(doc_name, new_log.max_recorded_lsn)
            self.stats.promotions += 1
            self.stats.promotion_log.append(
                (self.env.now, doc_name, down, best, self.catalog.epoch(doc_name))
            )
            # Anti-entropy: the election chose the most-caught-up replica,
            # so the other survivors may lag — and under lazy propagation
            # the batch that would re-trigger their healing may have died
            # with the old primary. Nudge them to reconcile now.
            for secondary in live:
                if secondary != best:
                    self.sites[secondary].nudge_catch_up(doc_name)

    def _applied_lsn(self, site_id: Hashable, doc_name: str) -> int:
        return self.sites[site_id].log_for(doc_name).applied_lsn

    def incarnation_of(self, site_id: Hashable) -> int:
        """Current restart count of ``site_id`` (the perfect-mode oracle
        read; lease-mode sites track peer incarnations from heartbeats)."""
        return self.sites[site_id].incarnation

    # -- recovery ----------------------------------------------------------

    def on_site_recovered(self, site_id: Hashable) -> None:
        """Rejoin the network; the site itself drives catch-up afterwards.

        Perfect mode also tells the survivors: a replica whose earlier
        catch-up attempts were swallowed by this site's outage (it leads
        documents they host) retries once the primary is back. Lease mode
        leaves that to the resuming heartbeats."""
        self.stats.recoveries += 1
        self.network.set_up(site_id)
        if self.is_lease:
            return
        for other_id, other in self.sites.items():
            if other_id != site_id and other.alive:
                self.network.send(MONITOR_ID, other_id, SiteUpNotice(site=site_id))

    # -- lease-mode reporting ----------------------------------------------

    def record_promotion(
        self, doc_name: str, old: Hashable, new: Hashable, epoch: int
    ) -> None:
        """A site won an over-the-wire election; keep the cluster tallies
        (``RunResult.promotions``, the demo's promotion log) meaningful."""
        self.stats.promotions += 1
        self.stats.promotion_log.append((self.env.now, doc_name, old, new, epoch))


# The pre-membership name; external code and older tests use it freely.
FaultManager = MembershipService


@dataclass
class SiteMembership:
    """One site's lease table: what *it* believes about every peer.

    Volatile (a crash resets it — a recovered site re-learns the world
    from the heartbeats that greet it). The owning
    :class:`~repro.core.site.DTXSite` drives every transition; this object
    just holds the facts:

    * ``last_heard`` — when a heartbeat from each peer last arrived;
    * ``suspected`` — peers whose lease has expired. Suspicion is a local
      belief, not a fact: a suspected peer may be alive across a
      partition, so acting on suspicion must stay safe under falseness
      (epoch fencing + sync quorum, not state destruction);
    * ``incarnations`` — highest restart counter heard per peer, the
      lease-mode replacement for the monitor's ``incarnation_of`` oracle;
    * ``watermarks`` — per peer, per document applied-LSN watermarks from
      heartbeats; what primaries base log compaction on.
    """

    lease_timeout_ms: float
    last_heard: dict = field(default_factory=dict)  # peer -> sim time
    suspected: set = field(default_factory=set)
    incarnations: dict = field(default_factory=dict)  # peer -> int
    watermarks: dict = field(default_factory=dict)  # peer -> {doc -> lsn}

    def is_live(self, peer: Hashable) -> bool:
        return peer not in self.suspected

    def heard_from(self, peer: Hashable, now: float, incarnation: int) -> bool:
        """Record a heartbeat; True when ``peer`` was suspected (a false
        suspicion, or a recovery — either way the peer is back)."""
        self.last_heard[peer] = now
        known = self.incarnations.get(peer, 0)
        if incarnation > known:
            self.incarnations[peer] = incarnation
        was_suspected = peer in self.suspected
        self.suspected.discard(peer)
        return was_suspected

    def lease_expired(self, peer: Hashable, now: float) -> bool:
        heard = self.last_heard.get(peer)
        return heard is not None and (now - heard) > self.lease_timeout_ms

    def grace(self, peers, now: float) -> None:
        """Start (or restart) every peer's lease as of ``now`` — a site
        coming up owes each peer one full lease before suspecting it."""
        for peer in peers:
            self.last_heard.setdefault(peer, now)

    def incarnation_of(self, peer: Hashable) -> int:
        return self.incarnations.get(peer, 0)

    def watermark_of(self, peer: Hashable, doc_name: str) -> int:
        return self.watermarks.get(peer, {}).get(doc_name, 0)
