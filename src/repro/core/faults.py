"""Site failure handling: crash bookkeeping, primary failover, notification.

The cluster owns one :class:`FaultManager`. When a site crashes it

1. partitions the site off the network (its sends and deliveries drop);
2. promotes a new primary for every document the dead site led, choosing
   the **most-caught-up live secondary** (highest applied LSN in its
   durable update log; placement order breaks ties deterministically) and
   bumping the document's election epoch so the deposed primary is fenced;
3. broadcasts a :class:`~repro.core.messages.SiteDownNotice` to every live
   site so in-flight coordinators stop waiting on the dead participant.

The monitor reads the candidates' log tips directly — the in-process
stand-in for the election round trip, the same way the shared catalog
stands in for placement lookups. Recovery is the inverse: the site rejoins
the network (as a secondary; epochs keep deposed primaries deposed) and
then catches up document by document from the current primaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..distribution.catalog import Catalog
from ..sim.network import Network
from .messages import SiteDownNotice, SiteUpNotice

# Source id used for monitor broadcasts; never registered, never down.
MONITOR_ID = "$failure-monitor"


@dataclass
class FaultStats:
    crashes: int = 0
    recoveries: int = 0
    promotions: int = 0
    orphaned_docs: int = 0  # primary crashed with no live secondary
    promotion_log: list = field(default_factory=list)  # (time, doc, old, new, epoch)


class FaultManager:
    def __init__(self, env, network: Network, catalog: Catalog, sites: dict):
        self.env = env
        self.network = network
        self.catalog = catalog
        self.sites = sites  # site_id -> DTXSite (the cluster's live view)
        self.stats = FaultStats()

    # -- crash -------------------------------------------------------------

    def on_site_crashed(self, site_id: Hashable) -> None:
        """Called by the crashing site after it wiped its volatile state."""
        self.stats.crashes += 1
        self.network.set_down(site_id)
        self._promote_away_from(site_id)
        for other_id, other in self.sites.items():
            if other_id != site_id and other.alive:
                self.network.send(MONITOR_ID, other_id, SiteDownNotice(site=site_id))

    def _promote_away_from(self, down: Hashable) -> None:
        for doc_name in self.catalog.documents_at(down):
            rset = self.catalog.replica_set(doc_name)
            if rset.primary != down:
                continue
            live = [s for s in rset.secondaries if self.network.is_up(s)]
            if not live:
                # Every replica is down: the document is unavailable until a
                # holder recovers (operations on it abort with
                # 'no-live-replica' in the meantime).
                self.stats.orphaned_docs += 1
                continue
            order = list(rset.secondaries)
            best = min(
                live,
                key=lambda s: (-self._applied_lsn(s, doc_name), order.index(s)),
            )
            self.catalog.set_primary(doc_name, best)  # bumps the epoch
            new_log = self.sites[best].log_for(doc_name)
            if new_log.applied_lsn != new_log.max_recorded_lsn:
                # A hole inherited at promotion can never fill: its batch
                # died with the old primary. Compact the log to a snapshot
                # base at the tip — the data of every recorded entry is
                # already applied here — so catch-up serving keeps working
                # (replicas below the base are healed by state transfer).
                new_log.reset_to_snapshot(
                    new_log.max_recorded_lsn, self.catalog.epoch(doc_name)
                )
            # New allocations continue above everything the new primary has
            # recorded (including what the compaction just folded into the
            # base), so no LSN is re-allocated under the new epoch at the
            # serving primary.
            self.catalog.reset_lsn(doc_name, new_log.max_recorded_lsn)
            self.stats.promotions += 1
            self.stats.promotion_log.append(
                (self.env.now, doc_name, down, best, self.catalog.epoch(doc_name))
            )
            # Anti-entropy: the election chose the most-caught-up replica,
            # so the other survivors may lag — and under lazy propagation
            # the batch that would re-trigger their healing may have died
            # with the old primary. Nudge them to reconcile now.
            for secondary in live:
                if secondary != best:
                    self.sites[secondary].nudge_catch_up(doc_name)

    def _applied_lsn(self, site_id: Hashable, doc_name: str) -> int:
        return self.sites[site_id].log_for(doc_name).applied_lsn

    def incarnation_of(self, site_id: Hashable) -> int:
        """Current restart count of ``site_id`` (the membership view)."""
        return self.sites[site_id].incarnation

    # -- recovery ----------------------------------------------------------

    def on_site_recovered(self, site_id: Hashable) -> None:
        """Rejoin the network; the site itself drives catch-up afterwards.

        The survivors are told too: a replica whose earlier catch-up
        attempts were swallowed by this site's outage (it leads documents
        they host) retries once the primary is back."""
        self.stats.recoveries += 1
        self.network.set_up(site_id)
        for other_id, other in self.sites.items():
            if other_id != site_id and other.alive:
                self.network.send(MONITOR_ID, other_id, SiteUpNotice(site=site_id))
