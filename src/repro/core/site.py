"""A DTX instance: Listener + TransactionManager (Scheduler, LockManager) +
DataManager, at one site.

The architecture follows Fig. 1 of the paper:

* the **Listener** process receives client requests and inter-scheduler
  messages from the site's network inbox and dispatches them;
* the **Scheduler** role is split between (a) one coordinator coroutine per
  locally submitted transaction (Algorithm 1, plus commit/abort procedures,
  Algorithms 5–6) and (b) a participant loop executing remote operations in
  arrival order (Algorithm 2);
* the **LockManager** holds the protocol's lock table plus the site's
  wait-for graph and implements Algorithm 3;
* the **DataManager** bridges the in-memory documents and the storage
  backend.

All CPU work is charged to the simulated clock through the cost model in
:class:`repro.config.CostConfig`; all remote interaction flows through
:class:`repro.sim.network.Network`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

from ..config import SystemConfig
from ..deadlock.wfg import WaitForGraph
from ..distribution.quorum import VersionVector, choose_read_replica, version_frontier
from ..distribution.replication import ReplicationPolicy, UpdateLog, UpdateLogEntry
from ..errors import ReproError, UpdateError
from ..locking.manager import LockManager
from ..locking.table import LockTable
from ..protocols.base import ConcurrencyProtocol
from ..sim.environment import Environment
from ..sim.network import Network
from ..sim.queues import Store
from ..sim.rng import substream
from ..storage.base import StorageBackend
from ..storage.datamanager import DataManager
from ..update.applier import apply_update
from ..xml.model import Document
from ..xml.parser import parse_document
from ..xml.serializer import serialize_document
from ..xpath.evaluator import EvalStats, evaluate
from ..xpath.parser import parse_cache_stats
from .context import CoordinatorRecord, OpEntry, SiteTxContext, _AbortTx, _SiteCrashed
from .faults import SiteMembership
from .messages import (
    AbortAck,
    AbortOrder,
    AbortRequest,
    CatchUpRequest,
    CatchUpResponse,
    ClientRequest,
    CommitAck,
    CommitRequest,
    FailNotice,
    HeartbeatMessage,
    LogTipQuery,
    LogTipReport,
    MessagePool,
    PrimaryAnnounce,
    ReadRepairNudge,
    RemoteOpRequest,
    RemoteOpResult,
    ReplicaSyncAck,
    ReplicaSyncBatch,
    ReplicaSyncBatchAck,
    ReplicaSyncRequest,
    SiteDownNotice,
    SiteUpNotice,
    TxOutcome,
    UndoOpAck,
    UndoOpRequest,
    VersionProbe,
    VersionReport,
    ViewDeltaBatch,
    ViewFetchRequest,
    ViewFetchResponse,
    ViewReadRequest,
    ViewReadResult,
    WakeNotice,
    WfgRequest,
    WfgResponse,
)
from .transaction import Operation, OpKind, Transaction, TxId, TxState


@dataclass
class _SyncOutbox:
    """Group-commit staging area: one per (primary, document) pair.

    Transactions that reach the eager replica-sync step while the window
    is open enqueue their per-document update batch here instead of
    sending their own ReplicaSyncRequest round; the flush process turns
    the whole queue into one ReplicaSyncBatch per target and settles every
    queued transaction's waiter event with its individual outcome.
    """

    primary: Hashable
    doc_name: str
    queue: list = field(default_factory=list)  # (rec, ops, waiter Event)
    open: bool = True


@dataclass
class _SyncBatchState:
    """Ack collection for one in-flight ReplicaSyncBatch fan-out.

    Under quorum writes ``quorum_needed`` > 0 fires the round early: as
    soon as every transaction in the batch has that many *ok* remote acks
    (on top of the coordinator-local durable record), nobody waits for the
    stragglers.
    """

    expected: set = field(default_factory=set)  # sites still to answer
    acks: dict = field(default_factory=dict)  # site -> ReplicaSyncBatchAck
    event: object = None
    quorum_needed: int = 0  # ok remote acks per transaction (0 = all-ack)
    tids: list = field(default_factory=list)  # transactions riding the batch


@dataclass
class _ProbeState:
    """Report collection for one in-flight version-probe fan-out.

    Probes fan to every live replica but the round settles at ``needed``
    (= R) reports: a slow or silently-cut replica never gates the read,
    which is the read-side mirror of the W-ack write quorum.
    """

    expected: set = field(default_factory=set)  # sites that were probed
    needed: int = 0  # reports that settle the round (R)
    reports: dict = field(default_factory=dict)  # site -> VersionReport
    event: object = None


#: Root element of the placeholder a joining replica hosts until its first
#: snapshot transfer arrives (never queried: quorum probes rank the empty
#: log last, and primary-copy routing never prefers a brand-new secondary).
MIGRATION_PLACEHOLDER = "migration-placeholder"


@dataclass
class LocalResult:
    """Outcome of executing one operation against this site's lock manager."""

    acquired: bool
    executed: bool = False
    deadlock: bool = False
    failed: bool = False
    stale: bool = False  # follower-read fence refusal (re-route, not abort)
    result_size: int = 0
    cost_ms: float = 0.0


@dataclass
class SiteStats:
    ops_executed: int = 0
    ops_blocked: int = 0
    local_deadlocks: int = 0
    remote_ops_served: int = 0
    commits: int = 0
    aborts: int = 0
    fails: int = 0
    wake_notices_sent: int = 0
    waiter_wakes: int = 0  # waiters woken at this site (local + remote)
    spec_cache_hits: int = 0  # retries that reused a cached LockSpec
    group_batches_sent: int = 0  # ReplicaSyncBatch messages sent from here
    group_batched_syncs: int = 0  # per-tx sync batches that rode a group batch
    undo_ops: int = 0
    coordinated: int = 0
    peak_lock_count: int = 0
    replica_syncs_served: int = 0  # ReplicaSyncRequests applied at this site
    reads_routed: int = 0  # queries this coordinator routed to one replica
    crashes: int = 0
    recoveries: int = 0
    catchups: int = 0  # catch-up rounds completed (recovery or gap healing)
    catchup_entries_replayed: int = 0
    catchup_snapshots: int = 0  # divergent logs healed by state transfer
    syncs_refused: int = 0  # stale-epoch / fault-hook sync refusals served
    lazy_batches_propagated: int = 0  # lazy ReplicaSyncBatch messages sent
    lazy_entries_coalesced: int = 0  # log entries that rode a lazy batch
    orphans_resolved: int = 0  # transactions of dead coordinators settled
    # Lease-mode membership (failure_detector="lease").
    heartbeats_sent: int = 0
    suspicions: int = 0  # peers whose lease expired at this site
    false_suspicions: int = 0  # suspected peers that turned out alive
    elections_started: int = 0
    elections_won: int = 0  # this site assumed primacy of a document
    elections_no_quorum: int = 0  # rounds abandoned for lack of a majority
    announces_applied: int = 0  # newer (epoch, primary) facts adopted
    lease_refusals: int = 0  # writes refused for want of a primacy lease
    log_entries_compacted: int = 0  # entries checkpointed out of UpdateLogs
    # Quorum replication (replica_read_policy / replica_write_policy = "quorum").
    quorum_reads: int = 0  # queries resolved through a version-probe round
    version_probes_sent: int = 0
    version_reports_served: int = 0
    read_repairs_sent: int = 0  # laggards this coordinator nudged to heal
    read_repairs_received: int = 0  # nudges that actually triggered catch-up
    sync_acks_awaited: int = 0  # ok remote acks counted at quorum-commit time
    quorum_read_retries: int = 0  # probe rounds re-run (silent/short reports)
    stale_reads_refused: int = 0  # follower reads bounced by the staleness fence
    # Online migration (distribution.migration.MigrationManager).
    migrations_admitted: int = 0  # placeholder replicas adopted (join phase)
    migrations_retired: int = 0  # replica copies dropped (retire phase)
    # Message pooling (config.message_pool). The pool is shared by all sites
    # of a run, so these are *snapshots* of the cluster pool's cumulative
    # counters as of this site's last pool interaction — read the max across
    # sites (not the sum) for run totals.
    pool_hits: int = 0  # acquires served by recycling a released message
    pool_misses: int = 0  # acquires that had to allocate
    # XPath parse memo (process-wide LRU, like the pool: snapshots of the
    # global counters as of this site's last operation — read the max
    # across sites, not the sum).
    parse_cache_hits: int = 0
    parse_cache_misses: int = 0
    # Materialized views (repro.views; routed when view_staleness_ms > 0).
    view_reads_routed: int = 0  # read ops this coordinator answered from a view
    view_read_fallbacks: int = 0  # view rounds refused/timed out -> locked path
    view_reads_served: int = 0  # ViewReadRequests this host answered ok
    view_stale_refusals: int = 0  # serves refused: staleness bound exceeded
    view_epoch_refusals: int = 0  # serves refused: epoch mismatch (fenced)
    view_fenced_deltas: int = 0  # delta batches dropped: older epoch
    view_deltas_applied: int = 0  # log entries applied to hosted shadows
    view_delta_batches: int = 0  # ViewDeltaBatch messages pushed from here
    view_deltas_coalesced: int = 0  # log entries that rode a pushed batch
    view_hydrations: int = 0  # snapshot (re)materializations at this host
    view_staleness_sum_ms: float = 0.0  # summed staleness at serve time


#: SiteStats fields that are *snapshots* of process- or cluster-global
#: counters (the message pool and the XPath parse memo) or high-water
#: marks: run totals take the max across sites, never the sum.
SNAPSHOT_STAT_FIELDS = frozenset(
    {
        "pool_hits",
        "pool_misses",
        "parse_cache_hits",
        "parse_cache_misses",
        "peak_lock_count",
    }
)


def aggregate_site_stats(stats) -> dict:
    """Cluster-wide totals for every :class:`SiteStats` field.

    Driven by ``dataclasses.fields`` so a new counter automatically shows
    up in every report built on this — reporting code must not hand-copy
    the field list (it silently drifts when fields are added). Snapshot
    and high-water fields (:data:`SNAPSHOT_STAT_FIELDS`) aggregate as the
    max across sites; everything else sums.
    """
    stats = list(stats)
    totals: dict = {}
    for f in dataclasses.fields(SiteStats):
        values = [getattr(s, f.name) for s in stats]
        if f.name in SNAPSHOT_STAT_FIELDS:
            totals[f.name] = max(values, default=0)
        else:
            totals[f.name] = sum(values)
    return totals


class DTXSite:
    def __init__(
        self,
        env: Environment,
        network: Network,
        site_id: Hashable,
        protocol: ConcurrencyProtocol,
        backend: StorageBackend,
        catalog,
        config: SystemConfig,
        replication: Optional[ReplicationPolicy] = None,
        pool: Optional[MessagePool] = None,
    ):
        self.env = env
        self.network = network
        self.site_id = site_id
        self.protocol = protocol
        self.catalog = catalog
        self.config = config
        self.costs = config.costs
        self.replication = replication or ReplicationPolicy.from_config(config)
        self._route_rng = substream(config.seed, "route", str(site_id))

        self.inbox: Store = network.register(site_id)
        self.data_manager = DataManager(backend)
        self.wfg = WaitForGraph()
        self.lock_manager = LockManager(LockTable(protocol.matrix), self.wfg)

        self.tx_contexts: dict[TxId, SiteTxContext] = {}
        self.coordinators: dict[TxId, CoordinatorRecord] = {}
        self.finished: set[TxId] = set()
        self.waiters: dict[TxId, Hashable] = {}  # waiting tid -> coordinator site
        # Conflict-indexed wait registry (wake_policy="targeted"): the
        # (key, mode) pairs each blocked operation requested. A release
        # wakes only the waiters with a requested pair that is
        # *incompatible* with something actually released — a merely
        # shared key (e.g. the root's intention locks, which every
        # operation touches in compatible modes) wakes nobody.
        self._wait_sets: dict[TxId, frozenset] = {}
        # Locks released outside end-of-transaction (single-operation undo
        # backs locks out without waking anyone, per the paper's
        # end-of-transaction wake rule), as key -> set of modes. They are
        # folded into the *next* end-of-transaction wake sweep so a
        # targeted policy cannot lose the wake-up a broadcast would have
        # delivered then.
        self._deferred_wake_keys: dict = {}
        # Group commit (config.group_commit_window_ms > 0).
        self._sync_outboxes: dict[tuple, _SyncOutbox] = {}
        self._sync_batches: dict[int, _SyncBatchState] = {}
        self._batch_seq = 0
        # Quorum reads: in-flight version-probe rounds at this coordinator.
        self._version_probes: dict[int, _ProbeState] = {}
        self._probe_seq = 0
        self.remote_ops: Store = Store(env)
        self._tx_seq = 0
        self.stats = SiteStats()
        self.detector = None  # attached by the cluster on one site
        # Span recorder (repro.obs), shared cluster-wide and attached by
        # the cluster when config.tracing is on. None keeps every
        # instrumentation point a single falsy attribute check.
        self.tracer = None
        # Recycle pool for the highest-volume messages, shared by the whole
        # cluster run (requests and results migrate between sites). A
        # standalone site gets its own; ``message_pool=False`` disables
        # pooling entirely.
        if not config.message_pool:
            self._pool: Optional[MessagePool] = None
        else:
            self._pool = pool if pool is not None else MessagePool()

        # Fault tolerance. ``alive`` gates every externally visible effect;
        # ``logs`` is the durable per-document update log (survives crashes,
        # like the storage backend); ``faults`` is the cluster's
        # FaultManager (None for a standalone site: crash/recover degrade
        # to local state wipes).
        self.alive = True
        self.incarnation = 0  # bumped on every recovery; fences stale work
        self.faults = None
        self.logs: dict[str, UpdateLog] = {}
        # Committed-state shadow copies. The live document of a doc this
        # site executes writes on can carry *uncommitted* effects of
        # in-flight transactions; persisting it verbatim would smuggle
        # those into storage, and a crash+reload would resurrect them. The
        # stable copy (created from the live tree just before the first
        # local write) advances only by committed update batches and is
        # what actually gets persisted. Docs without local writes need no
        # shadow: their live tree *is* the committed state.
        self._stable: dict[str, Document] = {}
        self._catchup_gates: dict[str, object] = {}  # doc -> Event while catching up
        self._catchup_waiters: dict[int, object] = {}  # req_id -> Event
        self._catchup_seq = 0

        # Fault-injection hooks for testing the abort/fail/crash paths:
        # tids (or '*') whose commit/abort/replica-sync requests this site
        # will refuse, and labeled points at which it will crash itself.
        self.refuse_commit: set[TxId | str] = set()
        self.refuse_abort: set[TxId | str] = set()
        self.refuse_sync: set[TxId | str] = set()
        self.crash_points: set[str] = set()

        # Lease-based membership (failure_detector="lease"): this site's
        # own lease table plus election bookkeeping. ``None`` under the
        # perfect detector — no heartbeat processes run, no extra messages
        # or RNG draws happen, and schedules stay bit-identical to the
        # oracle-based code.
        self.membership: Optional[SiteMembership] = None
        self._elections: dict[str, int] = {}  # doc -> active election id
        self._election_reports: dict[int, dict] = {}  # id -> site -> report
        self._election_seq = 0
        self._heartbeat_seq = 0
        # Lazy-propagation outbox: doc -> pending UpdateLogEntry list; the
        # flush that the first entry schedules ships the whole queue as one
        # ReplicaSyncBatch per live secondary (the group-commit machinery's
        # batching, reused on the asynchronous path).
        self._lazy_outboxes: dict[str, list] = {}
        # Materialized views (repro.views). All of it stays empty/None
        # unless a view is registered somewhere: ``_views`` is the lazily
        # built ViewManager of a *hosting* site, ``_view_outboxes`` the
        # primary-side committed-entry queues drained by the per-document
        # push loops in ``_view_push_docs``, and ``_view_reads`` /
        # ``_view_fetch_waiters`` the coordinator/host round bookkeeping.
        self._views = None
        self._view_outboxes: dict[str, list] = {}
        self._view_push_docs: set[str] = set()
        self._view_reads: dict[int, tuple] = {}  # read_id -> (event, host)
        self._view_read_seq = 0
        self._view_fetch_waiters: dict[int, object] = {}
        self._view_fetch_seq = 0

        env.process(self._listener())
        env.process(self._participant_loop())
        if config.failure_detector == "lease":
            self.membership = SiteMembership(lease_timeout_ms=config.lease_timeout_ms)
            env.process(self._heartbeat_loop())
            env.process(self._lease_check_loop())

    # ------------------------------------------------------------------
    # document loading
    # ------------------------------------------------------------------

    def host_document(self, doc: Document) -> None:
        """Install a document copy at this site (storage + memory + protocol)."""
        self.data_manager.install(doc)
        self.protocol.register_document(doc)

    def documents_hosted(self) -> list[str]:
        return self.data_manager.live_documents()

    # ------------------------------------------------------------------
    # migration hooks (driven by distribution.migration.MigrationManager)
    # ------------------------------------------------------------------

    def adopt_placeholder(self, doc_name: str) -> None:
        """Host an empty stand-in for a document migrating to this site.

        The placeholder makes the site a (far-behind) replica: its log is
        empty, so the first catch-up round pulls a full snapshot from the
        primary, and commit-time sync batches land here from the moment
        the placement includes this site (the dual-write window).
        """
        if self.data_manager.is_loaded(doc_name):
            return
        self.host_document(parse_document(f"<{MIGRATION_PLACEHOLDER}/>", name=doc_name))
        self.stats.migrations_admitted += 1

    def holds_placeholder(self, doc_name: str) -> bool:
        """Whether this site's copy is still the migration stand-in.

        Detected structurally (by the root element) rather than tracked,
        so the answer survives a crash+recovery of the joining site: the
        reloaded placeholder still *is* a placeholder, and every catch-up
        keeps escalating to a snapshot until real state lands.
        """
        if not self.data_manager.is_loaded(doc_name):
            return False
        root = self.data_manager.document(doc_name).root
        return root is not None and root.tag == MIGRATION_PLACEHOLDER

    def drop_document(self, doc_name: str) -> None:
        """Remove this site's copy of ``doc_name`` (migration retire).

        Live tree, persisted state, staged stable copy and update log all
        go; the protocol's structure summary keeps a stale registration
        that no routed operation will ever touch (the placement no longer
        names this site).
        """
        self.data_manager.evict(doc_name)
        if self.data_manager.backend.exists(doc_name):
            self.data_manager.backend.delete(doc_name)
        self.logs.pop(doc_name, None)
        self._stable.pop(doc_name, None)
        self.stats.migrations_retired += 1

    def has_active_work_on(self, doc_name: str) -> bool:
        """Whether any in-flight transaction touched ``doc_name`` here.

        Migration retire waits for quiescence before dropping the data:
        an active participant context means locks are held (or a commit/
        abort round is still due) against this copy, and a non-empty lazy
        outbox holds committed batches not yet pushed to the secondaries
        (dropping the copy would lose them — the new primary serves
        catch-up from *its* log).
        """
        if self._lazy_outboxes.get(doc_name):
            return True
        for ctx in self.tx_contexts.values():
            for entry in ctx.op_entries.values():
                if entry.doc_name == doc_name:
                    return True
        return False

    def request_primacy(self, doc_name: str, goal_lsn: int):
        """Administrative promotion (migration cutover, lease mode only).

        Spawns a process that assumes primacy for ``doc_name`` iff this
        site is alive, still hosts the document, and its durable log is
        contiguous and caught up to ``goal_lsn`` — the manager's fencing
        precondition, re-checked here at execution time because batches
        may land between the manager's poll and this process running.
        Returns an event firing ``True`` on promotion (or if this site
        already leads), ``False`` when the caller should retry later.
        """
        done = self.env.event()

        def _run():
            yield (self.costs.scheduler_dispatch_ms)
            if (
                not self.alive
                or not self.data_manager.is_loaded(doc_name)
                or self.holds_placeholder(doc_name)
            ):
                done.succeed(False)
                return
            rset = self.catalog.replica_set(doc_name)
            if rset.primary == self.site_id:
                done.succeed(True)  # already elected (e.g. by failover)
                return
            log = self.log_for(doc_name)
            if log.applied_lsn != log.max_recorded_lsn or log.applied_lsn < goal_lsn:
                done.succeed(False)
                return
            self._assume_primacy(doc_name, deposed=rset.primary)
            done.succeed(True)

        self.env.process(_run())
        return done

    def log_for(self, doc_name: str) -> UpdateLog:
        """The durable update log of ``doc_name`` at this site."""
        log = self.logs.get(doc_name)
        if log is None:
            log = self.logs[doc_name] = UpdateLog(doc_name)
        return log

    # ------------------------------------------------------------------
    # fault-injection and liveness helpers
    # ------------------------------------------------------------------

    def should_refuse(self, tid: TxId, refusals: set[TxId | str]) -> bool:
        """Whether a fault hook tells this site to refuse ``tid``'s request.

        Shared by the commit, abort and replica-sync paths; ``refusals``
        holds transaction ids or the wildcard ``'*'``.
        """
        return "*" in refusals or tid in refusals

    def _maybe_crash(self, point: str) -> bool:
        """Crash the site if the fault schedule names ``point``.

        Each label fires once. Returns True when the site just crashed (or
        already was down): the caller must stop doing externally visible
        work immediately.
        """
        if point in self.crash_points:
            self.crash_points.discard(point)
            self.crash()
        return not self.alive

    def _check_alive(self) -> None:
        """Resumption guard for coordinator coroutines: stop if crashed."""
        if not self.alive:
            raise _SiteCrashed()

    def _peer_up(self, site_id: Hashable) -> bool:
        """Whether *this site believes* ``site_id`` can currently serve.

        Under the perfect detector that is the network's physical truth
        (the oracle, exactly as before). Under the lease detector it is
        the local lease table — a suspected peer is treated as down even
        if it is merely partitioned away, and routing/commit decisions
        must stay safe under that falseness.
        """
        if site_id == self.site_id:
            return self.alive
        if self.membership is not None:
            return self.membership.is_live(site_id)
        return self.network.is_up(site_id)

    def _has_lease(self, doc_name: str) -> bool:
        """Primacy lease: may this site serve writes on a document it
        believes it leads?  Perfect mode: always (the oracle deposes dead
        primaries instantly).  Lease mode: only while a majority of the
        replica set is un-suspected — a primary cut off from its
        secondaries loses the lease within ``lease_timeout_ms`` and
        refuses further writes, so a partitioned minority cannot keep
        committing on a timeline the rest of the cluster has re-elected
        away (no split-brain by fencing, not by perfect knowledge)."""
        if self.membership is None:
            return True
        rset = self.catalog.replica_set(doc_name)
        if not rset.is_replicated:
            return True
        live = 1 + sum(1 for s in rset.secondaries if self.membership.is_live(s))
        return 2 * live > rset.degree

    def _coordinator_valid(self, coordinator: Hashable, incarnation: int) -> bool:
        """Whether the sending coordinator is still the incarnation that
        queued this work (alive and never restarted since)."""
        if coordinator == self.site_id:
            return self.alive and incarnation == self.incarnation
        if self.membership is not None:
            # Lease mode: judged from heartbeat-carried facts, not the
            # oracle. A suspected coordinator is treated as dead; a known
            # *newer* incarnation proves the sender restarted since
            # queueing. Heartbeat lag can let a dead coordinator's work
            # through — orphan resolution settles it later.
            if not self.membership.is_live(coordinator):
                return False
            return self.membership.incarnation_of(coordinator) <= incarnation
        if not self.network.is_up(coordinator):
            return False
        if self.faults is None:
            return True  # standalone site: no membership view to consult
        return self.faults.incarnation_of(coordinator) == incarnation

    # ------------------------------------------------------------------
    # committed-state (stable) copies and durable writes
    # ------------------------------------------------------------------

    def _stable_apply(self, doc_name: str, ops) -> None:
        """Fold a committed update batch into the stable copy, if one
        exists (without one, the live tree is the committed state)."""
        stable = self._stable.get(doc_name)
        if stable is None:
            return
        for op in ops:
            apply_update(op.payload, stable, None)

    def _persist_committed(self, doc_name: str) -> int:
        """Write the committed state of ``doc_name`` through to storage."""
        stable = self._stable.get(doc_name)
        if stable is None:
            return self.data_manager.persist(doc_name)
        return self.data_manager.backend.store(stable)

    # ------------------------------------------------------------------
    # client entry point
    # ------------------------------------------------------------------

    def submit(self, tx: Transaction, deliver: Callable[[TxOutcome], None]) -> None:
        """Accept a transaction from a locally connected client.

        A transaction carrying per-transaction quorum overrides is
        validated here, at the submission boundary, against the same
        intersection laws as the cluster-wide knobs — an unlawful (R, W)
        is a programming error and raises immediately rather than
        surfacing as a runtime abort.
        """
        if tx.read_quorum_r or tx.write_quorum_w:
            self.replication.validate_tx_quorums(tx.read_quorum_r, tx.write_quorum_w)
        if tx.view_staleness_ms < 0:
            raise ReproError("view_staleness_ms must be >= 0")
        tx.stats.submitted_ts = self.env.now
        if not self.alive:
            # Connection refused: the site is down. The outcome is
            # delivered through the normal event machinery so the client's
            # wait still goes through the simulated clock.
            tx.state = TxState.FAILED
            tx.abort_reason = "site-down"
            deliver(
                TxOutcome(
                    tid=TxId(site=self.site_id, seq=0, start_ts=self.env.now),
                    status="failed",
                    reason="site-down",
                    submitted_ts=self.env.now,
                    finished_ts=self.env.now,
                )
            )
            return
        tr = self.tracer
        if tr is not None:
            # Root span of the whole transaction tree. It closes when the
            # outcome is delivered to the client — on *any* path (commit,
            # abort, fail, coordinator crash) — by wrapping the deliver
            # callback, so crash-time deliveries close it too.
            sid = tr.begin(
                "tx", "tx", self.site_id, 0, self.env.now,
                {"site": str(self.site_id)},
            )
            tx._trace_root = sid
            inner_deliver = deliver

            def deliver(outcome, _tr=tr, _sid=sid, _inner=inner_deliver):
                _tr.set_label(_sid, "status", outcome.status)
                if outcome.reason:
                    _tr.set_label(_sid, "reason", outcome.reason)
                _tr.end(_sid, self.env.now)
                _inner(outcome)

        self.inbox.put(ClientRequest(transaction=tx))
        tx._deliver = deliver  # stashed until the coordinator record exists

    # ------------------------------------------------------------------
    # listener (Fig. 1: receives requests and inter-scheduler messages)
    # ------------------------------------------------------------------

    def _on_client_request(self, msg: ClientRequest) -> None:
        self.env.process(self._run_transaction(msg.transaction))

    def _on_undo_request(self, msg: UndoOpRequest) -> None:
        self.env.process(self._handle_undo_request(msg))

    def _on_replica_sync(self, msg: ReplicaSyncRequest) -> None:
        self.env.process(self._handle_replica_sync(msg))

    def _on_replica_sync_batch(self, msg: ReplicaSyncBatch) -> None:
        self.env.process(self._handle_replica_sync_batch(msg))

    def _on_commit_request(self, msg: CommitRequest) -> None:
        self.env.process(self._handle_commit_request(msg))

    def _on_abort_request(self, msg: AbortRequest) -> None:
        self.env.process(self._handle_abort_request(msg))

    def _on_site_down_notice(self, msg: SiteDownNotice) -> None:
        self._on_site_down(msg.site)

    def _on_site_up_notice(self, msg: SiteUpNotice) -> None:
        self._on_site_up(msg.site)

    def _on_catchup_request(self, msg: CatchUpRequest) -> None:
        self.env.process(self._handle_catchup_request(msg))

    def _on_wake_notice(self, msg: WakeNotice) -> None:
        self._wake_coordinator(msg.tid)

    def _on_wfg_request(self, msg: WfgRequest) -> None:
        self.network.send(
            self.site_id, msg.requester,
            WfgResponse(site=self.site_id, edges=self.wfg.snapshot()),
        )

    def _on_wfg_response(self, msg: WfgResponse) -> None:
        if self.detector is not None:
            self.detector.on_response(msg)

    def _on_abort_order(self, msg: AbortOrder) -> None:
        self._order_abort(msg.tid, msg.reason)

    def _dispatch_table(self) -> dict:
        """Exact-class message dispatch for the listener hot loop.

        Message classes are never subclassed, so one dict lookup on
        ``msg.__class__`` replaces the 25-branch isinstance chain the
        listener used to walk per message.
        """
        return {
            ClientRequest: self._on_client_request,
            RemoteOpRequest: self.remote_ops.put,
            RemoteOpResult: self._on_op_result,
            UndoOpRequest: self._on_undo_request,
            ReplicaSyncRequest: self._on_replica_sync,
            ReplicaSyncBatch: self._on_replica_sync_batch,
            ReplicaSyncBatchAck: self._on_batch_ack,
            CommitRequest: self._on_commit_request,
            AbortRequest: self._on_abort_request,
            UndoOpAck: self._on_ack,
            ReplicaSyncAck: self._on_ack,
            CommitAck: self._on_ack,
            AbortAck: self._on_ack,
            FailNotice: self._handle_fail_notice,
            SiteDownNotice: self._on_site_down_notice,
            SiteUpNotice: self._on_site_up_notice,
            HeartbeatMessage: self._on_heartbeat,
            LogTipQuery: self._on_log_tip_query,
            LogTipReport: self._on_log_tip_report,
            PrimaryAnnounce: self._on_primary_announce,
            CatchUpRequest: self._on_catchup_request,
            CatchUpResponse: self._on_catchup_response,
            VersionProbe: self._on_version_probe,
            VersionReport: self._on_version_report,
            ReadRepairNudge: self._on_read_repair,
            ViewDeltaBatch: self._on_view_delta,
            ViewFetchRequest: self._on_view_fetch_request,
            ViewFetchResponse: self._on_view_fetch_response,
            ViewReadRequest: self._on_view_read_request,
            ViewReadResult: self._on_view_read_result,
            WakeNotice: self._on_wake_notice,
            WfgRequest: self._on_wfg_request,
            WfgResponse: self._on_wfg_response,
            AbortOrder: self._on_abort_order,
        }

    def _listener(self):
        handlers = self._dispatch_table()
        inbox_get = self.inbox.get
        while True:
            msg = yield inbox_get()
            handler = handlers.get(msg.__class__)
            if handler is None:  # pragma: no cover - defensive
                raise ReproError(f"site {self.site_id}: unknown message {msg!r}")
            handler(msg)

    # ------------------------------------------------------------------
    # operation execution against the local lock manager (Algorithm 3 caller)
    # ------------------------------------------------------------------

    def _execute_operation(self, tid: TxId, coordinator: Hashable, op: Operation) -> LocalResult:
        if not self.data_manager.is_loaded(op.doc_name):
            # A migration retired this replica while the request was in
            # flight (the coordinator routed against an older placement):
            # refuse like any execution failure; the retry re-reads the
            # catalog and routes to the document's current holders.
            return LocalResult(acquired=True, executed=False, failed=True)
        if (
            op.kind is not OpKind.QUERY
            and self.membership is not None
            and self.replication.is_primary_copy
        ):
            # Lease-mode write fence, checked *before* any lock is taken:
            # this site executes a primary-copy update only while it both
            # believes it leads the document and holds the primacy lease
            # (a majority of the replica set un-suspected). A deposed
            # primary that already learned of the new epoch, or a
            # partitioned primary whose lease ran out, refuses — the
            # oracle used to make this state unreachable; fencing now has
            # to.
            rset = self.catalog.replica_set(op.doc_name)
            if rset.is_replicated and (
                rset.primary != self.site_id or not self._has_lease(op.doc_name)
            ):
                self.stats.lease_refusals += 1
                return LocalResult(acquired=True, executed=False, failed=True)
        if (
            op.kind is OpKind.QUERY
            and self.membership is not None
            and self.config.max_read_staleness_ms > 0
            and self.replication.is_primary_copy
            and not self.replication.is_quorum_read
        ):
            # Lease-mode follower-read fence: inside a false-suspicion
            # window (the primary partitioned away but its lease not yet
            # expired) a secondary cannot bound how stale its copy is.
            # When the primary's heartbeat is older than the configured
            # bound, refuse the read with ``stale`` set — the coordinator
            # re-routes it to the primary instead of aborting. Quorum
            # reads carry their own freshness proof and are exempt.
            rset = self.catalog.replica_set(op.doc_name)
            if rset.is_replicated and rset.primary != self.site_id:
                heard = self.membership.last_heard.get(rset.primary)
                if (
                    heard is None
                    or self.env.now - heard > self.config.max_read_staleness_ms
                ):
                    self.stats.stale_reads_refused += 1
                    return LocalResult(acquired=True, executed=False, stale=True)
        ctx = self.tx_contexts.get(tid)
        if ctx is not None:
            prior = ctx.op_entries.get(op.index)
            if prior is not None:
                # Duplicate delivery: the operation already ran here (its
                # locks are held, its effects applied) and the coordinator
                # re-shipped it because the response was lost — under the
                # lease detector a cut shorter than the lease loses
                # messages without anyone being suspected. Replay the
                # recorded outcome instead of executing twice.
                return LocalResult(
                    acquired=True,
                    executed=prior.executed,
                    failed=not prior.executed,
                    result_size=prior.result_size,
                )
        if ctx is None:
            ctx = self.tx_contexts[tid] = SiteTxContext(tid=tid, coordinator=coordinator)
        costs = self.costs
        doc = self.data_manager.document(op.doc_name)

        # Retry-time spec reuse: a woken operation recomputes nothing while
        # the protocol's structure summary is unchanged. The cached spec
        # keeps its nodes_visited meter, so the *simulated* cost charged
        # below is identical either way — this is a wall-clock optimisation
        # only, and simulated schedules stay bit-identical.
        spec = None
        version = None
        if self.config.spec_cache:
            version = self.protocol.structure_version(op.doc_name)
            if version is not None:
                cached = ctx.spec_cache.get(op.index)
                if cached is not None and cached[0] == version:
                    spec = cached[1]
                    self.stats.spec_cache_hits += 1
        if spec is None:
            if op.kind is OpKind.QUERY:
                spec = self.protocol.lock_spec_for_query(op.doc_name, op.payload)
            else:
                spec = self.protocol.lock_spec_for_update(op.doc_name, op.payload)
            if version is not None:
                ctx.spec_cache[op.index] = (version, spec)
        outcome = self.lock_manager.process_operation(tid, spec)
        cost = (
            spec.nodes_visited * costs.node_visit_ms
            + (outcome.lock_ops + spec.transient_ops) * costs.lock_op_ms
        )
        self.stats.peak_lock_count = max(
            self.stats.peak_lock_count, self.lock_manager.table.lock_count()
        )

        if not outcome.granted:
            self.stats.ops_blocked += 1
            if outcome.deadlock:
                self.stats.local_deadlocks += 1
            # Register the coordinator for a wake notice on the next release,
            # together with the lock pairs the blocked spec wanted (the
            # targeted wake policy only fires on a conflicting release).
            self.waiters[tid] = coordinator
            self._wait_sets[tid] = outcome.blocked_pairs
            return LocalResult(
                acquired=False, deadlock=outcome.deadlock, cost_ms=cost
            )

        entry = OpEntry(doc_name=op.doc_name, lock_pairs=outcome.new_pairs, op=op)
        eval_stats = EvalStats()
        try:
            if op.kind is OpKind.QUERY:
                result = evaluate(op.payload, doc, eval_stats)
                entry.executed = True
                size = 96 * len(result)
                entry.result_size = size
                cost += eval_stats.nodes_visited * costs.node_visit_ms
                self.tx_contexts[tid].op_entries[op.index] = entry
                self.stats.ops_executed += 1
                return LocalResult(
                    acquired=True, executed=True, result_size=size, cost_ms=cost
                )
            if op.doc_name not in self._stable:
                # First local write on this doc: the live tree still equals
                # the committed state — snapshot it as the stable copy that
                # persists will be taken from.
                self._stable[op.doc_name] = doc.clone()
            undo_before = len(ctx.undo)
            changes = apply_update(op.payload, doc, ctx.undo, eval_stats)
            self.protocol.after_apply(op.doc_name, changes)
            entry.undo_count = len(ctx.undo) - undo_before
            entry.changes = changes
            entry.executed = True
            cost += (
                eval_stats.nodes_visited * costs.node_visit_ms
                + max(1, len(changes)) * costs.update_apply_ms
            )
            ctx.op_entries[op.index] = entry
            self.stats.ops_executed += 1
            return LocalResult(acquired=True, executed=True, cost_ms=cost)
        except UpdateError:
            # Locks are held (released at abort); the data effect failed.
            ctx.op_entries[op.index] = entry
            return LocalResult(acquired=True, executed=False, failed=True, cost_ms=cost)

    def _undo_operation(self, tid: TxId, op_index: int) -> float:
        """Back out one operation's data effects and its locks."""
        ctx = self.tx_contexts.get(tid)
        if ctx is None or op_index not in ctx.op_entries:
            return 0.0
        entry = ctx.op_entries.pop(op_index)
        cost = 0.0
        if entry.undo_count:
            ctx.undo.rollback_last(entry.undo_count)
            self.protocol.after_undo(entry.doc_name, entry.changes)
            cost += entry.undo_count * self.costs.update_apply_ms
        for key, mode in reversed(entry.lock_pairs):
            self.lock_manager.table.release_one(key, tid, mode)
        # Remember the pairs for the next end-of-transaction wake sweep:
        # the targeted policy must not lose the wake-up that broadcast's
        # wake-everyone-at-any-end would eventually deliver for these locks
        # (they will not appear in the owner's release set any more).
        # Broadcast wakes everyone regardless, so it never reads — and
        # must not accumulate — this record.
        if self.config.wake_policy == "targeted":
            for key, mode in entry.lock_pairs:
                self._deferred_wake_keys.setdefault(key, set()).add(mode)
        cost += len(entry.lock_pairs) * self.costs.lock_op_ms
        self.stats.undo_ops += 1
        # Deliberately NO wake notification here: waiters are woken only when
        # a transaction *ends* (paper §2.2: "those that entered wait mode
        # waiting for the locks of the one that committed, start executing
        # again"). Waking on partial-operation undo makes two crosswise
        # writers ping-pong (win locally, fail remotely, undo, wake each
        # other) — a livelock the end-of-transaction rule avoids; the
        # detector resolves the resulting wait cycle instead.
        return cost

    # ------------------------------------------------------------------
    # transaction end at this site (participant side of Algorithms 5 and 6)
    # ------------------------------------------------------------------

    def _commit_at_site(self, tid: TxId) -> float:
        """Persist effects and release locks. Returns the simulated cost."""
        ctx = self.tx_contexts.pop(tid, None)
        cost = 0.0
        if ctx is not None:
            by_doc = ctx.executed_updates_by_doc()
            logged_during_sync = set(ctx.stable_applied)
            persisted = 0
            for name in ctx.touched_doc_names():
                if name in by_doc and name not in ctx.stable_applied:
                    self._stable_apply(name, by_doc[name])
                    ctx.stable_applied.add(name)
                persisted += self._persist_committed(name)
            cost += (persisted / 1024.0) * self.costs.persist_per_kb_ms
            if self.replication.is_lazy:
                # Log the committed updates of every document this site
                # leads *before* the locks release (log order = commit
                # order) and queue their asynchronous propagation.
                self._log_and_queue_lazy(tid, ctx)
            elif self.replication.syncs_at_commit:
                # An orphan can resolve to commit with only part of its
                # batches in the log (one document's log-only sync
                # arrived, another's was lost to the same cut): record the
                # missing ones now, or the committed effects would be
                # invisible to catch-up and diverge the replicas.
                self._log_and_queue_lazy(
                    tid, ctx, already_logged=logged_during_sync, persist=True
                )
            ctx.undo.clear()
        released, lock_ops = self.lock_manager.release_transaction(tid)
        cost += lock_ops * self.costs.lock_op_ms
        self.finished.add(tid)
        self.waiters.pop(tid, None)
        self._wait_sets.pop(tid, None)
        self._notify_lock_release(released)
        return cost

    def _abort_at_site(self, tid: TxId) -> float:
        """Undo all effects of ``tid`` at this site and release its locks."""
        ctx = self.tx_contexts.pop(tid, None)
        cost = 0.0
        if ctx is not None:
            for op_index in sorted(ctx.op_entries, reverse=True):
                entry = ctx.op_entries[op_index]
                if entry.undo_count:
                    ctx.undo.rollback_last(entry.undo_count)
                    self.protocol.after_undo(entry.doc_name, entry.changes)
                    cost += entry.undo_count * self.costs.update_apply_ms
        released, lock_ops = self.lock_manager.release_transaction(tid)
        cost += lock_ops * self.costs.lock_op_ms
        self.finished.add(tid)
        self.waiters.pop(tid, None)
        self._wait_sets.pop(tid, None)
        self._notify_lock_release(released)
        return cost

    def _fail_at_site(self, tid: TxId, persist: bool = False) -> None:
        """Transaction failed: drop state without undoing (paper: the
        application is alerted; recovery is future work). ``persist``
        write-backs the kept effects first (post-sync failures must leave
        primary and secondaries durably identical)."""
        ctx = self.tx_contexts.pop(tid, None)
        if persist and ctx is not None:
            by_doc = ctx.executed_updates_by_doc()
            logged_during_sync = set(ctx.stable_applied)
            for name in ctx.touched_doc_names():
                if name in by_doc and name not in ctx.stable_applied:
                    self._stable_apply(name, by_doc[name])
                    ctx.stable_applied.add(name)
                self._persist_committed(name)
            if self.replication.is_lazy:
                # Kept effects behave like a commit for replication: log
                # and propagate them, or the secondaries would silently
                # diverge from the primary that kept them.
                self._log_and_queue_lazy(tid, ctx)
            elif self.replication.syncs_at_commit:
                # Same rule for eager/quorum failures: any kept batch this
                # site leads that never made the log during the sync
                # rounds is recorded (and pushed) now — kept-but-unlogged
                # effects would be invisible to catch-up, permanently.
                self._log_and_queue_lazy(
                    tid, ctx, already_logged=logged_during_sync, persist=True
                )
        released, _ = self.lock_manager.release_transaction(tid)
        self.finished.add(tid)
        self.waiters.pop(tid, None)
        self._wait_sets.pop(tid, None)
        self.stats.fails += 1
        self._notify_lock_release(released)

    # ------------------------------------------------------------------
    # wake management
    # ------------------------------------------------------------------

    def _notify_lock_release(self, released_keys=None) -> None:
        """Wake waiting transactions after a transaction ended here.

        Paper §2.2: "When a transaction commits, those that entered wait mode
        waiting for the locks of the one that committed, start executing
        again." Under ``wake_policy="broadcast"`` (the paper's rule) every
        waiter is woken on any end — waiters re-register if they block
        again, so spurious wakes are safe, just wasteful. Under
        ``"targeted"`` only waiters with a requested (key, mode) pair that
        is *incompatible* with something just released (including locks
        released earlier by single-operation undo, which wakes nobody at
        the time) are woken; the others provably could not make progress
        from this release.
        """
        targeted = (
            self.config.wake_policy == "targeted" and released_keys is not None
        )
        if targeted:
            released = {key: set(modes) for key, modes in released_keys.items()}
            for key, modes in self._deferred_wake_keys.items():
                released.setdefault(key, set()).update(modes)
            self._deferred_wake_keys.clear()
            matrix = self.lock_manager.table.matrix
        for tid, coordinator in list(self.waiters.items()):
            if targeted:
                wait_set = self._wait_sets.get(tid)
                if wait_set is not None and not any(
                    key in released
                    and not matrix.compatible_with_all(released[key], mode)
                    for key, mode in wait_set
                ):
                    continue
            del self.waiters[tid]
            self._wait_sets.pop(tid, None)
            self.stats.waiter_wakes += 1
            if coordinator == self.site_id:
                self._wake_coordinator(tid)
            else:
                self.stats.wake_notices_sent += 1
                self.network.send(
                    self.site_id, coordinator, WakeNotice(tid=tid, site=self.site_id)
                )

    def _wake_coordinator(self, tid: TxId) -> None:
        rec = self.coordinators.get(tid)
        if rec is None:
            return
        rec.wake_pending = True
        if rec.wake_event is not None and not rec.wake_event.triggered:
            rec.wake_event.succeed("wake")

    def _order_abort(self, tid: TxId, reason: str) -> None:
        """Deadlock detector chose this coordinator's transaction as victim."""
        rec = self.coordinators.get(tid)
        if rec is None or rec.tx.done:
            return
        rec.abort_requested = True
        rec.abort_reason = reason
        self._wake_coordinator(tid)

    # ------------------------------------------------------------------
    # participant loop (Algorithm 2)
    # ------------------------------------------------------------------

    def _participant_loop(self):
        pool = self._pool
        remote_get = self.remote_ops.get
        dispatch_ms = self.costs.scheduler_dispatch_ms
        while True:
            req: RemoteOpRequest = yield remote_get()
            yield dispatch_ms
            if not self.alive or req.tid in self.finished:
                # site crashed / transaction ended while queued
                if pool is not None:
                    pool.release(req)
                continue
            if not self._coordinator_valid(req.coordinator, req.incarnation):
                # its coordinator died while this was queued: executing now
                # would leak locks and effects nobody settles
                if pool is not None:
                    pool.release(req)
                continue
            coordinator = req.coordinator
            tr = self.tracer
            exec_start = self.env.now if tr is not None else 0.0
            result = self._execute_operation(req.tid, coordinator, req.op)
            self.stats.remote_ops_served += 1
            self.stats.parse_cache_hits, self.stats.parse_cache_misses = (
                parse_cache_stats()
            )
            if result.cost_ms:
                yield result.cost_ms
            if tr is not None:
                labels = {"doc": req.op.doc_name, "site": str(self.site_id)}
                if not result.acquired:
                    labels["blocked"] = "1"
                tr.add(
                    "exec", "exec", self.site_id, tr.live_parent(req.span),
                    exec_start, self.env.now, labels,
                )
            if pool is None:
                reply = RemoteOpResult(
                    tid=req.tid,
                    site=self.site_id,
                    op_index=req.op.index,
                    attempt=req.attempt,
                    acquired=result.acquired,
                    executed=result.executed,
                    deadlock=result.deadlock,
                    failed=result.failed,
                    result_size=result.result_size,
                    stale=result.stale,
                )
            else:
                reply = pool.acquire(
                    RemoteOpResult,
                    tid=req.tid,
                    site=self.site_id,
                    op_index=req.op.index,
                    attempt=req.attempt,
                    acquired=result.acquired,
                    executed=result.executed,
                    deadlock=result.deadlock,
                    failed=result.failed,
                    result_size=result.result_size,
                    stale=result.stale,
                )
                req_span = req.span
                pool.release(req)  # fully consumed: recycle (req is dead now)
                stats = self.stats
                stats.pool_hits = pool.hits
                stats.pool_misses = pool.misses
                delay = self.network.send(self.site_id, coordinator, reply)
                if tr is not None:
                    tr.add_flight("reply", "net", self.site_id, tr.live_parent(req_span),
                           self.env.now, self.env.now + delay)
                continue
            delay = self.network.send(self.site_id, coordinator, reply)
            if tr is not None:
                tr.add_flight("reply", "net", self.site_id, tr.live_parent(req.span),
                       self.env.now, self.env.now + delay)

    def _handle_undo_request(self, msg: UndoOpRequest):
        if not self.alive:
            return
        cost = self._undo_operation(msg.tid, msg.op_index)
        if cost:
            yield (cost)
        else:
            yield (0)
        self.network.send(
            self.site_id, msg.coordinator,
            UndoOpAck(tid=msg.tid, site=self.site_id, op_index=msg.op_index, attempt=msg.attempt),
        )

    def _handle_replica_sync(self, msg: ReplicaSyncRequest):
        """Record (and, at secondaries, apply) one committed update batch.

        No locks are taken and no undo is recorded: the batch is already
        committed at the primary, whose lock table ordered conflicting
        writers. The LSN/epoch checks make the apply idempotent (a
        replayed entry is skipped — one copy remains), gap-healing (missed
        entries are pulled from the primary first) and fenced (batches
        stamped with a pre-promotion epoch are refused). All operations of
        a batch are applied before any simulated time passes, so a sync is
        atomic with respect to concurrent local reads.
        """
        if self._maybe_crash("sync-recv"):
            return  # crashed before applying anything
        if self.should_refuse(msg.tid, self.refuse_sync):
            self.stats.syncs_refused += 1
            yield (0)
            self._send_sync_ack(msg, ok=False, reason="refused")
            return
        tr = self.tracer
        apply_start = self.env.now if tr is not None else 0.0
        result = yield from self._ingest_sync_entry(
            msg.doc_name, msg.tid, msg.lsn, msg.epoch, msg.ops, msg.log_only
        )
        if tr is not None:
            tr.add(
                "sync_apply", "sync", self.site_id, tr.live_parent(msg.span),
                apply_start, self.env.now,
                {"doc": msg.doc_name, "site": str(self.site_id)},
            )
        if result is None:
            return  # crashed mid-ingest: no ack (senders recover via site-down)
        ok, reason, lsn = result
        self._send_sync_ack(msg, ok=ok, reason=reason, lsn=lsn)

    def _handle_replica_sync_batch(self, msg: ReplicaSyncBatch):
        """Group commit: ingest several transactions' batches, one ack.

        Every entry goes through the same idempotent LSN/epoch machinery as
        a single sync; the per-transaction outcomes are collected into one
        :class:`ReplicaSyncBatchAck` so a refused entry does not fail its
        batch-mates.
        """
        if self._maybe_crash("sync-recv"):
            return
        tr = self.tracer
        apply_start = self.env.now if tr is not None else 0.0
        results: dict = {}
        assigned: dict = {}
        for entry in sorted(msg.entries, key=lambda e: e.lsn):
            if not self.alive:
                return
            if self.should_refuse(entry.tid, self.refuse_sync):
                self.stats.syncs_refused += 1
                yield (0)
                results[entry.tid] = (False, "refused")
                continue
            result = yield from self._ingest_sync_entry(
                entry.doc_name, entry.tid, entry.lsn, entry.epoch,
                list(entry.ops), msg.log_only,
            )
            if result is None:
                return  # crashed mid-batch: no ack
            ok, reason, lsn = result
            results[entry.tid] = (ok, reason)
            if ok and entry.lsn == 0:
                assigned[entry.tid] = lsn  # primary-assigned (quorum path)
        if tr is not None:
            tr.add(
                "sync_apply", "sync", self.site_id, tr.live_parent(msg.span),
                apply_start, self.env.now,
                {"doc": msg.doc_name, "site": str(self.site_id),
                 "entries": str(len(msg.entries))},
            )
        self.network.send(
            self.site_id,
            msg.coordinator,
            ReplicaSyncBatchAck(
                site=self.site_id, doc_name=msg.doc_name,
                batch_id=msg.batch_id, results=results, assigned=assigned,
            ),
        )

    def _ingest_sync_entry(self, doc_name, tid, lsn, epoch, ops, log_only):
        """Incorporate one committed update batch; ``(ok, reason, lsn)`` or
        ``None`` when the site crashed mid-ingest (the caller must not ack).

        Shared by the single-sync and group-commit paths — the LSN/epoch
        checks make the apply idempotent (a replayed entry is skipped),
        gap-healing (missed entries are pulled from the primary first) and
        fenced (batches stamped with a pre-promotion epoch are refused).
        All operations of a batch are applied before any simulated time
        passes, so a sync is atomic with respect to concurrent local reads.

        A ``log_only`` ingest with ``lsn=0`` (the quorum write path)
        *assigns* the LSN here, after the epoch fence passed: allocation
        and recording are atomic at the primary, so no slot can be
        orphaned by a message lost in flight. The assigned LSN rides back
        in the third tuple element.
        """
        # Serialize with an in-flight catch-up on the same document.
        while doc_name in self._catchup_gates:
            yield self._catchup_gates[doc_name]
        if not self.alive:
            return None
        if not self.data_manager.is_loaded(doc_name):
            # The copy was retired (migration drop) while this sync was in
            # flight: the placement no longer names this site, so refuse
            # rather than resurrect a dropped replica.
            self.stats.syncs_refused += 1
            yield (0)
            return False, "not-hosted", 0
        if epoch < self.catalog.epoch(doc_name):
            self.stats.syncs_refused += 1
            yield (0)
            return False, "stale-epoch", 0
        if log_only and lsn == 0:
            if tid in self.finished:
                # Stale record request: the transaction already settled at
                # this site — its coordinator's round gave up on this
                # message long ago, and the local commit/abort/fail
                # resolved the state (kept effects included, logged by
                # the fail/commit path). Minting a fresh LSN now would log
                # — and replicate — the same batch twice.
                self.stats.syncs_refused += 1
                yield (0)
                return False, "finished", 0
            lsn = self.catalog.allocate_lsn(doc_name)
        log = self.log_for(doc_name)
        cost = self.costs.scheduler_dispatch_ms
        existing = log.entries.get(lsn)
        if existing is not None and existing.epoch != epoch:
            # This LSN slot is occupied by a *phantom*: a batch of a
            # deposed timeline this replica applied while the rest of the
            # cluster moved on (promotions restart the LSN sequence at the
            # new primary's tip, so slots can be reused across epochs).
            # The phantom's data is in our document; log replay cannot
            # reconcile that — heal by snapshot transfer first.
            yield from self._catch_up(doc_name, force_snapshot=True)
            if not self.alive:
                return None
            log = self.log_for(doc_name)
            existing = log.entries.get(lsn)
            if existing is not None and existing.epoch != epoch:
                # Heal did not complete (primary down / mid-flight holes):
                # refuse and stay behind; the next trigger retries.
                self.stats.syncs_refused += 1
                yield (0)
                return False, "gap", 0
        if log.has(lsn):
            # Duplicate delivery or replayed log entry: idempotent no-op.
            yield (cost)
            return True, "", lsn
        if log_only:
            # This site is the document's primary and executed the updates
            # itself, so only the log entry is recorded — together with a
            # persist, so log and data stay durably consistent. Holes below
            # this LSN are records of non-conflicting racing commits still
            # in flight to us (conflicting predecessors were acked before
            # this transaction could even lock): safe to record over.
            ctx = self.tx_contexts.get(tid)
            if ctx is not None:
                entry = UpdateLogEntry(
                    lsn=lsn, epoch=epoch, tid=tid,
                    doc_name=doc_name, ops=tuple(ops),
                )
                cost += self._apply_log_entry(entry, apply_data=False)
                # Once synced the batch can only commit or fail-keep, never
                # undo: fold it into the stable copy and persist, so the
                # durable log entry and the durable data move together.
                if doc_name not in ctx.stable_applied:
                    self._stable_apply(doc_name, ops)
                    ctx.stable_applied.add(doc_name)
                persisted = self._persist_committed(doc_name)
                cost += (persisted / 1024.0) * self.costs.persist_per_kb_ms
                ctx.synced = True  # a dead coordinator now resolves to commit
                self.stats.replica_syncs_served += 1
                yield (cost)
                if self._maybe_crash("sync-applied"):
                    return None
                return True, "", lsn
            # No execution state: this primary crashed and recovered while
            # the transaction was in flight. Its effects are gone from
            # memory, so fall through and incorporate the batch the way a
            # secondary would — by applying the shipped operations.
        if lsn > log.applied_lsn + 1:
            # Batches below this one are missing: either non-conflicting
            # racing writers whose syncs are still in flight to us (they
            # commute with this batch and fill in on arrival), or batches
            # produced while this replica was down. If *we* are the
            # primary, every predecessor that could conflict with this
            # batch committed — and was therefore recorded — here, so the
            # remaining holes commute and it is safe to proceed. Otherwise
            # ask the primary: its answer (as of after this batch was
            # sent) contains every conflicting predecessor, so once a
            # response arrived it is safe to apply even if commuting holes
            # remain.
            if self.catalog.replica_set(doc_name).primary != self.site_id:
                caught_up = yield from self._catch_up(doc_name)
                if not self.alive:
                    return None
                if log.has(lsn):
                    yield (cost)
                    return True, "", lsn
                if not caught_up and lsn > log.applied_lsn + 1:
                    # No response (primary down / timed out): stay behind
                    # rather than apply over unknown state; the next sync
                    # or recovery trigger retries.
                    self.stats.syncs_refused += 1
                    return False, "gap", 0
        entry = UpdateLogEntry(
            lsn=lsn, epoch=epoch, tid=tid,
            doc_name=doc_name, ops=tuple(ops),
        )
        cost += self._apply_log_entry(entry)
        self.stats.replica_syncs_served += 1
        yield (cost)
        if self._maybe_crash("sync-applied"):
            return None  # crashed after the durable apply, before the ack
        return True, "", lsn

    def _send_sync_ack(
        self, msg: ReplicaSyncRequest, ok: bool, reason: str = "", lsn: int = 0
    ) -> None:
        self.network.send(
            self.site_id,
            msg.coordinator,
            ReplicaSyncAck(
                tid=msg.tid, site=self.site_id, doc_name=msg.doc_name,
                ok=ok, reason=reason, lsn=lsn or msg.lsn,
            ),
        )

    def _apply_log_entry(self, entry: UpdateLogEntry, apply_data: bool = True) -> float:
        """Apply one update batch and record it durably; returns the cost.

        ``apply_data=False`` is the primary's path: it executed the
        transaction itself, so only the log entry needs recording. The data
        mutation, persist and log append happen without yielding, so the
        batch is atomic even against a concurrently scheduled crash.
        """
        cost = 0.0
        if apply_data:
            doc = self.data_manager.document(entry.doc_name)
            for op in entry.ops:
                eval_stats = EvalStats()
                try:
                    changes = apply_update(op.payload, doc, None, eval_stats)
                except UpdateError as exc:  # pragma: no cover - replica divergence
                    raise ReproError(
                        f"site {self.site_id}: replica sync of {entry.tid} failed "
                        f"on {entry.doc_name!r}: {exc}"
                    ) from exc
                self.protocol.after_apply(entry.doc_name, changes)
                cost += (
                    eval_stats.nodes_visited * self.costs.node_visit_ms
                    + max(1, len(changes)) * self.costs.update_apply_ms
                )
            self._stable_apply(entry.doc_name, entry.ops)
            persisted = self._persist_committed(entry.doc_name)
            cost += (persisted / 1024.0) * self.costs.persist_per_kb_ms
        self.log_for(entry.doc_name).record(entry)
        self._offer_view_entry(entry)
        return cost

    def _handle_commit_request(self, msg: CommitRequest):
        if not self.alive:
            return
        if self.should_refuse(msg.tid, self.refuse_commit):
            yield (0)
            self.network.send(
                self.site_id, msg.coordinator, CommitAck(tid=msg.tid, site=self.site_id, ok=False)
            )
            return
        cost = self._commit_at_site(msg.tid)
        yield (cost)
        self.network.send(
            self.site_id, msg.coordinator, CommitAck(tid=msg.tid, site=self.site_id, ok=True)
        )

    def _handle_abort_request(self, msg: AbortRequest):
        if not self.alive:
            return
        if self.should_refuse(msg.tid, self.refuse_abort):
            yield (0)
            self.network.send(
                self.site_id, msg.coordinator, AbortAck(tid=msg.tid, site=self.site_id, ok=False)
            )
            return
        cost = self._abort_at_site(msg.tid)
        yield (cost)
        self.network.send(
            self.site_id, msg.coordinator, AbortAck(tid=msg.tid, site=self.site_id, ok=True)
        )

    def _handle_fail_notice(self, msg: FailNotice) -> None:
        if not self.alive:
            return
        self._fail_at_site(msg.tid, persist=msg.persist)

    # ------------------------------------------------------------------
    # coordinator response/ack plumbing
    # ------------------------------------------------------------------

    def _on_op_result(self, msg: RemoteOpResult) -> None:
        rec = self.coordinators.get(msg.tid)
        if rec is None or msg.attempt != rec.attempt:
            # Stale reply from a superseded attempt: nobody will ever read
            # it, so it can recycle immediately.
            if self._pool is not None:
                self._pool.release(msg)
            return
        rec.responses[msg.site] = msg
        if (
            rec.response_event is not None
            and not rec.response_event.triggered
            and set(rec.responses) >= rec.expected
        ):
            rec.response_event.succeed(dict(rec.responses))

    def _on_ack(self, msg) -> None:
        rec = self.coordinators.get(msg.tid)
        if rec is None:
            return
        expected_phase = {
            UndoOpAck: "undo",
            ReplicaSyncAck: "sync",
            CommitAck: "commit",
            AbortAck: "abort",
        }[type(msg)]
        if rec.phase != expected_phase:
            return
        # Sync rounds carry one message per (site, document) pair; the
        # other rounds are keyed by site alone.
        key = (msg.site, msg.doc_name) if isinstance(msg, ReplicaSyncAck) else msg.site
        rec.acks[key] = msg
        if (
            rec.ack_event is not None
            and not rec.ack_event.triggered
            and (set(rec.acks) >= rec.ack_expected or self._ack_quorum_met(rec))
        ):
            rec.ack_event.succeed(dict(rec.acks))

    def _quorum_spec(self, rec: CoordinatorRecord, degree: int):
        """The (N, R, W) governing ``rec``'s transaction at ``degree``.

        Per-transaction overrides (validated at submission) take
        precedence over the cluster knobs; with none set this is exactly
        ``replication.quorum_for(degree)``.
        """
        return self.replication.quorum_for(
            degree, rec.tx.read_quorum_r, rec.tx.write_quorum_w
        )

    def _ack_quorum_met(self, rec: CoordinatorRecord) -> bool:
        """Whether a quorum-write sync round can settle before every ack.

        True when every document in the round has collected its required
        number of *ok* remote acks — the quorum regime's whole point:
        stragglers (and everything behind a partition) no longer gate the
        commit. All-ack rounds (``ack_quorum`` empty) never settle early.
        """
        if not rec.ack_quorum:
            return False
        for doc_name, needed in rec.ack_quorum.items():
            got = sum(
                1
                for key, ack in rec.acks.items()
                if isinstance(key, tuple) and key[1] == doc_name and ack.ok
            )
            if got < needed:
                return False
        return True

    def _collect_acks(
        self, rec: CoordinatorRecord, phase: str, sites: list, quorum: dict = None
    ) -> None:
        rec.phase = phase
        rec.ack_expected = set(sites)
        rec.acks = {}
        rec.down_acks = set()
        rec.ack_quorum = quorum or {}
        rec.ack_event = self.env.event()

    def _round_timeout_ms(self) -> float:
        """Upper bound on a lease-mode protocol round.

        By this long, a peer that stayed silent either had its lease
        expire (suspicion unstuck the round already) or is alive and the
        message was simply lost to a cut shorter than the lease — either
        way, waiting longer cannot help.
        """
        return 2 * self.config.lease_timeout_ms + self.config.election_timeout_ms

    def _await_acks(self, rec: CoordinatorRecord):
        """Wait out the current ack round; bounded under the lease detector.

        The perfect detector guarantees every ack arrives or a
        SiteDownNotice unsticks the round. Without the oracle a message
        lost to a partition *shorter than the lease* has no such backstop
        — nobody gets suspected, so nothing would ever fire. On timeout
        the round settles with the acks that did arrive; peers that never
        answered are recorded like crashed-mid-round participants
        (``down_acks`` — outcome unknown), which the commit path already
        knows how to degrade safely.

        Quorum-write rounds (``rec.ack_quorum``) are bounded under *both*
        detectors: the round usually settles early (W ok-acks fire the
        event), but when a partition keeps W out of reach nothing else
        would ever fire under the perfect detector — the partitioned
        peers are alive, so no SiteDownNotice comes.
        """
        if self.membership is None and not rec.ack_quorum:
            acks = yield rec.ack_event
            return acks
        timeout_ev = self.env.timeout(self._round_timeout_ms(), value=None)
        fired = yield self.env.any_of([rec.ack_event, timeout_ev])
        if rec.ack_event in fired:
            return fired[rec.ack_event]
        for key in set(rec.ack_expected) - set(rec.acks):
            rec.down_acks.add(key[0] if isinstance(key, tuple) else key)
        rec.ack_event = None
        return dict(rec.acks)

    # ------------------------------------------------------------------
    # coordinator (Algorithm 1 + commit/abort procedures, Algorithms 5-6)
    # ------------------------------------------------------------------

    def _run_transaction(self, tx: Transaction):
        self._tx_seq += 1
        tid = TxId(site=self.site_id, seq=self._tx_seq, start_ts=self.env.now)
        tx.tid = tid
        tx.state = TxState.ACTIVE
        tx.stats.started_ts = self.env.now
        deliver = getattr(tx, "_deliver", lambda outcome: None)
        rec = CoordinatorRecord(tx=tx, tid=tid, deliver=deliver)
        if self.tracer is not None:
            rec.root_span = getattr(tx, "_trace_root", 0)
            if rec.root_span:
                self.tracer.set_label(rec.root_span, "tx", str(tid))
        self.coordinators[tid] = rec
        self.stats.coordinated += 1

        status, reason = "committed", ""
        try:
            try:
                for op in tx.operations:
                    yield from self._run_operation(rec, op)
                tx.state = TxState.COMMITTING
                committed = yield from self._commit_transaction(rec)
                if not committed:
                    raise _AbortTx(rec.abort_reason or "commit-refused")
                tx.state = TxState.COMMITTED
                self.stats.commits += 1
            except _AbortTx as abort:
                reason = abort.reason
                tx.state = TxState.ABORTING
                tx.abort_reason = reason
                aborted_ok = yield from self._abort_transaction(rec)
                if aborted_ok:
                    tx.state = TxState.ABORTED
                    status = "aborted"
                    self.stats.aborts += 1
                else:
                    tx.state = TxState.FAILED
                    status = "failed"
        except _SiteCrashed:
            # This site died under the coordinator: crash() already
            # delivered the (failed) outcome and wiped the volatile state.
            return
        finally:
            self.coordinators.pop(tid, None)
            self.finished.add(tid)
        tx.stats.finished_ts = self.env.now
        deliver(
            TxOutcome(
                tid=tid,
                status=status,
                reason=reason,
                submitted_ts=tx.stats.submitted_ts,
                finished_ts=self.env.now,
            )
        )

    def _run_operation(self, rec: CoordinatorRecord, op: Operation):
        tr = self.tracer
        if tr is None:
            return (yield from self._run_operation_rounds(rec, op))
        # One span per client operation, covering every retry round; the
        # try/finally closes it on _AbortTx/_SiteCrashed unwinds too.
        rec.op_span = tr.begin(
            "op", "op", self.site_id, rec.root_span, self.env.now,
            {"doc": op.doc_name, "index": str(op.index), "kind": op.kind.name},
        )
        try:
            return (yield from self._run_operation_rounds(rec, op))
        finally:
            tr.end(rec.op_span, self.env.now)
            rec.op_span = 0
            rec.wait_span = 0

    def _run_operation_rounds(self, rec: CoordinatorRecord, op: Operation):
        tx = rec.tx
        while True:
            self._check_alive()
            if rec.abort_requested:
                raise _AbortTx(rec.abort_reason or "abort-ordered")
            rset = self.catalog.replica_set(op.doc_name)
            if op.kind is OpKind.QUERY:
                # Materialized-view routing: a read-only transaction whose
                # query a registered view subsumes is answered from the
                # view host within the staleness bound — no locks, no 2PC
                # (the host never joins sites_involved). Every refusal,
                # timeout or host crash falls through to the locked path
                # below, so correctness never depends on a view.
                view_bound = tx.view_staleness_ms or self.config.view_staleness_ms
                if (
                    view_bound > 0
                    and self.catalog.has_views(op.doc_name)
                    and not tx.is_update_transaction
                ):
                    served = yield from self._try_view_read(rec, op, view_bound)
                    if served:
                        op.executed = True
                        rec.view_served_ops += 1
                        self.stats.view_reads_routed += 1
                        return
                    self.stats.view_read_fallbacks += 1
                if (
                    self.replication.is_quorum_read
                    and rset.is_replicated
                    and op.doc_name not in rec.written_docs
                ):
                    # Versioned quorum read: probe R replicas, execute at
                    # the freshest provably-complete responder, repair the
                    # laggards the probes revealed.
                    sites = yield from self._quorum_read_route(rec, op, rset)
                    rset = self.catalog.replica_set(op.doc_name)
                else:
                    sites = self.replication.route_read(
                        rset,
                        origin=self.site_id,
                        rng=self._route_rng,
                        wrote_before=op.doc_name in rec.written_docs,
                    )
                    if op.doc_name in rec.stale_read_docs:
                        # An earlier attempt bounced off the follower-read
                        # staleness fence: serve this document's reads from
                        # the primary for the rest of the transaction.
                        sites = [rset.primary]
            else:
                sites = self.replication.route_write(rset)
            # Route around crashed replicas. Under primary-copy the routed
            # write target *is* the (possibly freshly promoted) primary, so
            # a dead entry here means no live copy is left. Under the
            # paper's write-everywhere regime a single dead replica makes
            # eager write-all impossible (there is no log to catch the dead
            # copy up from), so updates refuse instead of diverging.
            live_sites = [s for s in sites if self._peer_up(s)]
            if not live_sites:
                raise _AbortTx("no-live-replica")
            if len(live_sites) < len(sites) and op.kind is OpKind.UPDATE:
                if not self.replication.is_primary_copy:
                    raise _AbortTx("replica-down")
            sites = live_sites
            if (
                op.kind is OpKind.UPDATE
                and self.membership is not None
                and self.replication.is_primary_copy
                and sites == [self.site_id]
                and not self._has_lease(op.doc_name)
            ):
                # This coordinator is the routed primary but cannot prove
                # a majority of the replica set alive: refuse with the
                # precise reason instead of the participant path's generic
                # operation failure.
                self.stats.lease_refusals += 1
                raise _AbortTx("no-primary-lease")
            tx.sites_involved.update(sites)
            yield self.costs.scheduler_dispatch_ms
            self._check_alive()

            # Ship the operation to every routed site (all replicas under
            # the paper's regime; one read replica / the primary under
            # primary-copy ROWA). The coordinator's own copy is served
            # through the same participant path, which keeps replicas
            # byte-identical.
            rec.attempt += 1
            rec.expected = set(sites)
            rec.responses = {}
            rec.response_event = self.env.event()
            pool = self._pool
            for site in sites:
                if pool is None:
                    req = RemoteOpRequest(
                        tid=rec.tid, coordinator=self.site_id, op=op,
                        attempt=rec.attempt, incarnation=self.incarnation,
                    )
                else:
                    req = pool.acquire(
                        RemoteOpRequest,
                        tid=rec.tid, coordinator=self.site_id, op=op,
                        attempt=rec.attempt, incarnation=self.incarnation,
                    )
                tr = self.tracer
                if tr is not None:
                    req.span = rec.op_span
                delay = self.network.send(self.site_id, site, req)
                if tr is not None:
                    tr.add_flight("send", "net", self.site_id, rec.op_span,
                           self.env.now, self.env.now + delay,
                           {"dst": str(site)})
            if self.membership is None:
                results = yield rec.response_event
            else:
                # Bounded in lease mode: a response lost to a short cut
                # must not wait on a suspicion that will never come. The
                # never-answering sites flow into ``missing`` below, and
                # the retry re-ships the operation (attempt-fenced).
                timeout_ev = self.env.timeout(self._round_timeout_ms(), value=None)
                fired = yield self.env.any_of([rec.response_event, timeout_ev])
                results = fired.get(rec.response_event, dict(rec.responses))
            rec.response_event = None
            self._check_alive()
            tx.stats.op_attempts += 1

            # Participants that died mid-operation never answered; their
            # volatile state (locks, partial effects) died with them.
            missing = set(sites) - set(results)

            acquired_all = not missing and all(r.acquired for r in results.values())
            any_failed = any(r.failed for r in results.values())
            any_deadlock = any(r.deadlock for r in results.values())
            any_stale = any(r.stale for r in results.values())
            executed_sites = [
                r.site
                for r in results.values()
                if r.executed and self._peer_up(r.site)
            ]
            if pool is not None:
                # Every datum the round needs is extracted above: recycle
                # the responses. Late same-attempt replies (lease mode)
                # simply stay un-released and are collected by the GC.
                for r in results.values():
                    pool.release(r)
                stats = self.stats
                stats.pool_hits = pool.hits
                stats.pool_misses = pool.misses

            if acquired_all and not any_failed and not any_stale:
                op.executed = True
                rec.executed_sites.update(sites)
                if op.kind is OpKind.UPDATE:
                    rec.written_docs.add(op.doc_name)
                    rec.write_sites.setdefault(op.doc_name, set()).update(sites)
                elif len(sites) < rset.degree:
                    self.stats.reads_routed += 1  # once per routed query
                return

            # Back out sites where the operation did execute (Alg. 1 l. 16).
            if executed_sites:
                self._collect_acks(rec, "undo", executed_sites)
                for site in executed_sites:
                    self.network.send(
                        self.site_id,
                        site,
                        UndoOpRequest(
                            tid=rec.tid, coordinator=self.site_id,
                            op_index=op.index, attempt=rec.attempt,
                            span=rec.op_span,
                        ),
                    )
                yield from self._await_acks(rec)
                rec.phase = ""
                self._check_alive()

            if any_failed:
                raise _AbortTx("operation-failed")
            if any_deadlock:
                raise _AbortTx("local-deadlock")
            if any_stale:
                # Follower-read fence: the routed secondary could not bound
                # its staleness against the primary. Not an error — retry
                # immediately with the document pinned to the primary.
                rec.stale_read_docs.add(op.doc_name)
                continue
            if missing:
                # A routed site crashed before answering. Earlier
                # operations that executed there are gone for good — the
                # transaction cannot be salvaged. Otherwise retry: the
                # failover already re-pointed the catalog, so the next
                # round routes to the new primary / a live replica.
                if missing & rec.executed_sites:
                    raise _AbortTx("participant-crashed")
                continue

            # Wait mode (Alg. 1 l. 9 / l. 17), then retry the operation.
            tx.state = TxState.WAITING
            tx.stats.waits += 1
            yield from self._wait_for_wake(rec)
            tx.state = TxState.ACTIVE

    def _wait_for_wake(self, rec: CoordinatorRecord):
        tr = self.tracer
        if tr is None:
            return (yield from self._wait_for_wake_inner(rec))
        # One lock_wait span per blocked period: the first wait of an
        # operation opens it, and every later wait of the same operation
        # *extends* it (a broadcast wake that cannot be satisfied is still
        # time spent waiting for the lock — chopping the period into
        # per-wait spans would misread that churn as coordinator work).
        sid = rec.wait_span
        if not sid or tr.get(sid).parent != rec.op_span:
            op_span = tr.get(rec.op_span) if rec.op_span else None
            doc = op_span.label("doc") if op_span is not None else None
            labels = {"doc": doc} if doc else None
            sid = tr.begin(
                "lock_wait", "lock_wait", self.site_id, rec.op_span,
                self.env.now, labels,
            )
            rec.wait_span = sid
        try:
            return (yield from self._wait_for_wake_inner(rec))
        finally:
            tr.get(sid).end = self.env.now  # extend past earlier closes

    def _wait_for_wake_inner(self, rec: CoordinatorRecord):
        if rec.wake_pending or rec.abort_requested:
            rec.wake_pending = False
            return
        rec.wake_event = self.env.event()
        waits = [rec.wake_event]
        timeout_ev = None
        if self.config.lock_wait_timeout_ms > 0:
            timeout_ev = self.env.timeout(self.config.lock_wait_timeout_ms, value="timeout")
            waits.append(timeout_ev)
        fired = yield self.env.any_of(waits)
        rec.wake_event = None
        rec.wake_pending = False
        self._check_alive()
        if timeout_ev is not None and timeout_ev in fired and not rec.abort_requested:
            raise _AbortTx("lock-wait-timeout")

    # ------------------------------------------------------------------
    # quorum reads (replica_read_policy="quorum")
    # ------------------------------------------------------------------

    def _quorum_read_route(self, rec: CoordinatorRecord, op: Operation, rset):
        """Resolve a quorum read to a single execution site.

        Fans a :class:`VersionProbe` to every live replica (the
        coordinator's own copy ranked first — a tie there costs zero hops
        — then the primary, then the secondaries in placement order),
        waits for the first R :class:`VersionReport`s, and picks the
        freshest responder that provably covers every committed write
        (:func:`~repro.distribution.quorum.choose_read_replica`). Probe
        responders found behind the frontier get a :class:`ReadRepairNudge`
        (anti-entropy catch-up, not data shipping). Silent responders are
        excluded and the round re-probed; when racing in-flight batches
        leave no provably-complete responder the primary serves (its live
        tree is complete by construction — every primary-copy write
        executes there before committing anywhere). Aborts with
        ``no-read-quorum`` when fewer than R replicas can answer.
        """
        doc_name = op.doc_name
        excluded: set = set()
        for _ in range(4):
            self._check_alive()
            if rec.abort_requested:
                raise _AbortTx(rec.abort_reason or "abort-ordered")
            rset = self.catalog.replica_set(doc_name)
            spec = self._quorum_spec(rec, rset.degree)
            order = [s for s in rset.all_sites if s != self.site_id]
            if self.site_id in rset:
                order.insert(0, self.site_id)
            candidates = [s for s in order if s not in excluded and self._peer_up(s)]
            if len(candidates) < spec.read_quorum:
                raise _AbortTx("no-read-quorum")
            self._probe_seq += 1
            probe_id = self._probe_seq
            # Speculative fan-out (the Dynamo-family read discipline):
            # probe *every* live replica, settle on the first R reports.
            # A replica that is believed live but actually behind a cut
            # then costs nothing — the R answers come from the reachable
            # side — and every responder's version gets inspected, which
            # is what keeps read repair finding stragglers. R remains the
            # consistency knob: it is the number of *answers* that gate
            # the read, not the number of probes.
            targets = candidates
            state = _ProbeState(
                expected=set(targets),
                needed=spec.read_quorum,
                event=self.env.event(),
            )
            self._version_probes[probe_id] = state
            probe = VersionProbe(
                doc_name=doc_name, reader=self.site_id, probe_id=probe_id
            )
            for target in targets:
                self.network.send(self.site_id, target, probe)
                self.stats.version_probes_sent += 1
            # Bounded under both detectors: a probe lost to a cut has no
            # SiteDownNotice backstop (the peer is alive).
            timeout_ev = self.env.timeout(self._round_timeout_ms(), value=None)
            yield self.env.any_of([state.event, timeout_ev])
            self._version_probes.pop(probe_id, None)
            self._check_alive()
            reports = {
                site: VersionVector(
                    site=site,
                    epoch=msg.epoch,
                    applied_lsn=msg.applied_lsn,
                    max_recorded_lsn=msg.max_recorded_lsn,
                )
                for site, msg in state.reports.items()
            }
            if len(reports) < spec.read_quorum:
                # Crashed or partitioned-away responders: strike them from
                # the candidate pool and re-probe over the rest.
                excluded |= set(targets) - set(reports)
                self.stats.quorum_read_retries += 1
                continue
            winner, laggards = choose_read_replica(
                reports,
                primary=rset.primary,
                preferred=self.site_id,
                placement=tuple(rset.all_sites),
            )
            if laggards:
                top_epoch, frontier = version_frontier(reports)
                nudge = ReadRepairNudge(
                    doc_name=doc_name, target_lsn=frontier, epoch=top_epoch
                )
                for site in laggards:
                    self.network.send(self.site_id, site, nudge)
                self.stats.read_repairs_sent += len(laggards)
            if winner is None:
                # No responder is provably complete: racing batches in
                # flight everywhere probed, or the completeness evidence
                # came from a stale-epoch tail. The believed primary's
                # live tree is complete by construction — but only if the
                # belief is current: reports revealing a newer timeline
                # than this coordinator's view prove the believed primary
                # deposed, and serving from it could return fenced data
                # while missing quorum-committed writes. Re-probe instead;
                # the announce/heartbeat stream updates the view within a
                # round or two.
                top_epoch, _ = version_frontier(reports)
                if (
                    self._peer_up(rset.primary)
                    and self.catalog.epoch(doc_name) >= top_epoch
                ):
                    winner = rset.primary
                else:
                    self.stats.quorum_read_retries += 1
                    continue
            self.stats.quorum_reads += 1
            return [winner]
        raise _AbortTx("no-read-quorum")

    def _on_version_probe(self, msg: VersionProbe) -> None:
        """Answer a quorum-read coordinator with this replica's version.

        Reads the durable log position only — no lock, no document access.
        A site that does not host the document (or is down) stays silent;
        the coordinator excludes silent responders and re-probes.
        """
        if not self.alive or msg.doc_name not in self.data_manager.live_documents():
            return
        log = self.log_for(msg.doc_name)
        self.stats.version_reports_served += 1
        self.network.send(
            self.site_id,
            msg.reader,
            VersionReport(
                doc_name=msg.doc_name,
                site=self.site_id,
                probe_id=msg.probe_id,
                applied_lsn=log.applied_lsn,
                # The *log tip's* epoch — the timeline the data actually
                # belongs to — NOT this site's election view. A healed
                # deposed primary has a current view over a stale fenced
                # log; reporting the view epoch would let it masquerade as
                # a fresh replica while its tip LSNs alias batches it
                # never had.
                max_recorded_lsn=log.max_recorded_lsn,
                epoch=log.last_epoch,
            ),
        )

    def _on_version_report(self, msg: VersionReport) -> None:
        state = self._version_probes.get(msg.probe_id)
        if state is None:
            return  # round already settled (timeout / crash): stale report
        state.reports[msg.site] = msg
        if (
            state.event is not None
            and not state.event.triggered
            and (
                len(state.reports) >= state.needed
                or set(state.reports) >= state.expected
            )
        ):
            state.event.succeed(None)

    def _on_read_repair(self, msg: ReadRepairNudge) -> None:
        """A quorum read observed this replica behind the frontier: heal.

        Re-checked against the local log first — the gap may have closed
        (or an even newer epoch arrived) while the nudge travelled; only a
        replica still provably behind starts a catch-up round.
        """
        if not self.alive or msg.doc_name not in self.data_manager.live_documents():
            return
        log = self.log_for(msg.doc_name)
        if (
            self.catalog.epoch(msg.doc_name) < msg.epoch
            or log.applied_lsn < msg.target_lsn
        ):
            self.stats.read_repairs_received += 1
            self.nudge_catch_up(msg.doc_name)

    def _sync_replicas(self, rec: CoordinatorRecord):
        tr = self.tracer
        if tr is None:
            return (yield from self._sync_replicas_inner(rec))
        saved = rec.op_span
        sid = tr.begin(
            "replica_sync", "sync", self.site_id,
            rec.op_span or rec.root_span, self.env.now,
        )
        rec.op_span = sid  # nested sync sends parent here
        try:
            return (yield from self._sync_replicas_inner(rec))
        finally:
            tr.end(sid, self.env.now)
            rec.op_span = saved

    def _sync_replicas_inner(self, rec: CoordinatorRecord):
        """Commit-time replica synchronization (eager and quorum regimes).

        Runs at the top of the commit procedure, while the primary's locks
        are still held — conflicting writers therefore sync in lock-grant
        order and secondaries apply transactions in commit order. Per
        document one LSN is allocated; the batch is recorded in the
        primary's durable log (locally when the coordinator is the
        primary, via a log-only sync otherwise) and applied at every live
        secondary. Crashed or refusing secondaries are skipped — they
        catch the batch up from the log later — so a single dead replica
        no longer blocks the commit. Under ``replica_write_policy="primary"``
        the round waits for every live secondary's ack; under ``"quorum"``
        it settles once W replicas durably hold each batch and the
        stragglers' acks are ignored (they still apply the batch, late).
        Returns False when the epoch fence refused the batch (this
        coordinator acted on a deposed primary) or the durable-copies
        quorum could not be assembled: the caller must unwind.
        """
        per_doc: dict[str, list] = {}
        for op in rec.tx.operations:
            if op.kind is OpKind.UPDATE and op.executed:
                per_doc.setdefault(op.doc_name, []).append(op)
        if not per_doc:
            return True
        if self.config.group_commit_window_ms > 0 and not rec.tx.write_quorum_w:
            # A transaction with its own write quorum cannot share the
            # outbox (a batch settles on *one* W for all its members);
            # it takes the sequenced per-transaction path below instead.
            # Group commit: stage each batch in the (primary, doc) outbox
            # and share the sync rounds with every transaction that
            # reaches commit within the window. Drain *every* waiter
            # before deciding: another document's batch may have durably
            # applied (rec.synced), which turns a failure into
            # fail-with-state-kept, not abort.
            group_waits: list = []
            for doc_name, ops in per_doc.items():
                rset = self.catalog.replica_set(doc_name)
                if not rset.is_replicated:
                    continue  # single copy: commit/abort handle it alone
                origin = rec.write_sites.get(doc_name, set())
                if origin != {rset.primary} or any(
                    not self._peer_up(s) for s in origin
                ):
                    rec.abort_reason = "participant-crashed"
                    return False
                group_waits.append(self._enqueue_group_sync(rec, doc_name, ops))
            outcomes = []
            for waiter in group_waits:
                outcome = yield waiter
                self._check_alive()
                outcomes.append(outcome)
            failed_reason = ""
            for outcome in outcomes:
                if outcome is None:  # outbox wiped by a crash we survived?
                    failed_reason = failed_reason or "participant-crashed"
                    continue
                if outcome["synced"]:
                    rec.synced = True
                if not outcome["ok"]:
                    failed_reason = outcome["reason"] or "sync-failed"
            if failed_reason:
                rec.abort_reason = failed_reason
                return False
            return True
        result = yield from self._sync_replicas_sequenced(rec, per_doc)
        return result

    def _sync_replicas_sequenced(self, rec: CoordinatorRecord, per_doc: dict):
        """Replica synchronization, primary first: both eager and quorum.

        Two sub-rounds instead of a single fan-out, and the ordering is
        load-bearing: the batch reaches **the primary's durable log
        before any secondary sees it**. A secondary can therefore never
        hold a batch its primary does not — with a parallel fan-out, a
        coordinator cut off mid-fan could leave a batch applied at a
        secondary while the primary (which never got its log-only record)
        orphan-aborts the transaction and undoes the effects: permanent
        divergence no anti-entropy could repair, because catch-up serves
        from the primary's log. LSNs are primary-assigned for the same
        reason (allocation = recording, atomic at the primary): a
        pre-allocated slot whose record message died in flight would
        punch a permanent hole into the primary's log and wedge its
        applied watermark — and every catch-up above it — forever.

        Round 1 records the batch at each document's primary (locally
        when this coordinator is the primary). Round 2 fans the batch to
        the live secondaries; under ``"primary"`` (eager) it waits for
        every live secondary's ack, under ``"quorum"`` it settles as soon
        as every document has ``W - 1`` ok acks (the primary's record is
        the W-th copy) — the commit stops tracking the slowest replica.
        Quorum rounds are timeout-bounded under either detector; eager
        rounds keep the perfect-mode oracle (SiteDownNotice unsticks) and
        the lease-mode timeout.
        """
        staged: dict[str, tuple] = {}  # doc -> (lsn, epoch, ops)
        primary_keys: list = []
        primary_sends: list = []
        for doc_name, ops in per_doc.items():
            rset = self.catalog.replica_set(doc_name)
            if not rset.is_replicated:
                continue  # single copy: commit/abort handle it alone
            origin = rec.write_sites.get(doc_name, set())
            if origin != {rset.primary} or any(
                not self._peer_up(s) for s in origin
            ):
                # The document's updates must all have executed at the
                # *current* primary — and nowhere else. A crash mid-flight
                # means the executing copy's uncommitted effects died with
                # it; a primacy handoff mid-transaction (migration cutover,
                # or a false suspicion deposing a live primary) splits the
                # effects across two primaries' live trees, and committing
                # such a batch would durably record operations the new
                # primary's own copy never executed. Either way: unwind
                # (the client restart re-executes wholly under the new
                # primary).
                rec.abort_reason = "participant-crashed"
                return False
            # No fail-fast even when too few replicas look reachable to
            # ever assemble W: the batch must reach the primary's log
            # first regardless. A hopeless quorum then fails with state
            # kept *and logged* — an unlogged kept effect at the primary
            # would be invisible to catch-up and diverge the replicas
            # permanently.
            epoch = self.catalog.epoch(doc_name)
            if rset.primary == self.site_id:
                # Allocation and record are one atomic step at the
                # primary: no yield separates them, so no slot can be
                # orphaned (a permanent hole would wedge the applied
                # watermark and with it catch-up serving forever).
                lsn = self.catalog.allocate_lsn(doc_name)
                staged[doc_name] = (lsn, epoch, ops)
                self._apply_log_entry(
                    UpdateLogEntry(
                        lsn=lsn, epoch=epoch, tid=rec.tid,
                        doc_name=doc_name, ops=tuple(ops),
                    ),
                    apply_data=False,
                )
                ctx = self.tx_contexts.get(rec.tid)
                if ctx is not None and doc_name not in ctx.stable_applied:
                    self._stable_apply(doc_name, ops)
                    ctx.stable_applied.add(doc_name)
                self._persist_committed(doc_name)
                rec.synced = True
            else:
                # Remote primary: the LSN is *assigned at the primary*
                # when it records (lsn=0 in the request) — a request lost
                # in flight then orphans nothing.
                staged[doc_name] = (0, epoch, ops)
                primary_keys.append((rset.primary, doc_name))
                primary_sends.append(
                    (
                        rset.primary,
                        ReplicaSyncRequest(
                            tid=rec.tid, coordinator=self.site_id,
                            doc_name=doc_name, lsn=0, epoch=epoch,
                            log_only=True, ops=list(ops),
                        ),
                    )
                )
        if not staged:
            return True
        # Bounded rounds belong to the lease detector (messages can be
        # silently lost) and to the quorum regime (bounded under either
        # detector, by design). Eager writes under the perfect detector
        # keep the oracle contract: the round waits until every ack
        # arrives or a SiteDownNotice unsticks it — a merely *slow* ack
        # (e.g. a primary serializing behind its catch-up gate) must not
        # time a committable transaction out into a permanent failure.
        bounded = self.membership is not None or self.replication.is_quorum_write
        if primary_keys:
            # Round 1: the remote primaries' durable records. One ok ack
            # per document settles it (early fire through the quorum
            # machinery; the timeout covers a primary behind a cut).
            self._collect_acks(
                rec, "sync", primary_keys,
                quorum=(
                    {doc_name: 1 for _, doc_name in primary_keys}
                    if bounded
                    else None
                ),
            )
            tr = self.tracer
            for target, msg in primary_sends:
                if tr is not None:
                    msg.span = rec.op_span
                delay = self.network.send(self.site_id, target, msg)
                if tr is not None:
                    tr.add_flight("send", "net", self.site_id, rec.op_span,
                           self.env.now, self.env.now + delay,
                           {"dst": str(target)})
            acks = yield from self._await_acks(rec)
            rec.phase = ""
            self._check_alive()
            if any(a.ok for a in acks.values()):
                rec.synced = True
            if any(not a.ok and a.reason == "stale-epoch" for a in acks.values()):
                rec.abort_reason = "stale-epoch"
                return False
            for site, doc_name in primary_keys:
                ack = acks.get((site, doc_name))
                if ack is None:
                    if self.membership is None and site in rec.down_acks:
                        # Perfect detector: the only way an ack goes
                        # missing is the primary crashing mid-round. The
                        # failover re-points the catalog and epoch-fences
                        # whatever the dead primary may have recorded;
                        # nothing reached a secondary, so unwind cleanly
                        # (the old single-round path reached the same end
                        # through its origin check).
                        rec.abort_reason = "participant-crashed"
                        return False
                    # Ambiguous: the request or its ack was lost — the
                    # primary may well have recorded the batch. A clean
                    # abort could undo a durable record, so the unwind
                    # must keep state (``synced``); the primary's own
                    # record/no-record fact settles the final outcome
                    # through orphan resolution and kept-effect logging.
                    rec.synced = True
                    rec.abort_reason = "sync-quorum-lost"
                    return False
                if not ack.ok:
                    # Explicit refusal: the primary did not record, and
                    # no secondary has seen the batch — unwinding is
                    # clean unless another document already synced.
                    rec.abort_reason = "sync-quorum-lost"
                    return False
                lsn, epoch, ops = staged[doc_name]
                staged[doc_name] = (ack.lsn, epoch, ops)
        is_quorum = self.replication.is_quorum_write
        sec_keys: list = []
        sec_sends: list = []
        goal: dict = {}
        for doc_name, (lsn, epoch, ops) in staged.items():
            rset = self.catalog.replica_set(doc_name)
            if is_quorum:
                spec = self._quorum_spec(rec, rset.degree)
                needed = spec.write_quorum - 1  # the primary's record counts
                if needed > 0:
                    goal[doc_name] = needed
            for target in self.replication.sync_targets(rset):
                if not self._peer_up(target):
                    continue  # dead secondary: catches up later
                sec_keys.append((target, doc_name))
                sec_sends.append(
                    (
                        target,
                        ReplicaSyncRequest(
                            tid=rec.tid, coordinator=self.site_id,
                            doc_name=doc_name, lsn=lsn, epoch=epoch,
                            ops=list(ops),
                        ),
                    )
                )
        acks = {}
        if sec_keys:
            # Round 2: fan to the secondaries. Quorum: W-1 ok acks per
            # document settle the round, stragglers apply the batch late.
            # Eager: every live secondary's ack is awaited (the client
            # sees the commit only once all of them hold the batch).
            self._collect_acks(rec, "sync", sec_keys, quorum=goal)
            tr = self.tracer
            for target, msg in sec_sends:
                if tr is not None:
                    msg.span = rec.op_span
                delay = self.network.send(self.site_id, target, msg)
                if tr is not None:
                    tr.add_flight("send", "net", self.site_id, rec.op_span,
                           self.env.now, self.env.now + delay,
                           {"dst": str(target)})
            acks = yield from self._await_acks(rec)
            rec.phase = ""
            self._check_alive()
            if any(a.ok for a in acks.values()):
                rec.synced = True
            if any(not a.ok and a.reason == "stale-epoch" for a in acks.values()):
                rec.abort_reason = "stale-epoch"
                return False
        for doc_name in staged:
            rset = self.catalog.replica_set(doc_name)
            remote_ok = sum(
                1
                for site in rset.secondaries
                if (ack := acks.get((site, doc_name))) is not None and ack.ok
            )
            if is_quorum:
                spec = self._quorum_spec(rec, rset.degree)
                self.stats.sync_acks_awaited += remote_ok
                if 1 + remote_ok < spec.write_quorum:
                    rec.abort_reason = "sync-quorum-lost"
                    return False
            elif self.membership is not None:
                # Eager lease-mode sync quorum (PR 4's no-split-brain
                # rule): a durable majority of the replica set — with the
                # primary's record, guaranteed by round 1, as one vote. A
                # primary cut off from its peers, or a coordinator whose
                # syncs fell into a partition, cannot reach it: the
                # minority side never commits.
                if 2 * (1 + remote_ok) <= rset.degree:
                    rec.abort_reason = "sync-quorum-lost"
                    return False
        return True

    # ------------------------------------------------------------------
    # group commit (config.group_commit_window_ms > 0)
    # ------------------------------------------------------------------

    def _enqueue_group_sync(self, rec: CoordinatorRecord, doc_name: str, ops):
        """Stage one transaction's per-document batch in the sync outbox.

        Returns the event the coordinator must yield on; it fires with the
        transaction's individual outcome dict (``ok``/``synced``/``reason``)
        once the batch's single ack round completes — or with ``None`` when
        this site crashed while the batch was pending.
        """
        rset = self.catalog.replica_set(doc_name)
        key = (rset.primary, doc_name)
        box = self._sync_outboxes.get(key)
        if box is None or not box.open:
            box = _SyncOutbox(primary=rset.primary, doc_name=doc_name)
            self._sync_outboxes[key] = box
            self.env.process(self._flush_sync_outbox(key, box, self.incarnation))
        waiter = self.env.event()
        box.queue.append((rec, ops, waiter))
        return waiter

    def _outbox_died(self, box: _SyncOutbox, incarnation: int) -> bool:
        """Whether this flush belongs to a crashed (or crashed-and-restarted)
        incarnation of the site. ``crash()`` already settled the waiters and
        failed the queued transactions' clients; a flush that resumes after
        a recover must do nothing — replicating now would ship effects of
        transactions already reported failed."""
        if self.alive and self.incarnation == incarnation:
            return False
        for _, _, waiter in box.queue:
            if not waiter.triggered:
                waiter.succeed(None)
        return True

    def _flush_sync_outbox(self, key, box: _SyncOutbox, incarnation: int):
        """Turn one outbox's queue into one shared (sequenced) sync round.

        After the window closes: re-validate each queued transaction the
        way the unbatched path would (its executing copy must still be
        the live primary — a failover or crash during the window fails
        that transaction, not the whole batch), then run the primary-
        first batch rounds of :meth:`_flush_sequenced_batch` and settle
        every waiter from the collected per-transaction ack results.
        """
        yield (self.config.group_commit_window_ms)
        box.open = False
        if self._sync_outboxes.get(key) is box:
            del self._sync_outboxes[key]
        if self._outbox_died(box, incarnation):
            return
        doc_name = box.doc_name
        rset = self.catalog.replica_set(doc_name)
        valid: list = []
        for rec, ops, waiter in box.queue:
            origin = rec.write_sites.get(doc_name, set())
            if (
                rset.primary != box.primary
                or origin != {rset.primary}
                or any(not self._peer_up(s) for s in origin)
            ):
                waiter.succeed(
                    {"ok": False, "synced": False, "reason": "participant-crashed"}
                )
            else:
                valid.append((rec, ops, waiter))
        if not valid or not rset.is_replicated:
            return
        self.stats.group_batched_syncs += len(valid)
        yield from self._flush_sequenced_batch(box, incarnation, rset, valid)

    def _ship_batch_round(self, doc_name: str, targets: list, entries: list,
                          quorum_needed: int, bounded: bool = True):
        """Fan one ReplicaSyncBatch to ``targets`` and wait it out.

        The round settles early once every entry's transaction has
        ``quorum_needed`` ok results (0 = wait for every target), and
        with ``bounded`` a timeout covers peers behind a cut. Eager
        rounds under the perfect detector pass ``bounded=False`` to keep
        the oracle contract: wait for every ack, or for the
        SiteDownNotice that unsticks the round. Returns the
        :class:`_SyncBatchState` with whatever acks arrived.
        """
        self._batch_seq += 1
        batch_id = self._batch_seq
        state = _SyncBatchState(
            expected={site for site, _ in targets},
            event=self.env.event(),
            quorum_needed=quorum_needed,
            tids=[entry.tid for entry in entries],
        )
        self._sync_batches[batch_id] = state
        tr = self.tracer
        # A batch round aggregates several transactions' entries, so its
        # span is a *global* one (parent 0): it cannot belong to any
        # single transaction's tree.
        batch_span = (
            tr.begin(
                "batch_round", "sync", self.site_id, 0, self.env.now,
                {"doc": doc_name, "entries": str(len(entries))},
            )
            if tr is not None
            else 0
        )
        for site, log_only in targets:
            msg = ReplicaSyncBatch(
                coordinator=self.site_id, doc_name=doc_name,
                batch_id=batch_id, log_only=log_only, entries=list(entries),
                span=batch_span,
            )
            delay = self.network.send(self.site_id, site, msg)
            if tr is not None:
                tr.add_flight("send", "net", self.site_id, batch_span,
                       self.env.now, self.env.now + delay,
                       {"dst": str(site)})
            self.stats.group_batches_sent += 1
        if bounded:
            timeout_ev = self.env.timeout(self._round_timeout_ms(), value=None)
            yield self.env.any_of([state.event, timeout_ev])
        else:
            yield state.event
        if tr is not None:
            tr.end(batch_span, self.env.now)
        self._sync_batches.pop(batch_id, None)
        return state

    def _flush_sequenced_batch(self, box: _SyncOutbox, incarnation: int, rset,
                               valid: list):
        """Group-commit settlement, primary first (eager and quorum).

        The same two-round ordering as :meth:`_sync_replicas_sequenced`,
        per batch: the whole batch reaches the primary's durable log
        before any secondary sees any of it (a secondary must never hold
        a batch its primary does not), then one fan-out to the live
        secondaries settles each transaction — at ``W - 1`` ok acks on
        top of the primary's record under quorum writes, at every live
        secondary's ack under eager writes. LSNs are primary-assigned:
        allocated with the local append when this coordinator is the
        primary, or assigned at record time by the remote primary
        (entries ship with lsn=0) so a batch lost in flight orphans no
        slot. Entries the primary refused are withheld from the secondary
        fan-out — shipping them would recreate exactly the divergence the
        ordering exists to prevent.
        """
        doc_name = box.doc_name
        is_quorum = self.replication.is_quorum_write
        quorum_w = (
            self.replication.quorum_for(rset.degree).write_quorum
            if is_quorum
            else 0
        )
        # Same boundedness rule as the unbatched path: lease mode and the
        # quorum regime are timeout-bounded; eager-perfect rounds wait on
        # the oracle (all acks, or SiteDownNotice).
        bounded = self.membership is not None or is_quorum
        epoch = self.catalog.epoch(doc_name)
        primary_ok: dict = {}  # tid -> (ok, reason)
        entries: list = []
        if rset.primary == self.site_id:
            # Batched local log append, exactly like the eager flush;
            # allocation and record are one atomic step per entry.
            for rec, ops, _ in valid:
                entry = UpdateLogEntry(
                    lsn=self.catalog.allocate_lsn(doc_name), epoch=epoch,
                    tid=rec.tid, doc_name=doc_name, ops=tuple(ops),
                )
                entries.append(entry)
                self._apply_log_entry(entry, apply_data=False)
                ctx = self.tx_contexts.get(entry.tid)
                if ctx is not None and doc_name not in ctx.stable_applied:
                    self._stable_apply(doc_name, ops)
                    ctx.stable_applied.add(doc_name)
                self._persist_committed(doc_name)
                rec.synced = True
                primary_ok[entry.tid] = (True, "")
        else:
            if not self.network.is_up(rset.primary):
                for rec, _, waiter in valid:
                    waiter.succeed(
                        {
                            "ok": False,
                            "synced": rec.synced,
                            "reason": "participant-crashed",
                        }
                    )
                return
            entries = [
                UpdateLogEntry(
                    lsn=0, epoch=epoch, tid=rec.tid,
                    doc_name=doc_name, ops=tuple(ops),
                )
                for rec, ops, _ in valid
            ]
            state = yield from self._ship_batch_round(
                doc_name, [(rset.primary, True)], entries,
                quorum_needed=1, bounded=bounded,
            )
            if self._outbox_died(box, incarnation):
                return
            ack = state.acks.get(rset.primary)
            if ack is None:
                if self.membership is None and not self.network.is_up(rset.primary):
                    # Perfect detector: the primary crashed mid-round —
                    # the failover fences whatever it recorded, and no
                    # secondary saw anything. Clean unwind.
                    for rec, _, waiter in valid:
                        waiter.succeed(
                            {
                                "ok": False,
                                "synced": rec.synced,
                                "reason": "participant-crashed",
                            }
                        )
                    return
                # Ambiguous: the batch or its ack was lost — the primary
                # may have recorded everything. No entry can be undone,
                # and none can reach the secondaries either (their
                # assigned LSNs are unknown): fail the whole batch with
                # state kept; the primary's record/no-record fact settles
                # each orphan.
                for rec, _, waiter in valid:
                    waiter.succeed(
                        {
                            "ok": False,
                            "synced": True,
                            "reason": "sync-quorum-lost",
                        }
                    )
                return
            for entry in entries:
                primary_ok[entry.tid] = ack.results.get(entry.tid, (False, ""))
            entries = [
                UpdateLogEntry(
                    lsn=ack.assigned[e.tid], epoch=e.epoch, tid=e.tid,
                    doc_name=e.doc_name, ops=e.ops,
                )
                for e in entries
                if primary_ok[e.tid][0] and e.tid in ack.assigned
            ]
            for rec, _, _ in valid:
                if primary_ok[rec.tid][0]:
                    rec.synced = True
        sec_targets = [
            (target, False)
            for target in self.replication.sync_targets(rset)
            if self._peer_up(target)
        ]
        good_entries = [e for e in entries if primary_ok[e.tid][0]]
        state = None
        if sec_targets and good_entries:
            state = yield from self._ship_batch_round(
                doc_name, sec_targets, good_entries,
                quorum_needed=max(1, quorum_w - 1) if quorum_w else 0,
                bounded=bounded,
            )
            if self._outbox_died(box, incarnation):
                return
        for rec, _, waiter in valid:
            p_ok, p_reason = primary_ok[rec.tid]
            durable = 1 if p_ok else 0
            sec_oks = 0
            stale = p_reason == "stale-epoch"
            if state is not None:
                for ack in state.acks.values():
                    result = ack.results.get(rec.tid)
                    if result is None:
                        continue
                    if result[0]:
                        sec_oks += 1
                    elif result[1] == "stale-epoch":
                        stale = True
            durable += sec_oks
            if is_quorum:
                self.stats.sync_acks_awaited += sec_oks
                quorum_lost = durable < quorum_w
            elif self.membership is not None:
                # Eager lease rule: durable majority with the primary's
                # record mandatory (see _sync_replicas_sequenced).
                quorum_lost = 2 * durable <= rset.degree or not p_ok
            else:
                # Eager perfect mode: the primary's record is the one
                # hard requirement; a secondary that died mid-round
                # catches up from the primary's log later.
                quorum_lost = not p_ok
            if stale:
                reason = "stale-epoch"
            elif quorum_lost:
                reason = "sync-quorum-lost"
            else:
                reason = ""
            waiter.succeed(
                {
                    "ok": not stale and not quorum_lost,
                    "synced": rec.synced or p_ok or sec_oks > 0,
                    "reason": reason,
                }
            )

    def _on_batch_ack(self, msg: ReplicaSyncBatchAck) -> None:
        state = self._sync_batches.get(msg.batch_id)
        if state is None:
            return
        state.acks[msg.site] = msg
        if state.event.triggered:
            return
        if set(state.acks) >= state.expected:
            state.event.succeed(None)
            return
        if state.quorum_needed and all(
            sum(
                1
                for ack in state.acks.values()
                if ack.results.get(tid, (False, ""))[0]
            )
            >= state.quorum_needed
            for tid in state.tids
        ):
            # Quorum writes: every transaction riding this batch has its W
            # durable copies — settle now, the stragglers apply it late.
            state.event.succeed(None)

    def _commit_transaction(self, rec: CoordinatorRecord):
        tr = self.tracer
        if tr is None:
            return (yield from self._commit_transaction_inner(rec))
        saved = rec.op_span
        sid = tr.begin(
            "commit", "2pc", self.site_id, rec.root_span, self.env.now
        )
        rec.op_span = sid  # commit-round sends and the sync nest here
        try:
            return (yield from self._commit_transaction_inner(rec))
        finally:
            tr.end(sid, self.env.now)
            rec.op_span = saved

    def _commit_transaction_inner(self, rec: CoordinatorRecord):
        """Algorithm 5. Returns True on commit, False to fall into abort."""
        self._check_alive()
        if rec.abort_requested:
            return False
        if rec.view_served_ops and rec.view_served_ops == len(rec.tx.operations):
            # Every operation was answered by a view host: no site — this
            # one included — holds any state for the transaction, so there
            # are no locks to release, nothing to sync and no 2PC round.
            self.finished.add(rec.tid)
            return True
        if self.replication.syncs_at_commit:
            synced_ok = yield from self._sync_replicas(rec)
            if not synced_ok:
                return False
        # sites_involved is a set: iterate it in sorted order so the send
        # sequence (and with it the jitter stream each message draws from)
        # is reproducible across processes, not just within one.
        others = sorted(
            (s for s in rec.tx.sites_involved if s != self.site_id), key=str
        )
        live = [s for s in others if self._peer_up(s)]
        if len(live) < len(others) and not rec.synced:
            # A participant died holding this transaction's state and
            # nothing is durable beyond the survivors: unwind.
            rec.abort_reason = rec.abort_reason or "participant-crashed"
            return False
        if live:
            self._collect_acks(rec, "commit", live)
            tr = self.tracer
            for site in live:
                delay = self.network.send(
                    self.site_id, site,
                    CommitRequest(
                        tid=rec.tid, coordinator=self.site_id,
                        span=rec.op_span,
                    ),
                )
                if tr is not None:
                    tr.add_flight("send", "net", self.site_id, rec.op_span,
                           self.env.now, self.env.now + delay,
                           {"dst": str(site)})
            if self._maybe_crash("commit-request-sent"):
                raise _SiteCrashed()
            acks = yield from self._await_acks(rec)
            rec.phase = ""
            self._check_alive()
            ok_acks = [a for a in acks.values() if a.ok]
            refused = [a for a in acks.values() if not a.ok]
            ambiguous = bool(rec.down_acks)  # crashed mid-round: unknown
            if refused or (ambiguous and not rec.synced):
                if ok_acks or ambiguous:
                    # Participants commit on receipt: those that acked ok
                    # (or died before answering) may hold committed state.
                    # A clean abort is no longer truthful — degrade to
                    # fail-with-state-kept (the paper's fail semantics).
                    rec.partial_commit = True
                if ambiguous and not refused:
                    rec.abort_reason = "participant-crashed"
                return False
        cost = self._commit_at_site(rec.tid)
        if cost:
            yield (cost)
            self._check_alive()
        return True

    def _abort_transaction(self, rec: CoordinatorRecord):
        tr = self.tracer
        if tr is None:
            return (yield from self._abort_transaction_inner(rec))
        saved = rec.op_span
        sid = tr.begin(
            "abort", "2pc", self.site_id, rec.root_span, self.env.now
        )
        rec.op_span = sid
        try:
            return (yield from self._abort_transaction_inner(rec))
        finally:
            tr.end(sid, self.env.now)
            rec.op_span = saved

    def _abort_transaction_inner(self, rec: CoordinatorRecord):
        """Algorithm 6. Returns True when the abort executed everywhere;
        False means the transaction *failed* (fail notices were sent)."""
        self._check_alive()
        others = sorted(
            (s for s in rec.tx.sites_involved if s != self.site_id), key=str
        )
        live = [s for s in others if self._peer_up(s)]
        if rec.synced or rec.partial_commit:
            # The commit-time sync already recorded the updates durably
            # beyond the primary (or part of the commit round already
            # applied), and there is no replica-wide undo: undoing at the
            # primary alone would diverge the replicas. Keep the effects
            # everywhere and fail the transaction instead (the paper's
            # fail semantics: state is kept, the application is alerted).
            # Every involved site persists its kept effects so the primary
            # — which may be a remote participant — stays durably
            # identical to the secondaries that persisted during the sync.
            for site in live:
                self.network.send(
                    self.site_id, site, FailNotice(tid=rec.tid, persist=True)
                )
            self._fail_at_site(rec.tid, persist=True)
            return False
        if live:
            self._collect_acks(rec, "abort", live)
            tr = self.tracer
            for site in live:
                delay = self.network.send(
                    self.site_id, site,
                    AbortRequest(
                        tid=rec.tid, coordinator=self.site_id,
                        span=rec.op_span,
                    ),
                )
                if tr is not None:
                    tr.add_flight("send", "net", self.site_id, rec.op_span,
                           self.env.now, self.env.now + delay,
                           {"dst": str(site)})
            acks = yield from self._await_acks(rec)
            rec.phase = ""
            self._check_alive()
            if not all(a.ok for a in acks.values()):
                for site in live:
                    self.network.send(self.site_id, site, FailNotice(tid=rec.tid))
                self._fail_at_site(rec.tid)
                return False
        cost = self._abort_at_site(rec.tid)
        if cost:
            yield (cost)
            self._check_alive()
        return True

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop this site: volatile state vanishes, messages drop.

        In-memory documents, the lock table, the wait-for graph,
        transaction contexts, queued messages and in-flight coordinator
        state are all lost; the storage backend and the update logs survive
        (disk). In-flight transactions coordinated here are reported
        'failed' to their clients (the connection died); their state at
        live participants is settled by those sites when the failure
        monitor's SiteDownNotice arrives.
        """
        if not self.alive:
            return
        self.alive = False
        self.stats.crashes += 1
        # Sever the clients: every in-flight coordinated transaction is
        # ambiguous from the client's point of view. The pending events are
        # triggered so the coordinator generators resume, observe the crash
        # (_check_alive) and unwind without further effects.
        for tid, rec in list(self.coordinators.items()):
            rec.tx.state = TxState.FAILED
            rec.tx.abort_reason = "site-crashed"
            rec.deliver(
                TxOutcome(
                    tid=tid,
                    status="failed",
                    reason="site-crashed",
                    submitted_ts=rec.tx.stats.submitted_ts,
                    finished_ts=self.env.now,
                )
            )
            self.finished.add(tid)
            self.stats.fails += 1
            for ev in (rec.response_event, rec.ack_event, rec.wake_event):
                if ev is not None and not ev.triggered:
                    ev.succeed({})
        self.coordinators.clear()
        self.tx_contexts.clear()
        self.waiters.clear()
        self._wait_sets.clear()
        self._deferred_wake_keys.clear()
        # Group-commit state is volatile: pending outboxes and in-flight
        # batch rounds die with the site. Their waiter events fire with
        # None so the (already-failed) coordinator generators unwind.
        for outbox in list(self._sync_outboxes.values()):
            outbox.open = False
            for _, _, waiter in outbox.queue:
                if not waiter.triggered:
                    waiter.succeed(None)
        self._sync_outboxes.clear()
        for state in list(self._sync_batches.values()):
            if state.event is not None and not state.event.triggered:
                state.event.succeed(None)
        self._sync_batches.clear()
        # In-flight version-probe rounds die with their coordinators; the
        # events fire so the (already-failed) read generators unwind.
        for probe_state in list(self._version_probes.values()):
            if probe_state.event is not None and not probe_state.event.triggered:
                probe_state.event.succeed(None)
        self._version_probes.clear()
        # Pending lazy flushes die with the site (their entries are in the
        # durable log; whether they survive depends on who gets promoted —
        # the lazy regime's documented loss window).
        self._lazy_outboxes.clear()
        # Materialized-view state is all volatile: the primary-side push
        # outboxes die (hosts detect the watermark gap and re-hydrate),
        # in-flight view rounds fire with None so their waiters fall back
        # to the locked path, and a hosting site's shadows are wiped
        # (recovery re-hydrates them from the current primaries).
        self._view_outboxes.clear()
        for waiter, _host in list(self._view_reads.values()):
            if not waiter.triggered:
                waiter.succeed(None)
        self._view_reads.clear()
        for waiter in list(self._view_fetch_waiters.values()):
            if not waiter.triggered:
                waiter.succeed(None)
        self._view_fetch_waiters.clear()
        if self._views is not None:
            self._views.wipe()
        if self.membership is not None:
            # The lease table and election state are volatile: a recovered
            # site re-learns the world from the heartbeats that greet it.
            self.membership = SiteMembership(
                lease_timeout_ms=self.config.lease_timeout_ms
            )
            self._elections.clear()
            self._election_reports.clear()
        self._stable.clear()  # in-memory staging; its durable form is storage
        self.wfg = WaitForGraph()
        self.lock_manager = LockManager(LockTable(self.protocol.matrix), self.wfg)
        self.inbox.clear()
        self.remote_ops.clear()
        for gate in list(self._catchup_gates.values()):
            if not gate.triggered:
                gate.succeed(None)
        self._catchup_gates.clear()
        for waiter in list(self._catchup_waiters.values()):
            if not waiter.triggered:
                waiter.succeed(None)
        self._catchup_waiters.clear()
        if self.faults is not None:
            self.faults.on_site_crashed(self.site_id)
        else:
            self.network.set_down(self.site_id)

    def recover(self) -> None:
        """Restart after a crash: reload persisted state and catch up.

        In-memory documents are re-materialized from the storage backend
        (last persisted state), protocol structures are rebuilt, and — once
        back on the network — every replicated document this site does not
        lead is caught up from its current primary by log replay (or
        snapshot transfer when the logs diverged). A deposed primary comes
        back as a secondary: the epoch bump that accompanied its
        replacement keeps it deposed.
        """
        if self.alive:
            return
        self.alive = True
        self.incarnation += 1
        self.stats.recoveries += 1
        for name in self.data_manager.live_documents():
            doc, _ = self.data_manager.reload(name)
            self.protocol.register_document(doc)
        if self.faults is not None:
            self.faults.on_site_recovered(self.site_id)
        else:
            self.network.set_up(self.site_id)
        self.env.process(self._recovery_catchup())

    def _recovery_catchup(self):
        yield (self.costs.scheduler_dispatch_ms)
        for name in sorted(self.data_manager.live_documents()):
            if not self.alive:
                return
            if not self.catalog.has_document(name):
                continue
            rset = self.catalog.replica_set(name)
            if not rset.is_replicated or rset.primary == self.site_id:
                continue
            # A primary can transiently be unable to answer (mid-election,
            # in-flight log holes): retry a few times rather than staying
            # stale until the next sync happens to trigger gap healing.
            for _ in range(4):
                caught_up = yield from self._catch_up(name)
                if caught_up or not self.alive:
                    break
                yield (self.config.catchup_timeout_ms / 4)
                if not self.alive:
                    return
                rset = self.catalog.replica_set(name)
                if rset.primary == self.site_id:
                    break
        # Hosted view shadows were wiped by the crash: re-hydrate each from
        # its document's current primary so the views go back to serving.
        if self._views is not None:
            for doc_name in sorted(self._views.states):
                if not self.alive:
                    return
                yield from self._view_fetch(doc_name)

    def _on_site_down(self, down: Hashable) -> None:
        """React to the failure monitor's crash announcement.

        Three duties: void coordinated transactions that executed state at
        the dead site (their locks and effects died with it), unstick
        coordinators waiting on responses/acks/locks from it, and settle
        orphaned transactions the dead site coordinated — commit when
        their updates were already replicated (an undo would diverge from
        the synced secondaries), abort otherwise.
        """
        if not self.alive or down == self.site_id:
            return
        if self.detector is not None:
            self.detector.on_site_down(down)
        for rec in list(self.coordinators.values()):
            if down in rec.executed_sites and not rec.tx.done:
                rec.abort_requested = True
                rec.abort_reason = rec.abort_reason or "participant-crashed"
            if (
                rec.response_event is not None
                and down in rec.expected
                and down not in rec.responses
            ):
                rec.expected.discard(down)
                if (
                    not rec.response_event.triggered
                    and set(rec.responses) >= rec.expected
                ):
                    rec.response_event.succeed(dict(rec.responses))
            if rec.ack_event is not None and rec.drop_site_from_acks(down):
                if not rec.ack_event.triggered and set(rec.acks) >= rec.ack_expected:
                    rec.ack_event.succeed(dict(rec.acks))
            # Any lock the dead site held is gone: retry waiting work.
            self._wake_coordinator(rec.tid)
        # Group-commit ack rounds waiting on the dead site complete with
        # the answers that did arrive (same rule as drop_site_from_acks).
        for state in self._sync_batches.values():
            if down in state.expected and down not in state.acks:
                state.expected.discard(down)
                if (
                    state.event is not None
                    and not state.event.triggered
                    and set(state.acks) >= state.expected
                ):
                    state.event.succeed(None)
        # Version-probe rounds waiting on the dead site settle with the
        # reports that arrived; the read path excludes it and re-probes.
        for probe_state in self._version_probes.values():
            if down in probe_state.expected and down not in probe_state.reports:
                probe_state.expected.discard(down)
                if (
                    probe_state.event is not None
                    and not probe_state.event.triggered
                    and set(probe_state.reports) >= probe_state.expected
                ):
                    probe_state.event.succeed(None)
        # View-read rounds aimed at the dead host fire with None now, so
        # their coordinators fall back to the locked path immediately
        # instead of riding out the round timeout.
        for waiter, host in list(self._view_reads.values()):
            if host == down and not waiter.triggered:
                waiter.succeed(None)
        for tid, ctx in list(self.tx_contexts.items()):
            if ctx.coordinator != down or tid in self.coordinators:
                continue
            if ctx.synced:
                self._commit_at_site(tid)
            else:
                self._abort_at_site(tid)
            self.stats.orphans_resolved += 1

    def _on_site_up(self, up: Hashable) -> None:
        """A site recovered: if it leads a document we replicate, nudge our
        catch-up — its outage may have swallowed our earlier attempts."""
        if not self.alive or up == self.site_id:
            return
        for name in self.data_manager.live_documents():
            if not self.catalog.has_document(name):
                continue
            rset = self.catalog.replica_set(name)
            if rset.is_replicated and rset.primary == up and self.site_id in rset:
                self.nudge_catch_up(name)

    # ------------------------------------------------------------------
    # lease-based membership (failure_detector="lease")
    # ------------------------------------------------------------------

    def _membership_peers(self) -> list:
        """Every other registered site, in deterministic order."""
        return sorted(
            (s for s in self.network.site_ids if s != self.site_id), key=str
        )

    def _heartbeat_loop(self):
        """Broadcast this site's liveness (and membership facts) forever.

        Every beat carries the sender's incarnation, its applied-LSN
        watermark per hosted replicated document (log compaction input)
        and its (epoch, primary) view per such document (so election
        results keep disseminating after the one-shot announce). A dead
        site simply skips its beats — silence *is* the failure signal.
        """
        interval = self.config.heartbeat_interval_ms
        while True:
            yield (interval)
            if not self.alive:
                continue
            watermarks: dict = {}
            views: dict = {}
            for name in sorted(self.data_manager.live_documents()):
                if not self.catalog.has_document(name):
                    continue
                if not self.catalog.replica_set(name).is_replicated:
                    continue
                watermarks[name] = self.log_for(name).applied_lsn
                views[name] = self._view_of(name)
            self._heartbeat_seq += 1
            beat = HeartbeatMessage(
                sender=self.site_id,
                incarnation=self.incarnation,
                seq=self._heartbeat_seq,
                watermarks=watermarks,
                views=views,
            )
            for peer in self._membership_peers():
                self.network.send(self.site_id, peer, beat)
                self.stats.heartbeats_sent += 1

    def _view_of(self, doc_name: str) -> tuple:
        """This site's ``(epoch, primary)`` belief for ``doc_name``."""
        view_of = getattr(self.catalog, "view_of", None)
        if view_of is not None:
            return view_of(doc_name)
        return self.catalog.epoch(doc_name), self.catalog.replica_set(doc_name).primary

    def _lease_check_loop(self):
        """Expire peers' leases; suspicion is the lease-mode 'down' event."""
        interval = self.config.heartbeat_interval_ms
        while True:
            self.membership.grace(self._membership_peers(), self.env.now)
            yield (interval)
            if not self.alive:
                continue
            for peer in self._membership_peers():
                if self.membership.is_live(peer) and self.membership.lease_expired(
                    peer, self.env.now
                ):
                    self._suspect(peer)

    def _suspect(self, peer: Hashable) -> None:
        """This site now believes ``peer`` is down (it may be wrong).

        Everything the perfect detector's SiteDownNotice did, done on a
        local belief instead: unstick coordinators, settle orphans, drop
        the peer from ack rounds — all of which stays correct under false
        suspicion because unsynced orphans abort and synced ones commit,
        the same outcome the (alive) coordinator converges to from its
        side of the cut. Then start elections for every hosted document
        the suspect led.
        """
        self.membership.suspected.add(peer)
        self.stats.suspicions += 1
        # Oracle read for *statistics only* (never behaviour): was this
        # suspicion false? The experiment sweeps report it.
        if self.faults is not None and self.faults.sites[peer].alive:
            self.stats.false_suspicions += 1
        self._on_site_down(peer)
        for name in sorted(self.data_manager.live_documents()):
            if not self.catalog.has_document(name):
                continue
            rset = self.catalog.replica_set(name)
            if rset.is_replicated and rset.primary == peer:
                self._maybe_start_election(name)

    def _on_heartbeat(self, msg: HeartbeatMessage) -> None:
        if not self.alive or self.membership is None:
            return
        came_back = self.membership.heard_from(
            msg.sender, self.env.now, msg.incarnation
        )
        self.membership.watermarks[msg.sender] = dict(msg.watermarks)
        for doc_name, (epoch, primary) in sorted(msg.views.items()):
            self._adopt_view(doc_name, primary, epoch)
        # Anti-entropy: the primary's heartbeat advertises its applied
        # watermark. A replica that sees itself behind reconciles by
        # catch-up — this is what heals a batch whose sync fell into a cut
        # too short to trigger suspicion (no election, no gap-detecting
        # next write: without this nudge the divergence would be silent
        # and permanent).
        for doc_name, watermark in sorted(msg.watermarks.items()):
            if not self.catalog.has_document(doc_name):
                continue
            rset = self.catalog.replica_set(doc_name)
            if (
                rset.primary == msg.sender
                and self.site_id in rset
                and watermark > self.log_for(doc_name).applied_lsn
            ):
                self.nudge_catch_up(doc_name)
        if came_back:
            # False suspicion (or a recovery we had written off): the peer
            # is talking again. Re-run the perfect detector's up-notice
            # duties — if it leads documents we host, our catch-up attempts
            # may have been swallowed while we thought it dead.
            self._on_site_up(msg.sender)
        self._compact_leading_logs(msg.watermarks)

    def _compact_leading_logs(self, advertised: dict) -> None:
        """Checkpoint the update logs of documents this site leads.

        An entry every replica's reported watermark has passed can never
        be needed by a catch-up request again (requests ask for entries
        *above* the requester's watermark): fold it into the snapshot
        base. A silent replica freezes the floor — compaction simply
        stalls rather than compacting past anyone. Only the documents the
        just-received heartbeat ``advertised`` are rechecked: nothing
        else's floor can have moved.
        """
        for name in advertised:
            if not self.catalog.has_document(name) or name not in self.logs:
                continue
            rset = self.catalog.replica_set(name)
            if not rset.is_replicated or rset.primary != self.site_id:
                continue
            floor = min(
                self.membership.watermark_of(peer, name)
                for peer in rset.secondaries
            )
            if floor > self.log_for(name).base_lsn:
                self.stats.log_entries_compacted += self.log_for(name).compact_to(
                    floor
                )

    def _adopt_view(self, doc_name: str, primary: Hashable, epoch: int) -> None:
        """Apply a newer (epoch, primary) fact to this site's catalog view."""
        apply_primary = getattr(self.catalog, "apply_primary", None)
        if apply_primary is None or not self.catalog.has_document(doc_name):
            return
        if not apply_primary(doc_name, primary, epoch):
            return  # stale fact: an older election we already know about
        self.stats.announces_applied += 1
        # A view change can moot a running election (someone already won).
        # The election generator re-checks the view each round; nothing to
        # cancel here. But a replica that just learned of a new primary may
        # hold batches the old one never shipped — reconcile.
        if primary != self.site_id:
            rset = self.catalog.replica_set(doc_name)
            if self.site_id in rset:
                self.nudge_catch_up(doc_name)

    def _on_primary_announce(self, msg: PrimaryAnnounce) -> None:
        if not self.alive or self.membership is None:
            return
        self._adopt_view(msg.doc_name, msg.primary, msg.epoch)

    def _on_log_tip_query(self, msg: LogTipQuery) -> None:
        """Answer an elector with this replica's durable log tip.

        Any live replica answers — including a falsely suspected primary,
        whose report is proof of life and cancels the election.
        """
        if not self.alive or not self.catalog.has_document(msg.doc_name):
            return
        log = self.log_for(msg.doc_name)
        self.network.send(
            self.site_id,
            msg.elector,
            LogTipReport(
                doc_name=msg.doc_name,
                site=self.site_id,
                election_id=msg.election_id,
                applied_lsn=log.applied_lsn,
                max_recorded_lsn=log.max_recorded_lsn,
                epoch=self.catalog.epoch(msg.doc_name),
            ),
        )

    def _on_log_tip_report(self, msg: LogTipReport) -> None:
        reports = self._election_reports.get(msg.election_id)
        if reports is not None:
            reports[msg.site] = msg

    def _maybe_start_election(self, doc_name: str) -> None:
        if not self.alive or doc_name in self._elections:
            return
        rset = self.catalog.replica_set(doc_name)
        if not rset.is_replicated or self.site_id not in rset:
            return
        if rset.primary == self.site_id or self.membership.is_live(rset.primary):
            return
        self.env.process(self._run_election(doc_name))

    def _run_election(self, doc_name: str):
        tr = self.tracer
        if tr is None:
            return (yield from self._run_election_inner(doc_name))
        # Elections serve the whole replica set, not one transaction:
        # global span (parent 0).
        sid = tr.begin(
            "election", "election", self.site_id, 0, self.env.now,
            {"doc": doc_name},
        )
        try:
            return (yield from self._run_election_inner(doc_name))
        finally:
            tr.end(sid, self.env.now)

    def _run_election_inner(self, doc_name: str):
        """Elect a new primary for ``doc_name`` over the wire.

        One round: query every replica's log tip, wait
        ``election_timeout_ms``, then decide. Deciding requires reports
        from a **majority** of the replica set (the elector's own tip
        included) — the minority side of a partition can suspect all it
        wants, it can never elect, which is half of the no-split-brain
        argument (the other half is the deposed primary's lease/quorum
        loss). The most-caught-up reporter wins, placement order breaking
        ties — the same rule the perfect monitor applied, computed from
        messages instead of shared memory. Only the winner *assumes*
        primacy; everyone else waits for its announce (the winner is
        reachable, so its own suspicion of the old primary drives its own
        election). A report from the suspected primary itself cancels the
        round: it is alive, we were wrong.
        """
        self._election_seq += 1
        eid = self._election_seq
        self._elections[doc_name] = eid
        self.stats.elections_started += 1
        try:
            while self.alive:
                rset = self.catalog.replica_set(doc_name)
                suspect = rset.primary
                if suspect == self.site_id or self.membership.is_live(suspect):
                    return  # the world moved on: re-elected, or falsely suspected
                epoch = self.catalog.epoch(doc_name)
                own_log = self.log_for(doc_name)
                reports: dict = {
                    self.site_id: LogTipReport(
                        doc_name=doc_name,
                        site=self.site_id,
                        election_id=eid,
                        applied_lsn=own_log.applied_lsn,
                        max_recorded_lsn=own_log.max_recorded_lsn,
                        epoch=epoch,
                    )
                }
                self._election_reports[eid] = reports
                for candidate in rset.all_sites:
                    if candidate != self.site_id:
                        self.network.send(
                            self.site_id,
                            candidate,
                            LogTipQuery(
                                doc_name=doc_name,
                                elector=self.site_id,
                                election_id=eid,
                                epoch=epoch,
                            ),
                        )
                yield (self.config.election_timeout_ms)
                self._election_reports.pop(eid, None)
                if not self.alive:
                    return
                if suspect in reports or self.membership.is_live(suspect):
                    # Proof of life — a log-tip report from the suspect, or
                    # its heartbeats resumed while we collected votes (a
                    # short partition healing mid-election). Deposing a
                    # live primary would be safe (fencing) but needless.
                    return
                current = self.catalog.epoch(doc_name)
                if current > epoch or any(r.epoch > current for r in reports.values()):
                    return  # someone already elected under a newer epoch
                if 2 * len(reports) <= rset.degree:
                    # No majority reachable: this side of the cut must not
                    # elect. Keep retrying — the partition may heal, or we
                    # may be the minority forever (then nothing commits
                    # here, which is exactly the point).
                    self.stats.elections_no_quorum += 1
                    yield (self.config.lease_timeout_ms)
                    continue
                order = list(rset.all_sites)
                winner = min(
                    reports.values(),
                    key=lambda r: (-r.applied_lsn, order.index(r.site)),
                ).site
                if winner != self.site_id:
                    # The winner reported, so it is live on our side; its
                    # own election will promote it. Re-check later in case
                    # that never happens (e.g. its suspicion lags ours).
                    yield (self.config.lease_timeout_ms)
                    continue
                self._assume_primacy(doc_name, suspect)
                return
        finally:
            self._election_reports.pop(eid, None)
            if self._elections.get(doc_name) == eid:
                del self._elections[doc_name]

    def _assume_primacy(self, doc_name: str, deposed: Hashable) -> None:
        """This site won the election: fence, fix the log, announce.

        The epoch is *claimed*, not computed: concurrent electors that
        both reached a majority (asymmetric loss, degree >= 5) receive
        distinct epochs, so the loser is fenceable — two primaries can
        never serve the same epoch.
        """
        new_epoch = self.catalog.claim_epoch(doc_name)
        log = self.log_for(doc_name)
        if log.applied_lsn != log.max_recorded_lsn:
            # A hole inherited at promotion can never fill: its batch died
            # with (or is fenced away from) the old primary. Compact to a
            # snapshot base at the tip so catch-up serving keeps working.
            log.reset_to_snapshot(log.max_recorded_lsn, new_epoch)
        self.catalog.apply_primary(doc_name, self.site_id, new_epoch)
        # The new epoch's LSNs continue above everything recorded here;
        # allocations the deposed primary keeps making live under its own
        # (fenced) epoch and cannot punch holes in the new timeline.
        self.catalog.reset_lsn(doc_name, log.max_recorded_lsn)
        self.stats.elections_won += 1
        if self.faults is not None:
            self.faults.record_promotion(doc_name, deposed, self.site_id, new_epoch)
        announce = PrimaryAnnounce(
            doc_name=doc_name,
            primary=self.site_id,
            epoch=new_epoch,
            announcer=self.site_id,
        )
        for peer in self._membership_peers():
            self.network.send(self.site_id, peer, announce)

    # ------------------------------------------------------------------
    # update-log catch-up (recovery and gap healing)
    # ------------------------------------------------------------------

    def nudge_catch_up(self, doc_name: str) -> None:
        """Reconcile one document with its current primary, asynchronously.

        The anti-entropy entry point used by the failure monitor after a
        promotion and by SiteUpNotice handling; a no-op when this site is
        already caught up (the catch-up response carries no entries)."""
        def _run():
            yield (self.costs.scheduler_dispatch_ms)
            if self.alive:
                yield from self._catch_up(doc_name)
        self.env.process(_run())

    def _catch_up(self, doc_name: str, force_snapshot: bool = False):
        tr = self.tracer
        if tr is None:
            return (yield from self._catch_up_inner(doc_name, force_snapshot))
        # Anti-entropy repair is lazy background work shared by many
        # transactions: global span (parent 0), so a committed tree's
        # "ends after all children" invariant never depends on it.
        sid = tr.begin(
            "catch_up", "sync", self.site_id, 0, self.env.now,
            {"doc": doc_name},
        )
        try:
            return (yield from self._catch_up_inner(doc_name, force_snapshot))
        finally:
            tr.end(sid, self.env.now)

    def _catch_up_inner(self, doc_name: str, force_snapshot: bool = False):
        """Close this replica's log gap from the current primary.

        Sends a CatchUpRequest describing the local log tip and applies
        the response — the missing log suffix, or a full snapshot when the
        tips diverged (this replica applied batches of a deposed primary).
        ``force_snapshot`` requests the snapshot outright, and replay
        escalates to it on its own when it finds a *phantom* (a local
        entry whose LSN the new timeline reused under a newer epoch).
        Serialized per document through ``_catchup_gates``; bounded by
        ``config.catchup_timeout_ms`` so a primary crashing mid-catch-up
        cannot wedge this site. Returns True when a primary response was
        received and fully processed (the log may still have commuting
        holes).
        """
        gate = self._catchup_gates.get(doc_name)
        if gate is not None:
            yield gate  # another catch-up is in flight; ride on it
            return False
        if not self.data_manager.is_loaded(doc_name):
            # The copy was retired (migration drop) after this catch-up was
            # queued — e.g. recovery iterating a document list captured
            # before the retire. Nothing to reconcile here any more.
            return False
        # A migration placeholder has no base state for log replay to build
        # on: *every* catch-up path (nudge, sync-gap heal, recovery) must
        # pull the snapshot until real document state has been installed.
        if self.holds_placeholder(doc_name):
            force_snapshot = True
        rset = self.catalog.replica_set(doc_name)
        primary = rset.primary
        if primary == self.site_id or not self._peer_up(primary):
            return False
        gate = self.env.event()
        self._catchup_gates[doc_name] = gate
        try:
            for _ in range(2):  # second round only to escalate to snapshot
                log = self.log_for(doc_name)
                self._catchup_seq += 1
                req_id = self._catchup_seq
                waiter = self.env.event()
                self._catchup_waiters[req_id] = waiter
                self.network.send(
                    self.site_id,
                    primary,
                    CatchUpRequest(
                        doc_name=doc_name,
                        requester=self.site_id,
                        req_id=req_id,
                        after_lsn=log.applied_lsn,
                        # The sentinel epoch never matches: the primary's
                        # divergence branch answers with a snapshot.
                        last_epoch=-1 if force_snapshot else log.last_epoch,
                    ),
                )
                timeout_ev = self.env.timeout(self.config.catchup_timeout_ms, value=None)
                fired = yield self.env.any_of([waiter, timeout_ev])
                self._catchup_waiters.pop(req_id, None)
                if not self.alive:
                    return False
                if not self.data_manager.is_loaded(doc_name):
                    return False  # retired while the request was in flight
                resp = fired.get(waiter)
                if resp is None or not resp.ok:
                    return False  # timed out / primary mid-election: retry later
                cost = self.costs.scheduler_dispatch_ms
                if resp.snapshot is not None:
                    cost += self._install_snapshot(doc_name, resp)
                    self.stats.catchup_snapshots += 1
                replayed = 0
                phantom = False
                for entry in resp.entries:
                    log = self.log_for(doc_name)
                    existing = log.entries.get(entry.lsn)
                    if existing is not None and existing.epoch != entry.epoch:
                        # Local phantom occupies this slot with a deposed
                        # timeline's data: replay cannot reconcile.
                        phantom = True
                        break
                    if log.has(entry.lsn):
                        continue  # already applied (e.g. by a concurrent sync)
                    cost += self._apply_log_entry(entry)
                    replayed += 1
                self.stats.catchup_entries_replayed += replayed
                self.stats.catchups += 1
                yield (cost)
                if not phantom:
                    return True
                if not self.alive or force_snapshot:
                    return False
                force_snapshot = True  # escalate: full state transfer
            return False
        finally:
            self._catchup_gates.pop(doc_name, None)
            if not gate.triggered:
                gate.succeed(None)

    def _install_snapshot(self, doc_name: str, resp: CatchUpResponse) -> float:
        """Replace the local replica with the primary's serialized state."""
        doc = parse_document(resp.snapshot, name=doc_name)
        self._stable.pop(doc_name, None)  # live tree is committed state again
        self.data_manager.replace(doc)
        self.protocol.register_document(doc)
        persisted = self.data_manager.persist(doc_name)
        self.log_for(doc_name).reset_to_snapshot(resp.snapshot_lsn, resp.snapshot_epoch)
        return (
            (len(resp.snapshot) / 1024.0) * self.costs.parse_per_kb_ms
            + (persisted / 1024.0) * self.costs.persist_per_kb_ms
        )

    def _handle_catchup_request(self, msg: CatchUpRequest):
        if not self.alive:
            return
        yield (self.costs.scheduler_dispatch_ms)
        if not self.alive:
            return
        doc_name = msg.doc_name
        log = self.log_for(doc_name)
        known_epoch = log.epoch_at(msg.after_lsn)
        if self.catalog.replica_set(doc_name).primary != self.site_id:
            # Mid-failover race: the requester asked a site that is not
            # (or no longer) the primary. Tell it to retry later.
            resp = CatchUpResponse(doc_name=doc_name, req_id=msg.req_id, ok=False)
        elif (
            log.can_serve_after(msg.after_lsn)
            and known_epoch is not None
            and known_epoch == msg.last_epoch
        ):
            # Same timeline: serve the gapless run directly above the
            # requester's tip. Entries past this log's own first hole (a
            # racing batch still in flight to us) are withheld — the
            # requester heals them on a later trigger.
            resp = CatchUpResponse(
                doc_name=doc_name,
                req_id=msg.req_id,
                entries=list(log.contiguous_entries_after(msg.after_lsn)),
            )
        elif log.applied_lsn != log.max_recorded_lsn:
            # Divergence calls for a snapshot, but with in-flight holes the
            # persisted state has no single LSN to stamp it with. Holes
            # close within a round trip; the requester retries.
            resp = CatchUpResponse(doc_name=doc_name, req_id=msg.req_id, ok=False)
        else:
            # The requester's log tip is not on this primary's timeline
            # (phantom entries applied under a deposed primary, or a tip
            # older than this log's own snapshot base): ship full state —
            # the *persisted* state, i.e. exactly the committed batches
            # this hole-free log covers.
            resp = CatchUpResponse(
                doc_name=doc_name,
                req_id=msg.req_id,
                snapshot=serialize_document(self.data_manager.backend.load(doc_name)),
                snapshot_lsn=log.applied_lsn,
                snapshot_epoch=log.last_epoch,
            )
        self.network.send(self.site_id, msg.requester, resp)

    def _on_catchup_response(self, msg: CatchUpResponse) -> None:
        waiter = self._catchup_waiters.pop(msg.req_id, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(msg)

    # ------------------------------------------------------------------
    # lazy propagation (replica_write_policy="lazy")
    # ------------------------------------------------------------------

    def _log_and_queue_lazy(self, tid: TxId, ctx: SiteTxContext,
                            already_logged: set = frozenset(),
                            persist: bool = False) -> None:
        """Log this site's kept/committed updates and queue their push.

        The shared logging step of the asynchronous propagation paths.
        Called while the transaction's locks are still held (commit) or
        at fail time, so per-document log order equals settle order. Only
        replicated documents whose *current* primary is this site are
        logged. Entries go into a per-document outbox; the first entry
        schedules the flush, and everything settled within the staleness
        window rides the same :class:`ReplicaSyncBatch` (the group-commit
        wire format, reused on the asynchronous path), so a burst costs
        one message per secondary instead of one per transaction.

        Two callers, two shapes:

        * lazy commits (``replica_write_policy="lazy"``): every document,
          no persist here (the commit fold handles it);
        * kept effects / orphan commits under the commit-sync regimes:
          ``already_logged`` is ``ctx.stable_applied`` as of before the
          commit/fail fold — exactly the documents whose batches the
          sync rounds already recorded — and the fresh records persist
          immediately (an unlogged kept effect would be invisible to
          catch-up and diverge the replicas permanently).
        """
        for doc_name, ops in ctx.executed_updates_by_doc().items():
            rset = self.catalog.replica_set(doc_name)
            if rset.primary != self.site_id or not rset.is_replicated:
                continue
            if doc_name in already_logged:
                continue  # the sync round already recorded this batch
            entry = UpdateLogEntry(
                lsn=self.catalog.allocate_lsn(doc_name),
                epoch=self.catalog.epoch(doc_name),
                tid=tid,
                doc_name=doc_name,
                ops=tuple(ops),
            )
            self.log_for(doc_name).record(entry)
            self._offer_view_entry(entry)
            if persist:
                self._persist_committed(doc_name)
            pending = self._lazy_outboxes.setdefault(doc_name, [])
            pending.append(entry)
            if len(pending) == 1:
                self.env.process(self._flush_lazy_outbox(doc_name, self.incarnation))

    def _flush_lazy_outbox(self, doc_name: str, incarnation: int):
        """Ship a document's pending lazy entries as one batch per target.

        Fire-and-forget after the staleness delay (entries queued behind
        the first one ship *earlier* than their own deadline — the bound
        is an upper bound): a secondary that misses the batch (down, or
        refusing) heals through gap catch-up; a crash of this primary
        inside the delay is the lazy regime's documented loss window (the
        log survives on disk, but the promoted successor does not have
        the batch).
        """
        yield (self.config.lazy_staleness_ms)
        if not self.alive or self.incarnation != incarnation:
            return
        entries = self._lazy_outboxes.pop(doc_name, [])
        rset = self.catalog.replica_set(doc_name)
        epoch = self.catalog.epoch(doc_name)
        if rset.primary != self.site_id:
            return  # deposed while the batch waited: fenced
        entries = [e for e in entries if e.epoch >= epoch]
        if not entries:
            return
        self._batch_seq += 1
        batch_id = self._batch_seq  # no ack collection: acks are ignored
        for target in rset.secondaries:
            if not self._peer_up(target):
                continue
            self.network.send(
                self.site_id,
                target,
                ReplicaSyncBatch(
                    coordinator=self.site_id,
                    doc_name=doc_name,
                    batch_id=batch_id,
                    entries=list(entries),
                ),
            )
            self.stats.lazy_batches_propagated += 1
        self.stats.lazy_entries_coalesced += len(entries)

    # ------------------------------------------------------------------
    # materialized views (repro.views)
    # ------------------------------------------------------------------

    @property
    def views(self):
        """This site's :class:`~repro.views.ViewManager`, built on first use.

        Lazy like ``DTXCluster.migration``: a site that hosts no view never
        constructs one, so default schedules stay bit-identical.
        """
        if self._views is None:
            from ..views import ViewManager

            self._views = ViewManager(self)
        return self._views

    def host_view(self, doc_name: str) -> None:
        """Start hosting a view shadow of ``doc_name`` (cluster wiring)."""
        self.views.add_doc(doc_name)

    def hydrate_view(self, doc_name: str) -> None:
        """Schedule the initial snapshot fetch for a hosted view shadow."""
        self.env.process(self._hydrate_view_proc(doc_name))

    def _hydrate_view_proc(self, doc_name: str):
        yield (self.costs.scheduler_dispatch_ms)
        if self.alive:
            yield from self._view_fetch(doc_name)

    # -- primary side: committed-entry push --------------------------------

    def _offer_view_entry(self, entry: UpdateLogEntry) -> None:
        """Queue a freshly recorded committed entry for the view hosts.

        Called at every log-record choke point. Only the document's
        *current* primary feeds its view outbox (a deposed site's entries
        are fenced by epoch at the host anyway); without registered views
        this is a single dict miss, so default schedules pay nothing.
        """
        if not self.catalog.has_views(entry.doc_name):
            return
        if self.catalog.replica_set(entry.doc_name).primary != self.site_id:
            return
        self._view_outboxes.setdefault(entry.doc_name, []).append(entry)
        self._ensure_view_push(entry.doc_name)

    def _ensure_view_push(self, doc_name: str) -> None:
        """Run the per-document view push loop at this (potential) primary.

        The cluster starts one at every replica-set member when a view is
        registered — any of them may be elected primary later — and
        ``_offer_view_entry`` backstops sites that joined the set after
        registration (e.g. by migration).
        """
        if doc_name in self._view_push_docs:
            return
        self._view_push_docs.add(doc_name)
        self.env.process(self._view_push_loop(doc_name))

    def _view_push_loop(self, doc_name: str):
        """Ship committed log entries (and freshness beacons) to view hosts.

        Every ``view_refresh_ms`` the outbox drains into one
        :class:`ViewDeltaBatch` per live host. An *empty* batch still
        ships: its watermark proves the host's shadow current, keeping an
        idle document serveable within the staleness bound. The loop
        survives crashes (heartbeat-loop idiom) and goes quiet whenever
        this site does not currently lead the document.
        """
        while True:
            yield (self.config.view_refresh_ms)
            if not self.alive:
                continue
            views = self.catalog.views_for(doc_name)
            if not views:  # pragma: no cover - views are never unregistered
                return
            rset = self.catalog.replica_set(doc_name)
            if rset.primary != self.site_id:
                # Not (or no longer) the primary: any queued entries are
                # from a fenced regime; the current primary pushes its own.
                self._view_outboxes.pop(doc_name, None)
                continue
            epoch = self.catalog.epoch(doc_name)
            entries = [
                e
                for e in self._view_outboxes.pop(doc_name, ())
                if e.epoch >= epoch
            ]
            watermark = self.log_for(doc_name).applied_lsn
            self._batch_seq += 1
            batch_id = self._batch_seq
            sent = 0
            for host in sorted({v.host for v in views}, key=str):
                if host != self.site_id and not self._peer_up(host):
                    continue
                self.network.send(
                    self.site_id,
                    host,
                    ViewDeltaBatch(
                        primary=self.site_id,
                        doc_name=doc_name,
                        batch_id=batch_id,
                        epoch=epoch,
                        watermark=watermark,
                        entries=list(entries),
                    ),
                )
                sent += 1
            if sent:
                self.stats.view_delta_batches += sent
                self.stats.view_deltas_coalesced += sent * len(entries)

    def _on_view_fetch_request(self, msg: ViewFetchRequest) -> None:
        self.env.process(self._handle_view_fetch_request(msg))

    def _handle_view_fetch_request(self, msg: ViewFetchRequest):
        """Serve a committed snapshot for a view host's (re)materialization.

        Same committed-state source as the catch-up path (the persisted
        stable copy); refused when this site does not currently lead the
        document or its log still has recording holes (a snapshot taken
        then could tear across a racing batch).
        """
        if not self.alive:
            return
        yield (self.costs.scheduler_dispatch_ms)
        if not self.alive:
            return
        doc_name = msg.doc_name
        ok = (
            self.catalog.has_document(doc_name)
            and self.catalog.replica_set(doc_name).primary == self.site_id
            and self.data_manager.is_loaded(doc_name)
        )
        log = self.log_for(doc_name) if ok else None
        if ok and log.applied_lsn != log.max_recorded_lsn:
            ok = False
        if not ok:
            resp = ViewFetchResponse(doc_name=doc_name, req_id=msg.req_id, ok=False)
        else:
            resp = ViewFetchResponse(
                doc_name=doc_name,
                req_id=msg.req_id,
                snapshot=serialize_document(self.data_manager.backend.load(doc_name)),
                snapshot_lsn=log.applied_lsn,
                snapshot_epoch=self.catalog.epoch(doc_name),
            )
        self.network.send(self.site_id, msg.requester, resp)

    # -- host side: maintenance and serving --------------------------------

    def _on_view_delta(self, msg: ViewDeltaBatch) -> None:
        self.env.process(self._handle_view_delta(msg))

    def _handle_view_delta(self, msg: ViewDeltaBatch):
        if not self.alive or self._views is None:
            return
        cost, need_fetch = self._views.ingest_delta(msg)
        yield (cost)
        if not self.alive:
            return
        if need_fetch:
            yield from self._view_fetch(msg.doc_name)

    def _on_view_fetch_response(self, msg: ViewFetchResponse) -> None:
        waiter = self._view_fetch_waiters.pop(msg.req_id, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(msg)

    def _view_fetch(self, doc_name: str):
        """(Re)materialize one hosted shadow from the current primary.

        Serialized per document (one fetch in flight); a refusal or
        timeout simply leaves the shadow unhydrated — the next delta that
        needs hydration retries, and reads fall back meanwhile. A host
        that leads the document itself materializes locally.
        """
        mgr = self._views
        if mgr is None:
            return
        state = mgr.states.get(doc_name)
        if state is None or state.fetching:
            return
        state.fetching = True
        try:
            if not self.catalog.has_document(doc_name):
                return
            primary = self.catalog.replica_set(doc_name).primary
            if primary == self.site_id:
                if not self.data_manager.is_loaded(doc_name):
                    return
                log = self.log_for(doc_name)
                if log.applied_lsn != log.max_recorded_lsn:
                    return  # racing batches in flight; retry later
                snapshot = serialize_document(
                    self.data_manager.backend.load(doc_name)
                )
                cost = mgr.install_snapshot(
                    doc_name, snapshot, log.applied_lsn,
                    self.catalog.epoch(doc_name),
                )
                yield (cost)
                return
            if not self._peer_up(primary):
                return
            self._view_fetch_seq += 1
            req_id = self._view_fetch_seq
            waiter = self.env.event()
            self._view_fetch_waiters[req_id] = waiter
            self.network.send(
                self.site_id,
                primary,
                ViewFetchRequest(
                    doc_name=doc_name, requester=self.site_id, req_id=req_id
                ),
            )
            timeout_ev = self.env.timeout(self.config.catchup_timeout_ms, value=None)
            fired = yield self.env.any_of([waiter, timeout_ev])
            self._view_fetch_waiters.pop(req_id, None)
            if not self.alive:
                return
            resp = fired.get(waiter)
            if resp is None or not resp.ok:
                return
            cost = mgr.install_snapshot(
                doc_name, resp.snapshot, resp.snapshot_lsn, resp.snapshot_epoch
            )
            yield (cost)
        finally:
            state.fetching = False

    def _on_view_read_request(self, msg: ViewReadRequest) -> None:
        self.env.process(self._handle_view_read(msg))

    def _handle_view_read(self, msg: ViewReadRequest):
        """Serve one routed read from the local shadow — no locks, no tx.

        The refusal reasons (``no-view`` / ``epoch-fenced`` / ``stale``)
        all make the coordinator fall back; only a hydrated, same-epoch,
        within-bound shadow answers.
        """
        if not self.alive:
            return
        if self._views is None:
            ok, reason, size, staleness, lsn, cost = False, "no-view", 0, 0.0, 0, 0.0
        else:
            ok, reason, size, staleness, lsn, cost = self._views.serve(
                msg.op, msg.epoch, msg.bound_ms
            )
        tr = self.tracer
        serve_start = self.env.now if tr is not None else 0.0
        yield (self.costs.scheduler_dispatch_ms + cost)
        if not self.alive:
            return
        if tr is not None:
            tr.add(
                "view_serve", "view", self.site_id, tr.live_parent(msg.span),
                serve_start, self.env.now,
                {"doc": msg.op.doc_name, "ok": "1" if ok else "0"},
            )
        self.network.send(
            self.site_id,
            msg.coordinator,
            ViewReadResult(
                tid=msg.tid,
                read_id=msg.read_id,
                site=self.site_id,
                ok=ok,
                reason=reason,
                result_size=size,
                staleness_ms=staleness,
                lsn=lsn,
            ),
        )

    # -- coordinator side: routing -----------------------------------------

    def _on_view_read_result(self, msg: ViewReadResult) -> None:
        entry = self._view_reads.get(msg.read_id)
        if entry is not None:
            waiter, _host = entry
            if not waiter.triggered:
                waiter.succeed(msg)

    def _try_view_read(self, rec: CoordinatorRecord, op: Operation, bound_ms: float):
        """Try to answer a read-only query from a registered view host.

        One bounded round per covering live host, in registration order.
        True on success — the answer came entirely from the view host,
        which never joins ``sites_involved`` (zero lock-table operations,
        zero 2PC participation for this read). False when every candidate
        refused or timed out: the caller falls back to the locked path.
        """
        tr = self.tracer
        if tr is None:
            return (yield from self._try_view_read_inner(rec, op, bound_ms))
        sid = tr.begin(
            "view_read", "view", self.site_id, rec.op_span, self.env.now,
            {"doc": op.doc_name},
        )
        saved = rec.op_span
        rec.op_span = sid
        try:
            return (yield from self._try_view_read_inner(rec, op, bound_ms))
        finally:
            tr.end(sid, self.env.now)
            rec.op_span = saved

    def _try_view_read_inner(self, rec: CoordinatorRecord, op: Operation,
                             bound_ms: float):
        epoch = self.catalog.epoch(op.doc_name)
        tried: set = set()
        for view in self.catalog.views_for(op.doc_name):
            host = view.host
            if host in tried:  # per-doc shadow: same answer as before
                continue
            if not view.covers(op.doc_name, op.payload):
                continue
            tried.add(host)
            if not self._peer_up(host):
                continue
            self._view_read_seq += 1
            read_id = self._view_read_seq
            waiter = self.env.event()
            self._view_reads[read_id] = (waiter, host)
            tr = self.tracer
            delay = self.network.send(
                self.site_id,
                host,
                ViewReadRequest(
                    tid=rec.tid,
                    coordinator=self.site_id,
                    op=op,
                    read_id=read_id,
                    epoch=epoch,
                    bound_ms=bound_ms,
                    span=rec.op_span,
                ),
            )
            if tr is not None:
                tr.add_flight("send", "net", self.site_id, rec.op_span,
                       self.env.now, self.env.now + delay,
                       {"dst": str(host)})
            timeout_ev = self.env.timeout(self.config.catchup_timeout_ms, value=None)
            fired = yield self.env.any_of([waiter, timeout_ev])
            self._view_reads.pop(read_id, None)
            self._check_alive()
            if rec.abort_requested:
                raise _AbortTx(rec.abort_reason or "abort-ordered")
            resp = fired.get(waiter)
            if resp is not None and resp.ok:
                return True
        return False
