"""A DTX instance: Listener + TransactionManager (Scheduler, LockManager) +
DataManager, at one site.

The architecture follows Fig. 1 of the paper:

* the **Listener** process receives client requests and inter-scheduler
  messages from the site's network inbox and dispatches them;
* the **Scheduler** role is split between (a) one coordinator coroutine per
  locally submitted transaction (Algorithm 1, plus commit/abort procedures,
  Algorithms 5–6) and (b) a participant loop executing remote operations in
  arrival order (Algorithm 2);
* the **LockManager** holds the protocol's lock table plus the site's
  wait-for graph and implements Algorithm 3;
* the **DataManager** bridges the in-memory documents and the storage
  backend.

All CPU work is charged to the simulated clock through the cost model in
:class:`repro.config.CostConfig`; all remote interaction flows through
:class:`repro.sim.network.Network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

from ..config import SystemConfig
from ..deadlock.wfg import WaitForGraph
from ..distribution.replication import ReplicationPolicy
from ..errors import ReproError, UpdateError
from ..locking.manager import LockManager
from ..locking.table import LockTable
from ..protocols.base import ConcurrencyProtocol
from ..sim.environment import Environment
from ..sim.network import Network
from ..sim.queues import Store
from ..sim.rng import substream
from ..storage.base import StorageBackend
from ..storage.datamanager import DataManager
from ..update.applier import apply_update
from ..xml.model import Document
from ..xpath.evaluator import EvalStats, evaluate
from .context import CoordinatorRecord, OpEntry, SiteTxContext, _AbortTx
from .messages import (
    AbortAck,
    AbortOrder,
    AbortRequest,
    ClientRequest,
    CommitAck,
    CommitRequest,
    FailNotice,
    RemoteOpRequest,
    RemoteOpResult,
    ReplicaSyncAck,
    ReplicaSyncRequest,
    TxOutcome,
    UndoOpAck,
    UndoOpRequest,
    WakeNotice,
    WfgRequest,
    WfgResponse,
)
from .transaction import Operation, OpKind, Transaction, TxId, TxState


@dataclass
class LocalResult:
    """Outcome of executing one operation against this site's lock manager."""

    acquired: bool
    executed: bool = False
    deadlock: bool = False
    failed: bool = False
    result_size: int = 0
    cost_ms: float = 0.0


@dataclass
class SiteStats:
    ops_executed: int = 0
    ops_blocked: int = 0
    local_deadlocks: int = 0
    remote_ops_served: int = 0
    commits: int = 0
    aborts: int = 0
    fails: int = 0
    wake_notices_sent: int = 0
    undo_ops: int = 0
    coordinated: int = 0
    peak_lock_count: int = 0
    replica_syncs_served: int = 0  # ReplicaSyncRequests applied at this site
    reads_routed: int = 0  # queries this coordinator routed to one replica


class DTXSite:
    def __init__(
        self,
        env: Environment,
        network: Network,
        site_id: Hashable,
        protocol: ConcurrencyProtocol,
        backend: StorageBackend,
        catalog,
        config: SystemConfig,
        replication: Optional[ReplicationPolicy] = None,
    ):
        self.env = env
        self.network = network
        self.site_id = site_id
        self.protocol = protocol
        self.catalog = catalog
        self.config = config
        self.costs = config.costs
        self.replication = replication or ReplicationPolicy.from_config(config)
        self._route_rng = substream(config.seed, "route", str(site_id))

        self.inbox: Store = network.register(site_id)
        self.data_manager = DataManager(backend)
        self.wfg = WaitForGraph()
        self.lock_manager = LockManager(LockTable(protocol.matrix), self.wfg)

        self.tx_contexts: dict[TxId, SiteTxContext] = {}
        self.coordinators: dict[TxId, CoordinatorRecord] = {}
        self.finished: set[TxId] = set()
        self.waiters: dict[TxId, Hashable] = {}  # waiting tid -> coordinator site
        self.remote_ops: Store = Store(env)
        self._tx_seq = 0
        self.stats = SiteStats()
        self.detector = None  # attached by the cluster on one site

        # Fault-injection hooks for testing the abort/fail paths: tids (or
        # '*') whose commit/abort requests this site will refuse.
        self.refuse_commit: set = set()
        self.refuse_abort: set = set()

        env.process(self._listener())
        env.process(self._participant_loop())

    # ------------------------------------------------------------------
    # document loading
    # ------------------------------------------------------------------

    def host_document(self, doc: Document) -> None:
        """Install a document copy at this site (storage + memory + protocol)."""
        self.data_manager.install(doc)
        self.protocol.register_document(doc)

    def documents_hosted(self) -> list[str]:
        return self.data_manager.live_documents()

    # ------------------------------------------------------------------
    # client entry point
    # ------------------------------------------------------------------

    def submit(self, tx: Transaction, deliver: Callable[[TxOutcome], None]) -> None:
        """Accept a transaction from a locally connected client."""
        self.inbox.put(ClientRequest(transaction=tx))
        tx.stats.submitted_ts = self.env.now
        tx._deliver = deliver  # stashed until the coordinator record exists

    # ------------------------------------------------------------------
    # listener (Fig. 1: receives requests and inter-scheduler messages)
    # ------------------------------------------------------------------

    def _listener(self):
        while True:
            msg = yield self.inbox.get()
            if isinstance(msg, ClientRequest):
                self.env.process(self._run_transaction(msg.transaction))
            elif isinstance(msg, RemoteOpRequest):
                self.remote_ops.put(msg)
            elif isinstance(msg, RemoteOpResult):
                self._on_op_result(msg)
            elif isinstance(msg, UndoOpRequest):
                self.env.process(self._handle_undo_request(msg))
            elif isinstance(msg, ReplicaSyncRequest):
                self.env.process(self._handle_replica_sync(msg))
            elif isinstance(msg, CommitRequest):
                self.env.process(self._handle_commit_request(msg))
            elif isinstance(msg, AbortRequest):
                self.env.process(self._handle_abort_request(msg))
            elif isinstance(msg, (UndoOpAck, ReplicaSyncAck, CommitAck, AbortAck)):
                self._on_ack(msg)
            elif isinstance(msg, FailNotice):
                self._handle_fail_notice(msg)
            elif isinstance(msg, WakeNotice):
                self._wake_coordinator(msg.tid)
            elif isinstance(msg, WfgRequest):
                self.network.send(
                    self.site_id, msg.requester,
                    WfgResponse(site=self.site_id, edges=self.wfg.snapshot()),
                )
            elif isinstance(msg, WfgResponse):
                if self.detector is not None:
                    self.detector.on_response(msg)
            elif isinstance(msg, AbortOrder):
                self._order_abort(msg.tid, msg.reason)
            else:  # pragma: no cover - defensive
                raise ReproError(f"site {self.site_id}: unknown message {msg!r}")

    # ------------------------------------------------------------------
    # operation execution against the local lock manager (Algorithm 3 caller)
    # ------------------------------------------------------------------

    def _execute_operation(self, tid: TxId, coordinator: Hashable, op: Operation) -> LocalResult:
        ctx = self.tx_contexts.get(tid)
        if ctx is None:
            ctx = self.tx_contexts[tid] = SiteTxContext(tid=tid, coordinator=coordinator)
        costs = self.costs
        doc = self.data_manager.document(op.doc_name)

        if op.kind is OpKind.QUERY:
            spec = self.protocol.lock_spec_for_query(op.doc_name, op.payload)
        else:
            spec = self.protocol.lock_spec_for_update(op.doc_name, op.payload)
        outcome = self.lock_manager.process_operation(tid, spec)
        cost = (
            spec.nodes_visited * costs.node_visit_ms
            + (outcome.lock_ops + spec.transient_ops) * costs.lock_op_ms
        )
        self.stats.peak_lock_count = max(
            self.stats.peak_lock_count, self.lock_manager.table.lock_count()
        )

        if not outcome.granted:
            self.stats.ops_blocked += 1
            if outcome.deadlock:
                self.stats.local_deadlocks += 1
            # Register the coordinator for a wake notice on the next release.
            self.waiters[tid] = coordinator
            return LocalResult(
                acquired=False, deadlock=outcome.deadlock, cost_ms=cost
            )

        entry = OpEntry(doc_name=op.doc_name, lock_pairs=outcome.new_pairs)
        eval_stats = EvalStats()
        try:
            if op.kind is OpKind.QUERY:
                result = evaluate(op.payload, doc, eval_stats)
                entry.executed = True
                size = 96 * len(result)
                cost += eval_stats.nodes_visited * costs.node_visit_ms
                self.tx_contexts[tid].op_entries[op.index] = entry
                self.stats.ops_executed += 1
                return LocalResult(
                    acquired=True, executed=True, result_size=size, cost_ms=cost
                )
            undo_before = len(ctx.undo)
            changes = apply_update(op.payload, doc, ctx.undo, eval_stats)
            self.protocol.after_apply(op.doc_name, changes)
            entry.undo_count = len(ctx.undo) - undo_before
            entry.changes = changes
            entry.executed = True
            cost += (
                eval_stats.nodes_visited * costs.node_visit_ms
                + max(1, len(changes)) * costs.update_apply_ms
            )
            ctx.op_entries[op.index] = entry
            self.stats.ops_executed += 1
            return LocalResult(acquired=True, executed=True, cost_ms=cost)
        except UpdateError:
            # Locks are held (released at abort); the data effect failed.
            ctx.op_entries[op.index] = entry
            return LocalResult(acquired=True, executed=False, failed=True, cost_ms=cost)

    def _undo_operation(self, tid: TxId, op_index: int) -> float:
        """Back out one operation's data effects and its locks."""
        ctx = self.tx_contexts.get(tid)
        if ctx is None or op_index not in ctx.op_entries:
            return 0.0
        entry = ctx.op_entries.pop(op_index)
        cost = 0.0
        if entry.undo_count:
            ctx.undo.rollback_last(entry.undo_count)
            self.protocol.after_undo(entry.doc_name, entry.changes)
            cost += entry.undo_count * self.costs.update_apply_ms
        for key, mode in reversed(entry.lock_pairs):
            self.lock_manager.table.release_one(key, tid, mode)
        cost += len(entry.lock_pairs) * self.costs.lock_op_ms
        self.stats.undo_ops += 1
        # Deliberately NO wake notification here: waiters are woken only when
        # a transaction *ends* (paper §2.2: "those that entered wait mode
        # waiting for the locks of the one that committed, start executing
        # again"). Waking on partial-operation undo makes two crosswise
        # writers ping-pong (win locally, fail remotely, undo, wake each
        # other) — a livelock the end-of-transaction rule avoids; the
        # detector resolves the resulting wait cycle instead.
        return cost

    # ------------------------------------------------------------------
    # transaction end at this site (participant side of Algorithms 5 and 6)
    # ------------------------------------------------------------------

    def _commit_at_site(self, tid: TxId) -> float:
        """Persist effects and release locks. Returns the simulated cost."""
        ctx = self.tx_contexts.pop(tid, None)
        cost = 0.0
        if ctx is not None:
            persisted = 0
            for name in ctx.touched_doc_names():
                persisted += self.data_manager.persist(name)
            cost += (persisted / 1024.0) * self.costs.persist_per_kb_ms
            ctx.undo.clear()
        _, lock_ops = self.lock_manager.release_transaction(tid)
        cost += lock_ops * self.costs.lock_op_ms
        self.finished.add(tid)
        self.waiters.pop(tid, None)
        self._notify_lock_release()
        return cost

    def _abort_at_site(self, tid: TxId) -> float:
        """Undo all effects of ``tid`` at this site and release its locks."""
        ctx = self.tx_contexts.pop(tid, None)
        cost = 0.0
        if ctx is not None:
            for op_index in sorted(ctx.op_entries, reverse=True):
                entry = ctx.op_entries[op_index]
                if entry.undo_count:
                    ctx.undo.rollback_last(entry.undo_count)
                    self.protocol.after_undo(entry.doc_name, entry.changes)
                    cost += entry.undo_count * self.costs.update_apply_ms
        _, lock_ops = self.lock_manager.release_transaction(tid)
        cost += lock_ops * self.costs.lock_op_ms
        self.finished.add(tid)
        self.waiters.pop(tid, None)
        self._notify_lock_release()
        return cost

    def _fail_at_site(self, tid: TxId, persist: bool = False) -> None:
        """Transaction failed: drop state without undoing (paper: the
        application is alerted; recovery is future work). ``persist``
        write-backs the kept effects first (post-sync failures must leave
        primary and secondaries durably identical)."""
        ctx = self.tx_contexts.pop(tid, None)
        if persist and ctx is not None:
            for name in ctx.touched_doc_names():
                self.data_manager.persist(name)
        self.lock_manager.release_transaction(tid)
        self.finished.add(tid)
        self.waiters.pop(tid, None)
        self.stats.fails += 1
        self._notify_lock_release()

    # ------------------------------------------------------------------
    # wake management
    # ------------------------------------------------------------------

    def _notify_lock_release(self) -> None:
        """Wake every transaction waiting at this site.

        Paper §2.2: "When a transaction commits, those that entered wait mode
        waiting for the locks of the one that committed, start executing
        again." Waiters re-register if they block again, so spurious wakes
        are safe.
        """
        for tid, coordinator in list(self.waiters.items()):
            del self.waiters[tid]
            if coordinator == self.site_id:
                self._wake_coordinator(tid)
            else:
                self.stats.wake_notices_sent += 1
                self.network.send(
                    self.site_id, coordinator, WakeNotice(tid=tid, site=self.site_id)
                )

    def _wake_coordinator(self, tid: TxId) -> None:
        rec = self.coordinators.get(tid)
        if rec is None:
            return
        rec.wake_pending = True
        if rec.wake_event is not None and not rec.wake_event.triggered:
            rec.wake_event.succeed("wake")

    def _order_abort(self, tid: TxId, reason: str) -> None:
        """Deadlock detector chose this coordinator's transaction as victim."""
        rec = self.coordinators.get(tid)
        if rec is None or rec.tx.done:
            return
        rec.abort_requested = True
        rec.abort_reason = reason
        self._wake_coordinator(tid)

    # ------------------------------------------------------------------
    # participant loop (Algorithm 2)
    # ------------------------------------------------------------------

    def _participant_loop(self):
        while True:
            req: RemoteOpRequest = yield self.remote_ops.get()
            yield self.env.timeout(self.costs.scheduler_dispatch_ms)
            if req.tid in self.finished:
                continue  # transaction ended while the request was queued
            result = self._execute_operation(req.tid, req.coordinator, req.op)
            self.stats.remote_ops_served += 1
            if result.cost_ms:
                yield self.env.timeout(result.cost_ms)
            self.network.send(
                self.site_id,
                req.coordinator,
                RemoteOpResult(
                    tid=req.tid,
                    site=self.site_id,
                    op_index=req.op.index,
                    attempt=req.attempt,
                    acquired=result.acquired,
                    executed=result.executed,
                    deadlock=result.deadlock,
                    failed=result.failed,
                    result_size=result.result_size,
                ),
            )

    def _handle_undo_request(self, msg: UndoOpRequest):
        cost = self._undo_operation(msg.tid, msg.op_index)
        if cost:
            yield self.env.timeout(cost)
        else:
            yield self.env.timeout(0)
        self.network.send(
            self.site_id, msg.coordinator,
            UndoOpAck(tid=msg.tid, site=self.site_id, op_index=msg.op_index, attempt=msg.attempt),
        )

    def _handle_replica_sync(self, msg: ReplicaSyncRequest):
        """Apply a committed transaction's updates to this secondary replica.

        No locks are taken and no undo is recorded: the data is already
        committed at the primary, whose still-held locks order conflicting
        sync streams. All operations are applied before any simulated time
        passes, so a sync is atomic with respect to concurrent local reads.
        """
        cost = self.costs.scheduler_dispatch_ms
        touched: list[str] = []
        for op in msg.ops:
            doc = self.data_manager.document(op.doc_name)
            eval_stats = EvalStats()
            try:
                changes = apply_update(op.payload, doc, None, eval_stats)
            except UpdateError as exc:  # pragma: no cover - replica divergence
                raise ReproError(
                    f"site {self.site_id}: replica sync of {msg.tid} failed "
                    f"on {op.doc_name!r}: {exc}"
                ) from exc
            self.protocol.after_apply(op.doc_name, changes)
            cost += (
                eval_stats.nodes_visited * self.costs.node_visit_ms
                + max(1, len(changes)) * self.costs.update_apply_ms
            )
            if op.doc_name not in touched:
                touched.append(op.doc_name)
        persisted = sum(self.data_manager.persist(name) for name in touched)
        cost += (persisted / 1024.0) * self.costs.persist_per_kb_ms
        self.stats.replica_syncs_served += 1
        yield self.env.timeout(cost)
        self.network.send(
            self.site_id, msg.coordinator, ReplicaSyncAck(tid=msg.tid, site=self.site_id)
        )

    def _handle_commit_request(self, msg: CommitRequest):
        if "*" in self.refuse_commit or msg.tid in self.refuse_commit:
            yield self.env.timeout(0)
            self.network.send(
                self.site_id, msg.coordinator, CommitAck(tid=msg.tid, site=self.site_id, ok=False)
            )
            return
        cost = self._commit_at_site(msg.tid)
        yield self.env.timeout(cost)
        self.network.send(
            self.site_id, msg.coordinator, CommitAck(tid=msg.tid, site=self.site_id, ok=True)
        )

    def _handle_abort_request(self, msg: AbortRequest):
        if "*" in self.refuse_abort or msg.tid in self.refuse_abort:
            yield self.env.timeout(0)
            self.network.send(
                self.site_id, msg.coordinator, AbortAck(tid=msg.tid, site=self.site_id, ok=False)
            )
            return
        cost = self._abort_at_site(msg.tid)
        yield self.env.timeout(cost)
        self.network.send(
            self.site_id, msg.coordinator, AbortAck(tid=msg.tid, site=self.site_id, ok=True)
        )

    def _handle_fail_notice(self, msg: FailNotice) -> None:
        self._fail_at_site(msg.tid, persist=msg.persist)

    # ------------------------------------------------------------------
    # coordinator response/ack plumbing
    # ------------------------------------------------------------------

    def _on_op_result(self, msg: RemoteOpResult) -> None:
        rec = self.coordinators.get(msg.tid)
        if rec is None or msg.attempt != rec.attempt:
            return  # stale reply from a superseded attempt
        rec.responses[msg.site] = msg
        if (
            rec.response_event is not None
            and not rec.response_event.triggered
            and set(rec.responses) >= rec.expected
        ):
            rec.response_event.succeed(dict(rec.responses))

    def _on_ack(self, msg) -> None:
        rec = self.coordinators.get(msg.tid)
        if rec is None:
            return
        expected_phase = {
            UndoOpAck: "undo",
            ReplicaSyncAck: "sync",
            CommitAck: "commit",
            AbortAck: "abort",
        }[type(msg)]
        if rec.phase != expected_phase:
            return
        rec.acks[msg.site] = msg
        if (
            rec.ack_event is not None
            and not rec.ack_event.triggered
            and set(rec.acks) >= rec.ack_expected
        ):
            rec.ack_event.succeed(dict(rec.acks))

    def _collect_acks(self, rec: CoordinatorRecord, phase: str, sites: list) -> None:
        rec.phase = phase
        rec.ack_expected = set(sites)
        rec.acks = {}
        rec.ack_event = self.env.event()

    # ------------------------------------------------------------------
    # coordinator (Algorithm 1 + commit/abort procedures, Algorithms 5-6)
    # ------------------------------------------------------------------

    def _run_transaction(self, tx: Transaction):
        self._tx_seq += 1
        tid = TxId(site=self.site_id, seq=self._tx_seq, start_ts=self.env.now)
        tx.tid = tid
        tx.state = TxState.ACTIVE
        tx.stats.started_ts = self.env.now
        deliver = getattr(tx, "_deliver", lambda outcome: None)
        rec = CoordinatorRecord(tx=tx, tid=tid, deliver=deliver)
        self.coordinators[tid] = rec
        self.stats.coordinated += 1

        status, reason = "committed", ""
        try:
            for op in tx.operations:
                yield from self._run_operation(rec, op)
            tx.state = TxState.COMMITTING
            committed = yield from self._commit_transaction(rec)
            if not committed:
                raise _AbortTx("commit-refused")
            tx.state = TxState.COMMITTED
            self.stats.commits += 1
        except _AbortTx as abort:
            reason = abort.reason
            tx.state = TxState.ABORTING
            tx.abort_reason = reason
            aborted_ok = yield from self._abort_transaction(rec)
            if aborted_ok:
                tx.state = TxState.ABORTED
                status = "aborted"
                self.stats.aborts += 1
            else:
                tx.state = TxState.FAILED
                status = "failed"
        finally:
            self.coordinators.pop(tid, None)
            self.finished.add(tid)
        tx.stats.finished_ts = self.env.now
        deliver(
            TxOutcome(
                tid=tid,
                status=status,
                reason=reason,
                submitted_ts=tx.stats.submitted_ts,
                finished_ts=self.env.now,
            )
        )

    def _run_operation(self, rec: CoordinatorRecord, op: Operation):
        tx = rec.tx
        while True:
            if rec.abort_requested:
                raise _AbortTx(rec.abort_reason or "abort-ordered")
            rset = self.catalog.replica_set(op.doc_name)
            if op.kind is OpKind.QUERY:
                sites = self.replication.route_read(
                    rset,
                    origin=self.site_id,
                    rng=self._route_rng,
                    wrote_before=op.doc_name in rec.written_docs,
                )
            else:
                sites = self.replication.route_write(rset)
            tx.sites_involved.update(sites)
            yield self.env.timeout(self.costs.scheduler_dispatch_ms)

            # Ship the operation to every routed site (all replicas under
            # the paper's regime; one read replica / the primary under
            # primary-copy ROWA). The coordinator's own copy is served
            # through the same participant path, which keeps replicas
            # byte-identical.
            rec.attempt += 1
            rec.expected = set(sites)
            rec.responses = {}
            rec.response_event = self.env.event()
            for site in sites:
                self.network.send(
                    self.site_id,
                    site,
                    RemoteOpRequest(tid=rec.tid, coordinator=self.site_id, op=op, attempt=rec.attempt),
                )
            results = yield rec.response_event
            rec.response_event = None
            tx.stats.op_attempts += 1

            acquired_all = all(r.acquired for r in results.values())
            any_failed = any(r.failed for r in results.values())
            any_deadlock = any(r.deadlock for r in results.values())

            if acquired_all and not any_failed:
                op.executed = True
                if op.kind is OpKind.UPDATE:
                    rec.written_docs.add(op.doc_name)
                elif len(sites) < rset.degree:
                    self.stats.reads_routed += 1  # once per routed query
                return

            # Back out sites where the operation did execute (Alg. 1 l. 16).
            executed_sites = [r.site for r in results.values() if r.executed]
            if executed_sites:
                self._collect_acks(rec, "undo", executed_sites)
                for site in executed_sites:
                    self.network.send(
                        self.site_id,
                        site,
                        UndoOpRequest(
                            tid=rec.tid, coordinator=self.site_id,
                            op_index=op.index, attempt=rec.attempt,
                        ),
                    )
                yield rec.ack_event
                rec.phase = ""

            if any_failed:
                raise _AbortTx("operation-failed")
            if any_deadlock:
                raise _AbortTx("local-deadlock")

            # Wait mode (Alg. 1 l. 9 / l. 17), then retry the operation.
            tx.state = TxState.WAITING
            tx.stats.waits += 1
            yield from self._wait_for_wake(rec)
            tx.state = TxState.ACTIVE

    def _wait_for_wake(self, rec: CoordinatorRecord):
        if rec.wake_pending or rec.abort_requested:
            rec.wake_pending = False
            return
        rec.wake_event = self.env.event()
        waits = [rec.wake_event]
        timeout_ev = None
        if self.config.lock_wait_timeout_ms > 0:
            timeout_ev = self.env.timeout(self.config.lock_wait_timeout_ms, value="timeout")
            waits.append(timeout_ev)
        fired = yield self.env.any_of(waits)
        rec.wake_event = None
        rec.wake_pending = False
        if timeout_ev is not None and timeout_ev in fired and not rec.abort_requested:
            raise _AbortTx("lock-wait-timeout")

    def _sync_replicas(self, rec: CoordinatorRecord):
        """Primary-copy ROWA: push executed updates to every secondary.

        Runs at the top of the commit procedure, while the primary's locks
        are still held — conflicting writers therefore sync in lock-grant
        order and secondaries apply transactions in commit order. The
        commit (and with it the client's outcome and the lock release)
        proceeds only after every secondary acknowledged.
        """
        per_site: dict = {}
        for op in rec.tx.operations:
            if op.kind is OpKind.UPDATE and op.executed:
                for site in self.replication.sync_targets(
                    self.catalog.replica_set(op.doc_name)
                ):
                    per_site.setdefault(site, []).append(op)
        if not per_site:
            return
        self._collect_acks(rec, "sync", list(per_site))
        for site, ops in per_site.items():
            self.network.send(
                self.site_id,
                site,
                ReplicaSyncRequest(tid=rec.tid, coordinator=self.site_id, ops=list(ops)),
            )
        yield rec.ack_event
        rec.phase = ""
        rec.synced = True

    def _commit_transaction(self, rec: CoordinatorRecord):
        """Algorithm 5. Returns True on commit, False to fall into abort."""
        if self.replication.is_primary_copy:
            yield from self._sync_replicas(rec)
        others = [s for s in rec.tx.sites_involved if s != self.site_id]
        if others:
            self._collect_acks(rec, "commit", others)
            for site in others:
                self.network.send(
                    self.site_id, site, CommitRequest(tid=rec.tid, coordinator=self.site_id)
                )
            acks = yield rec.ack_event
            rec.phase = ""
            if not all(a.ok for a in acks.values()):
                return False
        cost = self._commit_at_site(rec.tid)
        if cost:
            yield self.env.timeout(cost)
        return True

    def _abort_transaction(self, rec: CoordinatorRecord):
        """Algorithm 6. Returns True when the abort executed everywhere;
        False means the transaction *failed* (fail notices were sent)."""
        others = [s for s in rec.tx.sites_involved if s != self.site_id]
        if rec.synced:
            # The commit-time sync already applied the updates durably at
            # every secondary, and there is no replica-wide undo: undoing at
            # the primary alone would diverge the replicas. Keep the effects
            # everywhere and fail the transaction instead (the paper's fail
            # semantics: state is kept, the application is alerted). Every
            # involved site persists its kept effects so the primary — which
            # may be a remote participant — stays durably identical to the
            # secondaries that persisted during the sync.
            for site in others:
                self.network.send(
                    self.site_id, site, FailNotice(tid=rec.tid, persist=True)
                )
            self._fail_at_site(rec.tid, persist=True)
            return False
        if others:
            self._collect_acks(rec, "abort", others)
            for site in others:
                self.network.send(
                    self.site_id, site, AbortRequest(tid=rec.tid, coordinator=self.site_id)
                )
            acks = yield rec.ack_event
            rec.phase = ""
            if not all(a.ok for a in acks.values()):
                for site in others:
                    self.network.send(self.site_id, site, FailNotice(tid=rec.tid))
                self._fail_at_site(rec.tid)
                return False
        cost = self._abort_at_site(rec.tid)
        if cost:
            yield self.env.timeout(cost)
        return True
