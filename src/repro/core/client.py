"""Client sessions (the DTXTester role).

A client connects to the DTX instance at its site, submits its transactions
sequentially, records response times and — like client c2 in the paper's
§2.4 scenario — decides whether to resubmit or discard aborted transactions
(``config.max_restarts``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..config import SystemConfig
from ..sim.rng import substream
from .messages import TxOutcome
from .site import DTXSite
from .transaction import Transaction


@dataclass
class ClientTxRecord:
    client_id: Hashable
    label: str
    status: str  # 'committed' | 'aborted' | 'failed'
    reason: str
    submitted_ts: float
    finished_ts: float
    restarts: int
    is_update: bool

    @property
    def response_ms(self) -> float:
        return self.finished_ts - self.submitted_ts


class Client:
    def __init__(
        self,
        client_id: Hashable,
        site: DTXSite,
        transactions: list[Transaction],
        config: SystemConfig,
    ):
        self.client_id = client_id
        self.site = site
        self.env = site.env
        self.config = config
        self.transactions = list(transactions)
        for tx in self.transactions:
            tx.client_id = client_id
        self.records: list[ClientTxRecord] = []
        self._rng = substream(config.seed, "client", str(client_id))
        self.process = self.env.process(self._run())

    @property
    def done(self):
        return self.process

    def _think(self):
        if self.config.client_think_ms > 0:
            delay = self._rng.expovariate(1.0 / self.config.client_think_ms)
            yield self.env.timeout(delay)
        else:
            yield self.env.timeout(0)

    def _run(self):
        for tx in self.transactions:
            attempt = tx
            first_submit = self.env.now
            while True:
                outcome_ev = self.env.event()
                self.site.submit(attempt, deliver=lambda o, ev=outcome_ev: ev.succeed(o))
                outcome: TxOutcome = yield outcome_ev
                # Only *aborted* transactions are resubmitted: an abort is
                # a clean undo, so the retry cannot double-apply anything.
                # A *failed* transaction is final — failure means the
                # effects may have been kept (and replicated) at some
                # sites, per the paper's fail semantics ("the application
                # is alerted"); blindly resubmitting it would commit the
                # same logical write twice. The reconciliation is the
                # application's, not the driver's.
                if outcome.status != "aborted" or (
                    attempt.stats.restarts >= self.config.max_restarts
                ):
                    self.records.append(
                        ClientTxRecord(
                            client_id=self.client_id,
                            label=attempt.label,
                            status=outcome.status,
                            reason=outcome.reason,
                            submitted_ts=first_submit,
                            finished_ts=self.env.now,
                            restarts=attempt.stats.restarts,
                            is_update=attempt.is_update_transaction,
                        )
                    )
                    break
                yield from self._think()
                attempt = attempt.reset_for_restart()
            yield from self._think()
        return self.records
