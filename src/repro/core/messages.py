"""Messages exchanged between DTX instances.

The communication infrastructure added to XDGL for distribution (paper
modification (i)): remote operation execution, distributed commit/abort/fail,
wait-for-graph collection for deadlock detection, and wake notices when locks
are released.

Messages carry live Python objects (this is an in-process simulation); each
class reports a realistic ``size_bytes`` so the network model charges
plausible transfer times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from .transaction import Operation, TxId

_HEADER_BYTES = 48  # message envelope: ids, types, routing


@dataclass
class RemoteOpRequest:
    """Coordinator -> participant: execute one operation (Alg. 1 l. 13)."""

    tid: TxId
    coordinator: Hashable
    op: Operation
    attempt: int  # retry counter; stale replies are dropped by attempt

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.op.payload_size()


@dataclass
class RemoteOpResult:
    """Participant -> coordinator: outcome of a remote operation (Alg. 2 l. 13)."""

    tid: TxId
    site: Hashable
    op_index: int
    attempt: int
    acquired: bool  # locks obtained?
    executed: bool  # data effect applied?
    deadlock: bool  # local wait-for cycle closed at the participant
    failed: bool  # execution error
    result_size: int = 0  # bytes of query answer shipped back

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 16 + self.result_size


@dataclass
class UndoOpRequest:
    """Coordinator -> participant: back out one executed operation

    (Alg. 1 l. 16: "undoes the actions on all sites where the operation was
    carried out")."""

    tid: TxId
    coordinator: Hashable
    op_index: int
    attempt: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8


@dataclass
class UndoOpAck:
    tid: TxId
    site: Hashable
    op_index: int
    attempt: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8


@dataclass
class CommitRequest:
    """Coordinator -> participant (Alg. 5 l. 4)."""

    tid: TxId
    coordinator: Hashable

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass
class CommitAck:
    tid: TxId
    site: Hashable
    ok: bool

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 1


@dataclass
class AbortRequest:
    """Coordinator -> participant (Alg. 6 l. 4)."""

    tid: TxId
    coordinator: Hashable

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass
class AbortAck:
    tid: TxId
    site: Hashable
    ok: bool

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 1


@dataclass
class ReplicaSyncRequest:
    """Coordinator -> secondary replica: apply these committed updates.

    Sent during commit under primary-copy ROWA, *before* the primary's
    locks are released — the primary's lock table therefore orders the
    sync streams of conflicting writers, and replicas cannot diverge.
    ``ops`` preserves transaction order.
    """

    tid: TxId
    coordinator: Hashable
    ops: list = field(default_factory=list)  # executed update Operations

    def size_bytes(self) -> int:
        return _HEADER_BYTES + sum(op.payload_size() for op in self.ops)


@dataclass
class ReplicaSyncAck:
    tid: TxId
    site: Hashable

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass
class FailNotice:
    """Coordinator -> all involved sites: transaction failed (Alg. 6 l. 7).

    ``persist`` is set when the failure happened *after* the replica sync:
    the receiving site must write its (kept) effects through to storage so
    primary and secondaries stay durably identical.
    """

    tid: TxId
    persist: bool = False

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 1


@dataclass
class WakeNotice:
    """Participant -> coordinator: locks were released, retry waiting tx."""

    tid: TxId
    site: Hashable

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass
class WfgRequest:
    """Detector -> every site: send me your wait-for graph (Alg. 4 l. 4)."""

    requester: Hashable

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass
class WfgResponse:
    site: Hashable
    edges: list = field(default_factory=list)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 24 * len(self.edges)


@dataclass
class AbortOrder:
    """Detector -> victim's coordinator site: roll back this transaction

    (Alg. 4 l. 7-8: "the most recently started transaction is rolled back")."""

    tid: TxId
    reason: str = "distributed-deadlock"

    def size_bytes(self) -> int:
        return _HEADER_BYTES + len(self.reason)


@dataclass
class ClientRequest:
    """Client -> local DTX Listener: run this transaction."""

    transaction: Any  # Transaction (typed loosely to avoid import cycles)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 96 * len(self.transaction.operations)


@dataclass
class TxOutcome:
    """Listener -> client: final status of a submitted transaction."""

    tid: TxId
    status: str  # 'committed' | 'aborted' | 'failed'
    reason: str = ""
    submitted_ts: float = 0.0
    finished_ts: float = 0.0

    def size_bytes(self) -> int:
        return _HEADER_BYTES + len(self.reason)

    @property
    def committed(self) -> bool:
        return self.status == "committed"
