"""Messages exchanged between DTX instances.

The communication infrastructure added to XDGL for distribution (paper
modification (i)): remote operation execution, distributed commit/abort/fail,
wait-for-graph collection for deadlock detection, and wake notices when locks
are released.

Messages carry live Python objects (this is an in-process simulation); each
class reports a realistic ``size_bytes`` so the network model charges
plausible transfer times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from .transaction import Operation, TxId

_HEADER_BYTES = 48  # message envelope: ids, types, routing


@dataclass(slots=True)
class RemoteOpRequest:
    """Coordinator -> participant: execute one operation (Alg. 1 l. 13).

    ``incarnation`` is the coordinator's restart counter: a participant
    refuses to execute work queued by a coordinator that has since crashed
    (or crashed and restarted) — such a transaction would never be
    committed or aborted by anyone, leaking its locks and effects.
    """

    tid: TxId
    coordinator: Hashable
    op: Operation
    attempt: int  # retry counter; stale replies are dropped by attempt
    incarnation: int = 0
    # Parent span id (repro.obs, config.tracing): bookkeeping, not modeled
    # wire payload — excluded from size_bytes so traced and untraced runs
    # charge identical network costs.
    span: int = 0

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.op.payload_size()


@dataclass(slots=True)
class RemoteOpResult:
    """Participant -> coordinator: outcome of a remote operation (Alg. 2 l. 13)."""

    tid: TxId
    site: Hashable
    op_index: int
    attempt: int
    acquired: bool  # locks obtained?
    executed: bool  # data effect applied?
    deadlock: bool  # local wait-for cycle closed at the participant
    failed: bool  # execution error
    result_size: int = 0  # bytes of query answer shipped back
    # Follower-read fence (max_read_staleness_ms): the participant could
    # not bound its staleness against the primary and refused the read.
    # The coordinator re-routes to the primary instead of aborting.
    stale: bool = False

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 16 + self.result_size


@dataclass(slots=True)
class UndoOpRequest:
    """Coordinator -> participant: back out one executed operation

    (Alg. 1 l. 16: "undoes the actions on all sites where the operation was
    carried out")."""

    tid: TxId
    coordinator: Hashable
    op_index: int
    attempt: int
    span: int = 0  # parent span id (repro.obs); never counted in size_bytes

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8


@dataclass(slots=True)
class UndoOpAck:
    tid: TxId
    site: Hashable
    op_index: int
    attempt: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8


@dataclass(slots=True)
class CommitRequest:
    """Coordinator -> participant (Alg. 5 l. 4)."""

    tid: TxId
    coordinator: Hashable
    span: int = 0  # parent span id (repro.obs); never counted in size_bytes

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass(slots=True)
class CommitAck:
    tid: TxId
    site: Hashable
    ok: bool

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 1


@dataclass(slots=True)
class AbortRequest:
    """Coordinator -> participant (Alg. 6 l. 4)."""

    tid: TxId
    coordinator: Hashable
    span: int = 0  # parent span id (repro.obs); never counted in size_bytes

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass(slots=True)
class AbortAck:
    tid: TxId
    site: Hashable
    ok: bool

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 1


@dataclass(slots=True)
class ReplicaSyncRequest:
    """Apply one committed update batch to a replica of one document.

    Sent during commit under eager primary-copy ROWA (before the primary's
    locks are released — the primary's lock table therefore orders the sync
    streams of conflicting writers), or asynchronously from the primary's
    update log under lazy propagation. ``ops`` preserves transaction order.

    ``lsn``/``epoch`` make the apply idempotent and fenced: a replica skips
    entries at or below its applied LSN (replaying the same entry twice
    leaves one copy), pulls missing entries from the primary when it sees a
    gap, and refuses batches stamped with an epoch older than the current
    primary election (a deposed primary cannot overwrite the new timeline).
    ``log_only`` marks the copy sent to the document's *primary* when the
    coordinator is elsewhere: the primary executed the updates already and
    only needs the log entry recorded. A ``log_only`` request with
    ``lsn=0`` asks the primary to *assign* the LSN at record time (the
    quorum write path): allocation and recording are then atomic at the
    primary, so a request lost in flight can never orphan an allocated
    slot and punch a permanent hole into the primary's log.
    """

    tid: TxId
    coordinator: Hashable
    doc_name: str = ""
    lsn: int = 0
    epoch: int = 0
    log_only: bool = False
    ops: list = field(default_factory=list)  # executed update Operations
    span: int = 0  # parent span id (repro.obs); never counted in size_bytes

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 24 + sum(op.payload_size() for op in self.ops)


@dataclass(slots=True)
class ReplicaSyncAck:
    tid: TxId
    site: Hashable
    doc_name: str = ""
    ok: bool = True
    reason: str = ""  # 'stale-epoch' | 'refused' | 'gap' when not ok
    lsn: int = 0  # the recorded LSN (primary-assigned for lsn=0 requests)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 9 + len(self.reason)


@dataclass(slots=True)
class ReplicaSyncBatch:
    """Group commit: several transactions' sync batches in one message.

    When ``group_commit_window_ms > 0``, a coordinator's per-(primary,
    document) sync outbox coalesces the ReplicaSyncRequests of transactions
    that reach commit within the window into one of these: the receiving
    replica applies every entry (in LSN order, through the same idempotent
    LSN/epoch machinery as single syncs) and answers with a single
    :class:`ReplicaSyncBatchAck` — one network round shared by the whole
    batch instead of one per transaction. ``entries`` are
    :class:`~repro.distribution.replication.UpdateLogEntry` values;
    ``log_only`` marks the copy sent to the document's primary, which
    executed the updates itself and only records the log entries.
    """

    coordinator: Hashable
    doc_name: str
    batch_id: int
    log_only: bool = False
    entries: list = field(default_factory=list)  # UpdateLogEntry, LSN order
    span: int = 0  # parent span id (repro.obs); never counted in size_bytes

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 16 + sum(e.payload_size() for e in self.entries)


@dataclass(slots=True)
class ReplicaSyncBatchAck:
    """One ack for a whole ReplicaSyncBatch, with per-transaction results.

    ``results`` maps each entry's tid to ``(ok, reason)`` so the outbox can
    settle every waiting coordinator individually (one refused entry must
    not fail its batch-mates). ``assigned`` maps tids to primary-assigned
    LSNs when the batch carried ``lsn=0`` entries (quorum log-only path).
    """

    site: Hashable
    doc_name: str
    batch_id: int
    results: dict = field(default_factory=dict)  # tid -> (ok, reason)
    assigned: dict = field(default_factory=dict)  # tid -> recorded lsn

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8 + 9 * max(1, len(self.results)) + 8 * len(self.assigned)


@dataclass(slots=True)
class FailNotice:
    """Coordinator -> all involved sites: transaction failed (Alg. 6 l. 7).

    ``persist`` is set when the failure happened *after* the replica sync:
    the receiving site must write its (kept) effects through to storage so
    primary and secondaries stay durably identical.
    """

    tid: TxId
    persist: bool = False

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 1


@dataclass(slots=True)
class HeartbeatMessage:
    """Site -> every other site: I am alive (``failure_detector="lease"``).

    The carrier of all lease-mode membership facts. ``incarnation`` lets
    receivers fence work queued by earlier lives of the sender;
    ``watermarks`` maps each replicated document the sender hosts to its
    applied-LSN watermark (what log compaction at the primary is based
    on); ``views`` maps each such document to the sender's
    ``(epoch, primary)`` belief, so election outcomes keep disseminating
    after the one-shot :class:`PrimaryAnnounce` (a site partitioned away
    during the announce learns the new primary from the first heartbeat
    that reaches it).
    """

    sender: Hashable
    incarnation: int = 0
    seq: int = 0
    watermarks: dict = field(default_factory=dict)  # doc_name -> applied_lsn
    views: dict = field(default_factory=dict)  # doc_name -> (epoch, primary)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 12 + 16 * len(self.watermarks) + 20 * len(self.views)


@dataclass(slots=True)
class LogTipQuery:
    """Elector -> every replica holder: report your log tip for ``doc_name``.

    The first half of the over-the-wire election round
    (``failure_detector="lease"``). ``epoch`` is the elector's current
    view — candidates answering with a newer view reveal a finished
    election the elector missed.
    """

    doc_name: str
    elector: Hashable
    election_id: int
    epoch: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 16


@dataclass(slots=True)
class LogTipReport:
    """Candidate -> elector: my durable log tip for ``doc_name``.

    A report from the *suspected primary itself* is proof of life and
    cancels the election (false suspicion). ``epoch`` is the candidate's
    view epoch — a report carrying a newer epoch than the elector's view
    means the election already happened elsewhere.
    """

    doc_name: str
    site: Hashable
    election_id: int
    applied_lsn: int
    max_recorded_lsn: int
    epoch: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 28


@dataclass(slots=True)
class PrimaryAnnounce:
    """New primary -> every site: I lead ``doc_name`` under ``epoch`` now.

    The election result as a message. Receivers apply it to their own
    catalog view iff ``epoch`` is newer than what they believe (stale
    announces of older elections are ignored), then nudge their catch-up
    if they host the document — the new primary may hold batches the old
    one never shipped to them.
    """

    doc_name: str
    primary: Hashable
    epoch: int
    announcer: Hashable = None

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 16


@dataclass(slots=True)
class SiteDownNotice:
    """Failure monitor -> every live site: ``site`` crashed.

    The perfect-failure-detector assumption of the simulated LAN: crashes
    are detected and announced within one network hop. Receivers unstick
    coordinators waiting on the dead site, resolve orphaned transactions it
    coordinated, and wake local waiters (its locks died with it).
    """

    site: Hashable

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass(slots=True)
class SiteUpNotice:
    """Failure monitor -> every live site: ``site`` recovered.

    Receivers hosting a document whose *primary* just came back nudge
    their own catch-up for it — the recovery window may have swallowed
    their earlier attempts (anti-entropy closure for the event-driven
    healing triggers)."""

    site: Hashable

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass(slots=True)
class CatchUpRequest:
    """Recovering/lagging replica -> primary: send me what I missed.

    ``after_lsn``/``last_epoch`` describe the requester's log tip. The
    primary answers with the missing log entries, or with a full snapshot
    when the requester's tip is not on the primary's timeline (it applied
    writes of a deposed primary) or predates the primary's own log base.
    """

    doc_name: str
    requester: Hashable
    req_id: int
    after_lsn: int
    last_epoch: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 24


@dataclass(slots=True)
class CatchUpResponse:
    """Primary -> recovering replica: log suffix or full snapshot."""

    doc_name: str
    req_id: int
    entries: list = field(default_factory=list)  # UpdateLogEntry, LSN order
    snapshot: Any = None  # serialized document text, when diverged
    snapshot_lsn: int = 0
    snapshot_epoch: int = 0
    ok: bool = True  # False: requester should retry later (e.g. mid-election)

    def size_bytes(self) -> int:
        size = _HEADER_BYTES + 16 + sum(e.payload_size() for e in self.entries)
        if self.snapshot is not None:
            size += len(self.snapshot)
        return size


@dataclass(slots=True)
class VersionProbe:
    """Quorum-read coordinator -> replicas: report your version for
    ``doc_name`` (``replica_read_policy="quorum"``).

    The first half of a versioned quorum read. Probes fan to every live
    replica and the round settles on the first R reports (speculative
    fan-out: a slow or cut replica never gates the read). Probes are tiny
    (no lock is taken, no document is touched); the responses tell the
    coordinator which replica provably holds every committed write, so
    the query itself is then shipped to exactly one site.
    """

    doc_name: str
    reader: Hashable
    probe_id: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 8


@dataclass(slots=True)
class VersionReport:
    """Replica -> quorum-read coordinator: my durable log position.

    ``applied_lsn`` is the gapless watermark (every batch at or below it
    is applied); ``max_recorded_lsn`` the highest LSN recorded at all —
    the spread between them is racing commuting batches still in flight.
    ``epoch`` is the epoch at the responder's *log tip* — the timeline
    its data actually belongs to — so a deposed primary's fenced tail
    ranks below the re-elected timeline even after the deposed site has
    adopted the new election in its view.
    """

    doc_name: str
    site: Hashable
    probe_id: int
    applied_lsn: int
    max_recorded_lsn: int
    epoch: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 28


@dataclass(slots=True)
class ReadRepairNudge:
    """Quorum-read coordinator -> lagging replica: you are behind, heal.

    Sent to every probe responder whose version trailed the frontier the
    probe round established. The receiver verifies it is still behind
    ``(epoch, target_lsn)`` and pulls the gap from its primary through
    the ordinary catch-up path — read repair reuses anti-entropy, it does
    not ship data itself.
    """

    doc_name: str
    target_lsn: int
    epoch: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 16


@dataclass(slots=True)
class WakeNotice:
    """Participant -> coordinator: locks were released, retry waiting tx."""

    tid: TxId
    site: Hashable

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass(slots=True)
class WfgRequest:
    """Detector -> every site: send me your wait-for graph (Alg. 4 l. 4)."""

    requester: Hashable

    def size_bytes(self) -> int:
        return _HEADER_BYTES


@dataclass(slots=True)
class WfgResponse:
    site: Hashable
    edges: list = field(default_factory=list)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 24 * len(self.edges)


@dataclass(slots=True)
class AbortOrder:
    """Detector -> victim's coordinator site: roll back this transaction

    (Alg. 4 l. 7-8: "the most recently started transaction is rolled back")."""

    tid: TxId
    reason: str = "distributed-deadlock"

    def size_bytes(self) -> int:
        return _HEADER_BYTES + len(self.reason)


@dataclass(slots=True)
class ClientRequest:
    """Client -> local DTX Listener: run this transaction."""

    transaction: Any  # Transaction (typed loosely to avoid import cycles)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 96 * len(self.transaction.operations)


@dataclass(slots=True)
class TxOutcome:
    """Listener -> client: final status of a submitted transaction."""

    tid: TxId
    status: str  # 'committed' | 'aborted' | 'failed'
    reason: str = ""
    submitted_ts: float = 0.0
    finished_ts: float = 0.0

    def size_bytes(self) -> int:
        return _HEADER_BYTES + len(self.reason)

    @property
    def committed(self) -> bool:
        return self.status == "committed"


# ----------------------------------------------------------------------
# materialized views (repro.views)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class ViewDeltaBatch:
    """Primary -> view host: committed log entries since the last push.

    The view-host analogue of :class:`ReplicaSyncBatch`: entries are
    committed ``UpdateLogEntry`` objects in LSN order, ``watermark`` is the
    primary's gapless ``applied_lsn`` at push time. An *empty* batch is a
    freshness beacon — it proves the host's shadow still matches the
    primary up to ``watermark``, so idle documents stay serveable within
    the staleness bound. ``epoch`` fences pushes from deposed primaries.
    """

    primary: Hashable
    doc_name: str
    batch_id: int
    epoch: int
    watermark: int
    entries: list = field(default_factory=list)

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 24 + sum(e.payload_size() for e in self.entries)


@dataclass(slots=True)
class ViewFetchRequest:
    """View host -> primary: send me a committed snapshot to (re)materialize."""

    doc_name: str
    requester: Hashable
    req_id: int

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 16


@dataclass(slots=True)
class ViewFetchResponse:
    """Primary -> view host: serialized committed state + its log position.

    ``ok=False`` when the responder no longer leads the document (or holds
    recording gaps); the host simply retries on the next delta that needs
    hydration. ``snapshot_epoch`` is the primary's *current* epoch for the
    document, so subsequent same-epoch deltas apply without a spurious
    re-hydration cycle.
    """

    doc_name: str
    req_id: int
    snapshot: Any = None  # serialized document text
    snapshot_lsn: int = 0
    snapshot_epoch: int = 0
    ok: bool = True

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 16 + (len(self.snapshot) if self.snapshot else 0)


@dataclass(slots=True)
class ViewReadRequest:
    """Coordinator -> view host: answer this read-only query from the view.

    ``epoch`` is the coordinator's catalog epoch for the document — the
    host refuses on mismatch in either direction, so a fenced shadow never
    serves and a stale coordinator never trusts a newer timeline blindly.
    ``bound_ms`` is the transaction's effective staleness bound.
    """

    tid: TxId
    coordinator: Hashable
    op: Operation
    read_id: int
    epoch: int
    bound_ms: float
    span: int = 0  # parent span id (repro.obs); never counted in size_bytes

    def size_bytes(self) -> int:
        return _HEADER_BYTES + self.op.payload_size()


@dataclass(slots=True)
class ViewReadResult:
    """View host -> coordinator: the view answer (or a refusal).

    Any ``ok=False`` makes the coordinator fall back to the locked path;
    ``reason`` distinguishes not-hydrated, epoch-fenced and stale refusals
    for the stats. ``staleness_ms`` is the shadow's age at serve time and
    ``lsn`` the committed-log prefix the answer observed.
    """

    tid: TxId
    read_id: int
    site: Hashable
    ok: bool
    reason: str = ""
    result_size: int = 0
    staleness_ms: float = 0.0
    lsn: int = 0

    def size_bytes(self) -> int:
        return _HEADER_BYTES + 24 + self.result_size + len(self.reason)


# ----------------------------------------------------------------------
# message pooling
# ----------------------------------------------------------------------

#: Poison value written into every field of a released message (debug mode):
#: any later read through a stale reference fails loudly instead of silently
#: observing a recycled message's new contents.
_POISON = object()


class MessagePool:
    """Explicit-recycle object pool for the highest-volume message types.

    ``RemoteOpRequest`` / ``RemoteOpResult`` dominate allocations (one pair
    per operation per participant per attempt); sites acquire them here and
    release them once fully consumed. Releasing is always optional — a
    message that escapes (dropped by the network, kept for reporting) is
    simply collected by the GC and the pool misses on a later acquire.

    ``debug=True`` poisons every slot on release and raises on double
    release, which is what the lifecycle property tests run under. One pool
    serves one cluster run (requests migrate coordinator → participant and
    results migrate back, so the recycle loop closes across sites) — never
    a global, so pooling cannot couple two runs.
    """

    __slots__ = ("debug", "max_free", "hits", "misses", "_free")

    def __init__(self, debug: bool = False, max_free: int = 1024):
        self.debug = debug
        self.max_free = max_free
        self.hits = 0
        self.misses = 0
        self._free: dict[type, list] = {}

    def acquire(self, cls: type, *args: Any, **kwargs: Any) -> Any:
        """A freshly-(re)initialised ``cls(*args, **kwargs)``."""
        free = self._free.get(cls)
        if free:
            msg = free.pop()
            msg.__init__(*args, **kwargs)
            self.hits += 1
            return msg
        self.misses += 1
        return cls(*args, **kwargs)

    def release(self, msg: Any) -> None:
        """Return ``msg`` to the pool; the caller must hold the last live
        reference (the pool may hand the object out again immediately)."""
        cls = msg.__class__
        free = self._free.get(cls)
        if free is None:
            free = self._free[cls] = []
        if self.debug:
            if any(getattr(msg, slot) is _POISON for slot in cls.__slots__):
                raise RuntimeError(f"double release of pooled {cls.__name__}")
            for slot in cls.__slots__:
                setattr(msg, slot, _POISON)
        if len(free) < self.max_free:
            free.append(msg)

    def free_count(self, cls: type) -> int:
        return len(self._free.get(cls, ()))
