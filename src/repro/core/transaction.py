"""Transactions and operations.

A transaction is an ordered list of operations, each targeting one document
by name (queries are XPath expressions, updates are the five XDGL update
operations). Operations execute strictly in order; an operation executes at
*every* site holding a copy of its target document.

Transaction ids order by start timestamp — the distributed deadlock victim
rule ("the most recent transaction involved in the circle is rolled back")
is literally ``max(cycle)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import total_ordering
from typing import Any, Hashable, Optional, Union

from ..update.operations import UPDATE_OP_TYPES, UpdateOperation
from ..xpath.ast import LocationPath
from ..xpath.parser import parse_xpath


@total_ordering
@dataclass(frozen=True)
class TxId:
    """Globally unique transaction id, ordered by start time."""

    site: Hashable
    seq: int
    start_ts: float

    def _key(self) -> tuple:
        return (self.start_ts, str(self.site), self.seq)

    def __lt__(self, other: "TxId") -> bool:
        return self._key() < other._key()

    def __str__(self) -> str:
        return f"t{self.seq}@{self.site}"


class OpKind(Enum):
    QUERY = "query"
    UPDATE = "update"


@dataclass
class Operation:
    """One step of a transaction, targeting one document."""

    doc_name: str
    kind: OpKind
    payload: Union[LocationPath, UpdateOperation]
    index: int = -1  # position within the transaction; set by Transaction
    executed: bool = False
    result: Any = None

    @classmethod
    def query(cls, doc_name: str, path: Union[str, LocationPath]) -> "Operation":
        if isinstance(path, str):
            path = parse_xpath(path)
        return cls(doc_name=doc_name, kind=OpKind.QUERY, payload=path)

    @classmethod
    def update(cls, doc_name: str, op: UpdateOperation) -> "Operation":
        if not isinstance(op, UPDATE_OP_TYPES):
            raise TypeError(f"not an update operation: {op!r}")
        return cls(doc_name=doc_name, kind=OpKind.UPDATE, payload=op)

    @property
    def is_update(self) -> bool:
        return self.kind is OpKind.UPDATE

    def payload_size(self) -> int:
        """Rough wire size of the operation (network cost model input)."""
        return 64 + len(str(self.payload))

    def __str__(self) -> str:
        return f"[{self.kind.value} {self.doc_name}: {self.payload}]"


class TxState(Enum):
    PENDING = "pending"  # submitted, not yet scheduled
    ACTIVE = "active"  # executing operations
    WAITING = "waiting"  # blocked on locks
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTING = "aborting"
    ABORTED = "aborted"
    FAILED = "failed"  # abort itself failed at some site

TERMINAL_STATES = frozenset({TxState.COMMITTED, TxState.ABORTED, TxState.FAILED})


@dataclass
class TxStats:
    submitted_ts: float = 0.0
    started_ts: float = 0.0
    finished_ts: float = 0.0
    waits: int = 0  # times the transaction entered wait mode
    op_attempts: int = 0
    restarts: int = 0  # client resubmissions

    @property
    def response_ms(self) -> float:
        return self.finished_ts - self.submitted_ts


@dataclass
class Transaction:
    """A client transaction: ordered operations plus lifecycle state."""

    operations: list[Operation]
    client_id: Hashable = None
    label: str = ""
    tid: Optional[TxId] = None
    state: TxState = TxState.PENDING
    sites_involved: set = field(default_factory=set)
    stats: TxStats = field(default_factory=TxStats)
    abort_reason: str = ""
    # Per-transaction quorum overrides (0 = inherit the cluster knobs).
    # Validated on submission against the same intersection laws as the
    # cluster-wide read_quorum_r/write_quorum_w (R + W > N, W > N/2); only
    # meaningful under the "quorum" read/write policies. A transaction can
    # thus buy stronger reads (larger R) or cheaper commits (smaller W,
    # within the laws) without reconfiguring the cluster.
    read_quorum_r: int = 0
    write_quorum_w: int = 0
    # Per-transaction materialized-view staleness bound in ms (0 = inherit
    # the cluster's view_staleness_ms). Only read-only transactions are
    # ever view-routed; a transaction can thus accept more staleness for a
    # cheaper lock-free read, or demand less, without reconfiguring the
    # cluster. Validated >= 0 on submission.
    view_staleness_ms: float = 0.0

    def __post_init__(self) -> None:
        if not self.operations:
            raise ValueError("a transaction needs at least one operation")
        for i, op in enumerate(self.operations):
            op.index = i

    @property
    def is_update_transaction(self) -> bool:
        return any(op.is_update for op in self.operations)

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def next_unexecuted(self) -> Optional[Operation]:
        for op in self.operations:
            if not op.executed:
                return op
        return None

    def reset_for_restart(self) -> "Transaction":
        """A fresh copy of this transaction for client resubmission."""
        ops = [
            Operation(doc_name=o.doc_name, kind=o.kind, payload=o.payload)
            for o in self.operations
        ]
        fresh = Transaction(
            operations=ops,
            client_id=self.client_id,
            label=self.label,
            read_quorum_r=self.read_quorum_r,
            write_quorum_w=self.write_quorum_w,
            view_staleness_ms=self.view_staleness_ms,
        )
        fresh.stats.restarts = self.stats.restarts + 1
        return fresh

    def __str__(self) -> str:
        name = self.label or (str(self.tid) if self.tid else "tx")
        return f"{name}({len(self.operations)} ops, {self.state.value})"
