"""Cluster assembly: sites + network + catalog + clients + detector.

The top-level convenience API of the reproduction. A typical use::

    from repro import DTXCluster, Operation, Transaction

    cluster = DTXCluster(protocol="xdgl")
    cluster.add_site("s1", [people_doc])
    cluster.add_site("s2", [people_doc, products_doc])
    cluster.add_client("c1", "s1", [Transaction([...])])
    result = cluster.run()

Each site gets its own protocol instance, storage backend, lock table and
wait-for graph; the deadlock detector runs on the first site added.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

from ..config import DEFAULT_CONFIG, SystemConfig
from ..distribution.allocation import Allocation
from ..distribution.catalog import Catalog, CatalogView
from ..distribution.replication import ReplicationPolicy
from ..errors import ConfigError
from ..obs import Tracer
from ..protocols import ConcurrencyProtocol, make_protocol
from ..sim.environment import Environment
from ..sim.network import Network
from ..storage.base import StorageBackend
from ..storage.memory import InMemoryStore
from ..xml.model import Document
from .client import Client
from .detector import DeadlockDetector
from .faults import FaultManager
from .results import RunResult
from .messages import MessagePool
from .site import DTXSite
from .transaction import Transaction


class DTXCluster:
    def __init__(
        self,
        protocol: str = "xdgl",
        config: Optional[SystemConfig] = None,
        env: Optional[Environment] = None,
        backend_factory: Optional[Callable[[], StorageBackend]] = None,
    ):
        self.config = config or DEFAULT_CONFIG
        self.config.validate()
        self.protocol_name = protocol
        self.env = env if env is not None else Environment()
        self.network = Network(self.env, self.config.network, seed=self.config.seed)
        self.catalog = Catalog()
        self.replication = ReplicationPolicy.from_config(self.config)
        self.sites: dict[Hashable, DTXSite] = {}
        self.clients: list[Client] = []
        self.detector: Optional[DeadlockDetector] = None
        self.faults = FaultManager(
            self.env,
            self.network,
            self.catalog,
            self.sites,
            detector=self.config.failure_detector,
        )
        self._backend_factory = backend_factory or InMemoryStore
        self._migration = None  # built lazily; absent from default schedules
        self._started = False
        # One message pool per cluster run: RemoteOpRequests migrate
        # coordinator -> participant and the results migrate back, so the
        # recycle loop only closes when all sites of a run share a pool.
        # Per-run (never global) so pooling cannot couple two runs.
        self.message_pool = MessagePool() if self.config.message_pool else None
        # One span recorder per cluster run (config.tracing): span ids
        # migrate between sites inside messages, so all sites of a run must
        # share the tracer — and, like the pool, it is per-run, never
        # global. ``None`` keeps every instrumentation point a single falsy
        # attribute check (the zero-allocation off path).
        self.tracer = Tracer() if self.config.tracing else None

    # -- construction ------------------------------------------------------

    def add_site(self, site_id: Hashable, documents: Sequence[Document] = ()) -> DTXSite:
        """Create a DTX instance at ``site_id`` hosting copies of ``documents``."""
        if self._started:
            raise ConfigError("cannot add sites after the cluster started")
        if site_id in self.sites:
            raise ConfigError(f"site {site_id!r} already exists")
        protocol: ConcurrencyProtocol = make_protocol(self.protocol_name)
        # Under the lease detector every site holds its *own* catalog view:
        # primary/epoch facts at that site advance only by PrimaryAnnounce
        # and heartbeat-carried views, never by another site's mutation.
        # The perfect detector keeps the shared object (the oracle).
        catalog = (
            CatalogView(self.catalog)
            if self.config.failure_detector == "lease"
            else self.catalog
        )
        site = DTXSite(
            env=self.env,
            network=self.network,
            site_id=site_id,
            protocol=protocol,
            backend=self._backend_factory(),
            catalog=catalog,
            config=self.config,
            replication=self.replication,
            pool=self.message_pool,
        )
        site.faults = self.faults
        site.tracer = self.tracer
        self.sites[site_id] = site
        for doc in documents:
            self.host_document(site_id, doc)
        return site

    def host_document(self, site_id: Hashable, doc: Document) -> None:
        """Place a copy of ``doc`` at ``site_id`` and update the catalog."""
        site = self.sites[site_id]
        site.host_document(doc.clone())
        if self.catalog.has_document(doc.name):
            existing = self.catalog.sites_for(doc.name)
            if site_id not in existing:
                self.catalog.add(doc.name, (*existing, site_id))
        else:
            self.catalog.add(doc.name, (site_id,))

    def replicate_document(self, doc: Document, site_ids: Sequence[Hashable]) -> None:
        """Place copies of ``doc`` at each of ``site_ids`` (first = primary).

        The primary election holds even when the document already had a
        placement (``host_document`` appends to it, so the pre-existing
        site would otherwise stay first).
        """
        for site_id in site_ids:
            self.host_document(site_id, doc)
        self.catalog.set_primary(doc.name, site_ids[0])

    @classmethod
    def from_allocation(
        cls,
        allocation: Allocation,
        protocol: str = "xdgl",
        config: Optional[SystemConfig] = None,
    ) -> "DTXCluster":
        """Build a cluster directly from an :class:`Allocation`."""
        cluster = cls(protocol=protocol, config=config)
        for site_id in sorted(allocation.site_documents, key=str):
            cluster.add_site(site_id)
        # Adopt the allocation's catalog wholesale (placement is authoritative).
        for site_id, docs in allocation.site_documents.items():
            for doc in docs:
                cluster.sites[site_id].host_document(doc.clone())
        for doc_name in allocation.catalog.all_documents():
            cluster.catalog.add(doc_name, allocation.catalog.sites_for(doc_name))
        return cluster

    def add_client(
        self, client_id: Hashable, site_id: Hashable, transactions: list[Transaction]
    ) -> Client:
        client = Client(
            client_id=client_id,
            site=self.sites[site_id],
            transactions=transactions,
            config=self.config,
        )
        self.clients.append(client)
        return client

    # -- execution -------------------------------------------------------------

    def start(self) -> None:
        """Arm the deadlock detector (first site added runs it)."""
        if self._started:
            return
        self._started = True
        if self.sites:
            first = next(iter(self.sites.values()))
            self.detector = DeadlockDetector(
                site=first, all_site_ids=list(self.sites), config=self.config
            )

    def run(
        self, until: Optional[float] = None, label: str = "", drain_ms: float = 5.0
    ) -> RunResult:
        """Run until every client finished (or until a time horizon).

        After the last client completes, the simulation runs ``drain_ms``
        longer so in-flight messages (fail notices, final acks, wake
        notices) are delivered before results are collected.
        """
        self.start()
        if self.clients:
            everyone = self.env.all_of([c.process for c in self.clients])
            if until is not None:
                self.env.run(until=until)
            else:
                self.env.run(until=everyone)
                if drain_ms > 0:
                    self.env.run(until=self.env.now + drain_ms)
        elif until is not None:
            self.env.run(until=until)
        return self.collect_results(label=label)

    def collect_results(self, label: str = "") -> RunResult:
        result = RunResult(
            duration_ms=self.env.now,
            protocol=self.protocol_name,
            label=label,
        )
        for client in self.clients:
            result.records.extend(client.records)
        result.site_stats = {sid: site.stats for sid, site in self.sites.items()}
        result.network_messages = self.network.stats.messages
        result.network_bytes = self.network.stats.bytes
        result.site_crashes = self.faults.stats.crashes
        result.site_recoveries = self.faults.stats.recoveries
        result.promotions = self.faults.stats.promotions
        if self.detector is not None:
            result.detector_sweeps = self.detector.stats.sweeps
            result.distributed_deadlocks = self.detector.stats.deadlocks_found
        if self.tracer is not None:
            # Clip spans left open by crashes/partitions to the run end so
            # exports and analysis see finite intervals.
            self.tracer.finish(self.env.now)
            result.spans = self.tracer.spans
        return result

    # -- online migration --------------------------------------------------

    @property
    def migration(self):
        """The cluster's :class:`MigrationManager`, built on first use.

        Lazy on purpose: constructing the manager requires a primary-copy
        write regime, and a cluster that never migrates must not carry the
        manager at all — default-config schedules stay bit-identical.
        """
        if self._migration is None:
            from ..distribution.migration import MigrationManager

            self._migration = MigrationManager(self)
        return self._migration

    def migrate_document(self, doc_name: str, targets: Sequence[Hashable], label: str = ""):
        """Start moving ``doc_name``'s replica set to ``targets`` (first =
        new primary) while traffic keeps flowing. Returns the
        :class:`Migration` record; its ``done`` event fires on completion."""
        return self.migration.migrate(doc_name, targets, label=label)

    def schedule_migration(
        self, doc_name: str, targets: Sequence[Hashable], at_ms: float, label: str = ""
    ) -> None:
        """Kick off a migration at simulated time ``at_ms`` (like
        ``schedule_crash``, driven through the kernel)."""
        if at_ms < self.env.now:
            raise ConfigError(f"cannot schedule a migration in the past ({at_ms})")
        self.migration  # fail fast now if the regime cannot migrate
        self.env.schedule_call(
            at_ms - self.env.now, self.migration.migrate, doc_name, tuple(targets), label
        )

    # -- materialized views ------------------------------------------------

    def register_view(
        self,
        name: str,
        pattern: str,
        doc_names: Sequence[str],
        host: Hashable,
    ):
        """Register a materialized XPath view and start maintaining it.

        ``host`` materializes a shadow of each document from a committed
        snapshot, then stays fresh from :class:`ViewDeltaBatch` pushes off
        each document's primary. Requires a primary-copy write regime with
        replication degree >= 2 for every document: view maintenance
        consumes the primary's committed update log, and unreplicated or
        write-all documents record no log entries to push. Returns the
        :class:`~repro.views.ViewDefinition`.
        """
        from ..views import ViewDefinition

        if host not in self.sites:
            raise ConfigError(f"view host {host!r} is not a site")
        if self.config.replica_write_policy == "all":
            raise ConfigError(
                "materialized views need a primary-copy write regime "
                "(replica_write_policy != 'all'): write-all documents record "
                "no update log to maintain the view from"
            )
        view = ViewDefinition.define(
            name=name, pattern=pattern, doc_names=doc_names, host=host
        )
        for doc_name in view.doc_names:
            if not self.catalog.has_document(doc_name):
                raise ConfigError(f"view {name!r} spans unplaced document {doc_name!r}")
            if self.catalog.replication_degree(doc_name) < 2:
                raise ConfigError(
                    f"view {name!r}: document {doc_name!r} is unreplicated; "
                    "its commits bypass the update log"
                )
        self.catalog.register_view(view)
        host_site = self.sites[host]
        for doc_name in view.doc_names:
            host_site.host_view(doc_name)
            # Arm the push loop at every replica-set member: any of them
            # may be (or become) the document's primary.
            for sid in self.catalog.sites_for(doc_name):
                self.sites[sid]._ensure_view_push(doc_name)
            host_site.hydrate_view(doc_name)
        return view

    # -- fault injection ---------------------------------------------------

    def crash_site(self, site_id: Hashable) -> None:
        """Fail-stop ``site_id`` now: volatile state is lost, the failure
        monitor promotes new primaries for the documents it led and
        notifies the survivors."""
        self.sites[site_id].crash()

    def recover_site(self, site_id: Hashable) -> None:
        """Restart ``site_id``: it reloads its persisted state, rejoins the
        network (as a secondary where it was deposed) and catches up from
        the current primaries' update logs."""
        self.sites[site_id].recover()

    def schedule_crash(
        self,
        site_id: Hashable,
        at_ms: float,
        recover_at_ms: Optional[float] = None,
    ) -> None:
        """Crash ``site_id`` at simulated time ``at_ms`` (and recover it at
        ``recover_at_ms``). Driven through the simulation kernel, so the
        fault fires even if no process at the site is runnable."""
        if at_ms < self.env.now:
            raise ConfigError(f"cannot schedule a crash in the past ({at_ms})")
        if recover_at_ms is not None and recover_at_ms <= at_ms:
            raise ConfigError("recover_at_ms must be after at_ms")
        self.env.schedule_call(at_ms - self.env.now, self.crash_site, site_id)
        if recover_at_ms is not None:
            self.env.schedule_call(
                recover_at_ms - self.env.now, self.recover_site, site_id
            )

    def partition_network(self, *groups) -> None:
        """Split the network now: sites in different groups cannot talk.

        Sites in no listed group form one implicit extra group. Every site
        stays alive — with ``failure_detector="lease"`` each side suspects
        the other once leases expire, and only a side holding a majority
        of a document's replicas can elect a new primary for it."""
        self.network.partition(*groups)

    def heal_network(self) -> None:
        """Reconnect all partition groups (in-flight cut messages stay lost)."""
        self.network.heal_partition()

    def schedule_partition(
        self,
        groups: Sequence[Sequence[Hashable]],
        at_ms: float,
        heal_at_ms: Optional[float] = None,
    ) -> None:
        """Partition the network at ``at_ms`` (and heal it at ``heal_at_ms``),
        driven through the simulation kernel like ``schedule_crash``."""
        if at_ms < self.env.now:
            raise ConfigError(f"cannot schedule a partition in the past ({at_ms})")
        if heal_at_ms is not None and heal_at_ms <= at_ms:
            raise ConfigError("heal_at_ms must be after at_ms")
        self.env.schedule_call(
            at_ms - self.env.now, self.partition_network, *[list(g) for g in groups]
        )
        if heal_at_ms is not None:
            self.env.schedule_call(heal_at_ms - self.env.now, self.heal_network)

    # -- inspection ----------------------------------------------------------------

    def site(self, site_id: Hashable) -> DTXSite:
        return self.sites[site_id]

    def document_at(self, site_id: Hashable, doc_name: str) -> Document:
        """The live in-memory document at a site (tests inspect replicas)."""
        return self.sites[site_id].data_manager.document(doc_name)
