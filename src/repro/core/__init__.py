"""DTX core: transactions, sites, coordinator/participant scheduling,
distributed commit/abort, deadlock detection, clients and cluster assembly."""

from .client import Client, ClientTxRecord
from .cluster import DTXCluster
from .detector import DeadlockDetector
from .faults import FaultManager
from .messages import TxOutcome
from .results import RunResult
from .site import DTXSite
from .transaction import Operation, OpKind, Transaction, TxId, TxState

__all__ = [
    "Client",
    "ClientTxRecord",
    "DTXCluster",
    "DTXSite",
    "DeadlockDetector",
    "FaultManager",
    "OpKind",
    "Operation",
    "RunResult",
    "Transaction",
    "TxId",
    "TxOutcome",
    "TxState",
]
