"""The XDGL update language: operations, applier, undo log, textual parser."""

from .applier import apply_update
from .language import parse_update
from .operations import (
    UPDATE_OP_TYPES,
    AppliedChange,
    ChangeOp,
    InsertOp,
    InsertPosition,
    RemoveOp,
    RenameOp,
    TransposeOp,
    UpdateOperation,
)
from .undo import UndoLog

__all__ = [
    "UPDATE_OP_TYPES",
    "AppliedChange",
    "ChangeOp",
    "InsertOp",
    "InsertPosition",
    "RemoveOp",
    "RenameOp",
    "TransposeOp",
    "UndoLog",
    "UpdateOperation",
    "apply_update",
    "parse_update",
]
