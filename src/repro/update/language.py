"""Textual form of the XDGL update language.

Statements::

    INSERT <product><id>13</id></product> INTO /products
    INSERT <entry/> BEFORE /list/entry[1]
    INSERT <entry/> AFTER /list/entry[2]
    REMOVE /products/product[id=14]
    RENAME /people/person[id=4]/name TO fullname
    CHANGE /products/product[id=13]/price TO "10.30"
    TRANSPOSE /archive/item[1] INTO /active

Keywords are case-insensitive; paths use the library's XPath subset. The
parser exists so workload files, examples and tests can express transactions
as plain text, the way the paper's Fig. 3 describes them.
"""

from __future__ import annotations

import re

from ..errors import UpdateSyntaxError
from ..xml.parser import parse_fragment_prefix
from .operations import (
    ChangeOp,
    InsertOp,
    InsertPosition,
    RemoveOp,
    RenameOp,
    TransposeOp,
    UpdateOperation,
)

_POSITIONS = {
    "INTO": InsertPosition.INTO,
    "BEFORE": InsertPosition.BEFORE,
    "AFTER": InsertPosition.AFTER,
}

_TO_SPLIT = re.compile(r"\s+TO\s+", re.IGNORECASE)
_INTO_SPLIT = re.compile(r"\s+INTO\s+", re.IGNORECASE)


def parse_update(statement: str) -> UpdateOperation:
    """Parse one update statement into an operation object."""
    text = statement.strip()
    if not text:
        raise UpdateSyntaxError("empty update statement")
    keyword = text.split(None, 1)[0].upper()
    rest = text[len(keyword):].strip()
    if keyword == "INSERT":
        return _parse_insert(rest)
    if keyword == "REMOVE":
        if not rest:
            raise UpdateSyntaxError("REMOVE requires a target path")
        return RemoveOp(rest)
    if keyword == "RENAME":
        return _parse_rename(rest)
    if keyword == "CHANGE":
        return _parse_change(rest)
    if keyword == "TRANSPOSE":
        return _parse_transpose(rest)
    raise UpdateSyntaxError(f"unknown update keyword {keyword!r}")


def _parse_insert(rest: str) -> InsertOp:
    try:
        fragment, end = parse_fragment_prefix(rest)
    except Exception as exc:
        raise UpdateSyntaxError(f"INSERT: bad XML fragment: {exc}") from exc
    tail = rest[end:].strip()
    parts = tail.split(None, 1)
    if len(parts) != 2:
        raise UpdateSyntaxError("INSERT requires 'INTO|BEFORE|AFTER <path>' after the fragment")
    pos_kw, path = parts[0].upper(), parts[1].strip()
    if pos_kw not in _POSITIONS:
        raise UpdateSyntaxError(f"INSERT: expected INTO/BEFORE/AFTER, got {parts[0]!r}")
    return InsertOp(fragment, path, _POSITIONS[pos_kw])


def _parse_rename(rest: str) -> RenameOp:
    pieces = _TO_SPLIT.split(rest)
    if len(pieces) != 2:
        raise UpdateSyntaxError("RENAME requires '<path> TO <name>'")
    path, name = pieces[0].strip(), pieces[1].strip()
    if not path or not name:
        raise UpdateSyntaxError("RENAME requires '<path> TO <name>'")
    return RenameOp(path, name)


def _parse_change(rest: str) -> ChangeOp:
    pieces = _TO_SPLIT.split(rest, maxsplit=1)
    if len(pieces) != 2:
        raise UpdateSyntaxError("CHANGE requires '<path> TO <value>'")
    path, value = pieces[0].strip(), pieces[1].strip()
    if not path or not value:
        raise UpdateSyntaxError("CHANGE requires '<path> TO <value>'")
    if value[0] in "\"'" and len(value) >= 2 and value[-1] == value[0]:
        value = value[1:-1]
    return ChangeOp(path, value)


def _parse_transpose(rest: str) -> TransposeOp:
    pieces = _INTO_SPLIT.split(rest)
    if len(pieces) != 2:
        raise UpdateSyntaxError("TRANSPOSE requires '<source-path> INTO <dest-path>'")
    src, dst = pieces[0].strip(), pieces[1].strip()
    if not src or not dst:
        raise UpdateSyntaxError("TRANSPOSE requires '<source-path> INTO <dest-path>'")
    return TransposeOp(src, dst)
