"""Application of update operations to documents, with undo recording.

``apply_update`` evaluates the operation's target path(s), mutates the tree,
appends inverse entries to the transaction's :class:`~repro.update.undo.UndoLog`
and returns the list of :class:`~repro.update.operations.AppliedChange`
records that structural summaries (DataGuide) use to stay in sync.
"""

from __future__ import annotations

from typing import Optional

from ..errors import UpdateError
from ..xml.model import Document, Element, _clone_subtree
from ..xpath.evaluator import EvalStats, evaluate
from .operations import (
    AppliedChange,
    ChangeOp,
    InsertOp,
    InsertPosition,
    RemoveOp,
    RenameOp,
    TransposeOp,
    UpdateOperation,
)
from .undo import (
    ChangeUndo,
    InsertUndo,
    RemoveUndo,
    RenameUndo,
    TransposeUndo,
    UndoLog,
)


def apply_update(
    op: UpdateOperation,
    doc: Document,
    undo: Optional[UndoLog] = None,
    stats: Optional[EvalStats] = None,
) -> list[AppliedChange]:
    """Apply ``op`` to ``doc``; return the concrete changes (may be empty).

    An operation whose target path selects nothing is a no-op (it "affected
    zero nodes"), mirroring how an SQL UPDATE with an empty WHERE result
    behaves; callers that require a match should check the result.
    """
    stats = stats if stats is not None else EvalStats()
    if isinstance(op, InsertOp):
        return _apply_insert(op, doc, undo, stats)
    if isinstance(op, RemoveOp):
        return _apply_remove(op, doc, undo, stats)
    if isinstance(op, RenameOp):
        return _apply_rename(op, doc, undo, stats)
    if isinstance(op, ChangeOp):
        return _apply_change(op, doc, undo, stats)
    if isinstance(op, TransposeOp):
        return _apply_transpose(op, doc, undo, stats)
    raise UpdateError(f"unknown update operation {op!r}")


def _subtree_paths(node: Element) -> list[tuple[str, ...]]:
    base = node.label_path()
    paths = [base]
    for d in node.descendants():
        # label_path() walks to the root; build relative to `base` instead to
        # avoid re-walking ancestors for every descendant.
        rel: list[str] = [d.tag]
        cur = d.parent
        while cur is not None and cur is not node:
            rel.append(cur.tag)
            cur = cur.parent
        paths.append(base + tuple(reversed(rel)))
    return paths


def _apply_insert(
    op: InsertOp, doc: Document, undo: Optional[UndoLog], stats: EvalStats
) -> list[AppliedChange]:
    targets = evaluate(op.target, doc, stats)
    changes: list[AppliedChange] = []
    for target in targets:
        copy = _clone_subtree(op.fragment)
        if op.position is InsertPosition.INTO:
            target.append(copy)
        else:
            parent = target.parent
            if parent is None:
                raise UpdateError(
                    f"cannot insert {op.position.name} the document root"
                )
            idx = parent.child_index(target)
            parent.insert(idx if op.position is InsertPosition.BEFORE else idx + 1, copy)
        if undo is not None:
            undo.record(doc, InsertUndo(copy))
        changes.append(
            AppliedChange(kind="insert", node=copy, new_label_paths=_subtree_paths(copy))
        )
    return changes


def _apply_remove(
    op: RemoveOp, doc: Document, undo: Optional[UndoLog], stats: EvalStats
) -> list[AppliedChange]:
    targets = evaluate(op.target, doc, stats)
    changes: list[AppliedChange] = []
    for target in targets:
        if target.parent is None:
            raise UpdateError("cannot remove the document root")
        if target.document is None:
            continue  # already removed as part of an ancestor's subtree
        old_paths = _subtree_paths(target)
        parent = target.parent
        index = parent.child_index(target)
        parent.remove(target)
        if undo is not None:
            undo.record(doc, RemoveUndo(target, parent, index))
        changes.append(AppliedChange(kind="remove", node=target, old_label_paths=old_paths))
    return changes


def _apply_rename(
    op: RenameOp, doc: Document, undo: Optional[UndoLog], stats: EvalStats
) -> list[AppliedChange]:
    from ..xml.model import _is_name

    if not _is_name(op.new_name):
        raise UpdateError(f"invalid element name {op.new_name!r}")
    targets = evaluate(op.target, doc, stats)
    changes: list[AppliedChange] = []
    for target in targets:
        old_paths = _subtree_paths(target)
        old_name = target.tag
        target.tag = op.new_name
        if undo is not None:
            undo.record(doc, RenameUndo(target, old_name))
        changes.append(
            AppliedChange(
                kind="rename",
                node=target,
                old_label_paths=old_paths,
                new_label_paths=_subtree_paths(target),
            )
        )
    return changes


def _apply_change(
    op: ChangeOp, doc: Document, undo: Optional[UndoLog], stats: EvalStats
) -> list[AppliedChange]:
    targets = evaluate(op.target, doc, stats)
    changes: list[AppliedChange] = []
    for target in targets:
        old = target.text
        target.text = op.new_value
        if undo is not None:
            undo.record(doc, ChangeUndo(target, old))
        changes.append(AppliedChange(kind="change", node=target))
    return changes


def _apply_transpose(
    op: TransposeOp, doc: Document, undo: Optional[UndoLog], stats: EvalStats
) -> list[AppliedChange]:
    sources = evaluate(op.source, doc, stats)
    destinations = evaluate(op.destination, doc, stats)
    if len(destinations) != 1:
        raise UpdateError(
            f"transpose destination must select exactly one node, got {len(destinations)}"
        )
    dest = destinations[0]
    changes: list[AppliedChange] = []
    for source in sources:
        if source.parent is None:
            raise UpdateError("cannot transpose the document root")
        if source is dest or any(a is source for a in dest.ancestors()):
            raise UpdateError("cannot transpose a node into its own subtree")
        if source.document is None:
            continue  # moved away already as part of an ancestor
        old_paths = _subtree_paths(source)
        old_parent = source.parent
        old_index = old_parent.child_index(source)
        old_parent.remove(source)
        dest.append(source)
        if undo is not None:
            undo.record(doc, TransposeUndo(source, old_parent, old_index))
        changes.append(
            AppliedChange(
                kind="transpose",
                node=source,
                old_label_paths=old_paths,
                new_label_paths=_subtree_paths(source),
            )
        )
    return changes
