"""Undo log for update operations.

DTX applies updates to the in-memory tree as soon as an operation's locks are
granted; aborting a transaction must "undo all its effects on the required
data" (paper §2). Every mutation records an inverse entry; rolling back
replays the inverses in reverse order, restoring the tree byte-for-byte
(including node identities — removed subtrees keep their node ids and regain
them when reattached).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..errors import UpdateError
from ..xml.model import Document, Element


@dataclass
class InsertUndo:
    """Inverse of an insert: detach the inserted subtree."""

    inserted: Element

    def rollback(self, doc: Document) -> None:
        if self.inserted.parent is None:
            raise UpdateError("cannot undo insert: node already detached")
        self.inserted.parent.remove(self.inserted)


@dataclass
class RemoveUndo:
    """Inverse of a remove: reattach the subtree at its original slot."""

    removed: Element
    parent: Element
    index: int

    def rollback(self, doc: Document) -> None:
        self.parent.insert(self.index, self.removed)


@dataclass
class RenameUndo:
    """Inverse of a rename: restore the old tag."""

    node: Element
    old_name: str

    def rollback(self, doc: Document) -> None:
        self.node.tag = self.old_name


@dataclass
class ChangeUndo:
    """Inverse of a change: restore the old text."""

    node: Element
    old_value: Union[str, None]

    def rollback(self, doc: Document) -> None:
        self.node.text = self.old_value


@dataclass
class TransposeUndo:
    """Inverse of a transpose: move the subtree back where it came from."""

    node: Element
    old_parent: Element
    old_index: int

    def rollback(self, doc: Document) -> None:
        if self.node.parent is not None:
            self.node.parent.remove(self.node)
        self.old_parent.insert(self.old_index, self.node)


UndoEntry = Union[InsertUndo, RemoveUndo, RenameUndo, ChangeUndo, TransposeUndo]


class UndoLog:
    """Ordered log of inverse entries for one transaction at one site."""

    def __init__(self) -> None:
        self._entries: list[tuple[Document, UndoEntry]] = []

    def record(self, doc: Document, entry: UndoEntry) -> None:
        self._entries.append((doc, entry))

    def __len__(self) -> int:
        return len(self._entries)

    def rollback(self) -> int:
        """Undo everything, newest first. Returns the number of entries undone."""
        count = 0
        while self._entries:
            doc, entry = self._entries.pop()
            entry.rollback(doc)
            count += 1
        return count

    def rollback_last(self, n: int) -> int:
        """Undo only the newest ``n`` entries (used to back out one operation)."""
        count = 0
        for _ in range(min(n, len(self._entries))):
            doc, entry = self._entries.pop()
            entry.rollback(doc)
            count += 1
        return count

    def clear(self) -> None:
        """Forget all entries (after a successful commit)."""
        self._entries.clear()

    @property
    def touched_documents(self) -> list[Document]:
        """Documents with at least one pending (un-committed) change."""
        seen: list[Document] = []
        for doc, _ in self._entries:
            if doc not in seen:
                seen.append(doc)
        return seen
