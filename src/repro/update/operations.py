"""The XDGL update language operations.

Paper §2: "In order to update data in XML documents an update language was
defined. This language has five types of update operations: insert, remove,
transpose, rename and change."

Each operation targets nodes selected by an XPath-subset expression. Insert
supports three placements — ``INTO`` (append as last child of the target),
``BEFORE``/``AFTER`` (as a sibling of the target) — which is what the SI/SA/SB
lock modes of XDGL exist for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Union

from ..errors import UpdateError
from ..xml.model import Element
from ..xml.parser import parse_fragment
from ..xml.serializer import serialize_element
from ..xpath.ast import LocationPath
from ..xpath.parser import parse_xpath


class InsertPosition(Enum):
    INTO = "into"  # last child of the target node
    BEFORE = "before"  # immediately preceding sibling of the target node
    AFTER = "after"  # immediately following sibling of the target node


def _as_path(path: Union[str, LocationPath]) -> LocationPath:
    return parse_xpath(path) if isinstance(path, str) else path


def _as_fragment(fragment: Union[str, Element]) -> Element:
    if isinstance(fragment, Element):
        if fragment.parent is not None or fragment.document is not None:
            raise UpdateError("insert fragment must be a detached element")
        return fragment
    return parse_fragment(fragment)


@dataclass
class InsertOp:
    """Insert a copy of ``fragment`` at each node selected by ``target``."""

    fragment: Element
    target: LocationPath
    position: InsertPosition = InsertPosition.INTO

    def __init__(
        self,
        fragment: Union[str, Element],
        target: Union[str, LocationPath],
        position: InsertPosition = InsertPosition.INTO,
    ):
        self.fragment = _as_fragment(fragment)
        self.target = _as_path(target)
        self.position = position

    def __str__(self) -> str:
        return (
            f"INSERT {serialize_element(self.fragment)} "
            f"{self.position.name} {self.target}"
        )


@dataclass
class RemoveOp:
    """Remove every subtree selected by ``target``."""

    target: LocationPath

    def __init__(self, target: Union[str, LocationPath]):
        self.target = _as_path(target)

    def __str__(self) -> str:
        return f"REMOVE {self.target}"


@dataclass
class RenameOp:
    """Change the tag of every node selected by ``target`` to ``new_name``."""

    target: LocationPath
    new_name: str

    def __init__(self, target: Union[str, LocationPath], new_name: str):
        self.target = _as_path(target)
        self.new_name = new_name

    def __str__(self) -> str:
        return f"RENAME {self.target} TO {self.new_name}"


@dataclass
class ChangeOp:
    """Replace the text content of every node selected by ``target``."""

    target: LocationPath
    new_value: str

    def __init__(self, target: Union[str, LocationPath], new_value: Union[str, float, int]):
        self.target = _as_path(target)
        self.new_value = str(new_value)

    def __str__(self) -> str:
        return f'CHANGE {self.target} TO "{self.new_value}"'


@dataclass
class TransposeOp:
    """Move the subtree selected by ``source`` under the ``destination`` node."""

    source: LocationPath
    destination: LocationPath

    def __init__(
        self, source: Union[str, LocationPath], destination: Union[str, LocationPath]
    ):
        self.source = _as_path(source)
        self.destination = _as_path(destination)

    def __str__(self) -> str:
        return f"TRANSPOSE {self.source} INTO {self.destination}"


UpdateOperation = Union[InsertOp, RemoveOp, RenameOp, ChangeOp, TransposeOp]

#: All concrete operation classes, for isinstance checks and registries.
UPDATE_OP_TYPES = (InsertOp, RemoveOp, RenameOp, ChangeOp, TransposeOp)


@dataclass
class AppliedChange:
    """One concrete tree mutation produced by applying an operation.

    The locking and DataGuide layers consume these records to keep the
    structural summaries in sync with the document.
    """

    kind: str  # 'insert' | 'remove' | 'rename' | 'change' | 'transpose'
    node: Element  # the affected (inserted / removed / renamed / ...) node
    old_label_paths: list[tuple[str, ...]] = field(default_factory=list)
    new_label_paths: list[tuple[str, ...]] = field(default_factory=list)
