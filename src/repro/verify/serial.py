"""Final-state serializability checking.

DTX claims global serializability (paper §2.2). For committed transactions,
a necessary condition is that the observed final database state equals the
state produced by *some* serial execution of those transactions. These
helpers replay committed transactions serially in every candidate order and
compare serialized document states — exhaustive and exact for the small
transaction sets used in property tests.

This is *final-state* serializability over writes: read results are not
checked (queries don't alter state), so it is a necessary, not sufficient,
condition — still strong enough to catch lost updates, dirty writes, broken
undo and replica divergence.
"""

from __future__ import annotations

from itertools import islice, permutations
from typing import Iterable, Optional, Sequence

from ..core.transaction import Transaction
from ..update.applier import apply_update
from ..xml.model import Document
from ..xml.serializer import serialize_document

State = dict[str, str]  # doc name -> serialized content


def snapshot(documents: Iterable[Document]) -> State:
    """Serialize a set of documents into a comparable state."""
    return {d.name: serialize_document(d) for d in documents}


def replay_serial(initial: dict[str, Document], txs: Sequence[Transaction]) -> State:
    """Apply the update operations of ``txs``, in order, to clones of
    ``initial``; return the resulting state."""
    clones = {name: doc.clone() for name, doc in initial.items()}
    for tx in txs:
        for op in tx.operations:
            if op.is_update and op.doc_name in clones:
                apply_update(op.payload, clones[op.doc_name])
    return {name: serialize_document(doc) for name, doc in clones.items()}


def find_equivalent_serial_order(
    initial: dict[str, Document],
    committed: Sequence[Transaction],
    observed: State,
    max_orders: int = 50_000,
) -> Optional[list[Transaction]]:
    """A serial order of ``committed`` reproducing ``observed``, or ``None``.

    Only the documents present in ``initial`` are compared (a site holding a
    subset of the database is checked against its subset). ``max_orders``
    caps the permutation search (8! = 40320 fits the default).
    """
    relevant = {name: text for name, text in observed.items() if name in initial}

    def matches(order: Sequence[Transaction]) -> bool:
        state = replay_serial(initial, order)
        return all(state[name] == text for name, text in relevant.items())

    for order in islice(permutations(committed), max_orders):
        if matches(order):
            return list(order)
    return None


def final_state_serializable(
    initial: dict[str, Document],
    committed: Sequence[Transaction],
    observed: State,
    max_orders: int = 50_000,
) -> bool:
    """True when some serial order of ``committed`` yields ``observed``."""
    return find_equivalent_serial_order(initial, committed, observed, max_orders) is not None
