"""Correctness verifiers usable by tests and downstream users."""

from .schedule_digest import ReferenceEnvironment, TraceRecorder, describe_item, trace_digest
from .serial import final_state_serializable, find_equivalent_serial_order, replay_serial

__all__ = [
    "ReferenceEnvironment",
    "TraceRecorder",
    "describe_item",
    "final_state_serializable",
    "find_equivalent_serial_order",
    "replay_serial",
    "trace_digest",
]
