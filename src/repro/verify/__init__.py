"""Correctness verifiers usable by tests and downstream users."""

from .serial import final_state_serializable, find_equivalent_serial_order, replay_serial

__all__ = [
    "final_state_serializable",
    "find_equivalent_serial_order",
    "replay_serial",
]
