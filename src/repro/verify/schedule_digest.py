"""Differential schedule-equivalence tooling for the event kernel.

The production :class:`~repro.sim.environment.Environment` dispatches from an
indexed bucket queue (a heap of distinct times plus per-time FIFO lists).
Its correctness claim — bucket FIFO order is exactly classic ``(time, seq)``
heap order — is *checked*, not assumed: this module keeps the classic kernel
alive as :class:`ReferenceEnvironment`, a drop-in environment whose queue is
the textbook one-entry-per-item heap with a monotonically increasing sequence
number as tie-break.

``tests/test_kernel_equivalence.py`` runs the same seeded DTX workloads on
both kernels with a :class:`TraceRecorder` attached and asserts the two
dispatch traces are equal event by event (and that the final serialized
states match). Any scheduler change that reorders same-tick items — however
subtly — fails that test before it can corrupt a benchmark digest.

The trace identifies each dispatched item *structurally* (callable qualnames,
event class, callback owners, payload types), never by ``id()`` or memory
address, so logically identical runs trace identically across kernels and
interpreter invocations.
"""

from __future__ import annotations

import hashlib
from heapq import heappop, heappush
from math import inf as _INF
from typing import Any, Callable, Optional

from ..errors import SimulationError
from ..sim.environment import Environment
from ..sim.events import Event

__all__ = [
    "ReferenceEnvironment",
    "TraceRecorder",
    "describe_item",
    "trace_digest",
]


def describe_item(item: Any) -> str:
    """A stable, address-free description of one queue item at dispatch time.

    Works for both queue item shapes: flat ``(fn, arg)`` call tuples and
    :class:`Event` objects (described with outcome and callback owners, so a
    tick resuming process A never aliases a tick resuming process B).
    """
    if item.__class__ is tuple:
        fn, arg = item
        name = getattr(fn, "__qualname__", None) or repr(fn)
        if name == "Network._deliver":
            src, dst, _inbox, payload = arg
            return f"call:{name}:{src!r}->{dst!r}:{payload.__class__.__name__}"
        return f"call:{name}"
    value = item._value
    if item._ok:
        outcome = f"ok:{value.__class__.__name__}"
    else:
        outcome = f"fail:{value.__class__.__name__}"
    owners = []
    for cb in item.callbacks or ():
        owner = getattr(cb, "__self__", None)
        if owner is None:
            owners.append(getattr(cb, "__qualname__", None) or repr(cb))
            continue
        desc = owner.__class__.__name__
        generator = getattr(owner, "_generator", None)
        if generator is not None:
            desc += ":" + getattr(generator, "__name__", "?")
        owners.append(desc)
    return f"{item.__class__.__name__}:{outcome}:[{','.join(owners)}]"


def trace_digest(entries: list[tuple[float, str]]) -> str:
    """SHA-256 over a dispatch trace (times + structural descriptions)."""
    h = hashlib.sha256()
    for t, desc in entries:
        h.update(f"{t!r} {desc}\n".encode())
    return h.hexdigest()


class TraceRecorder:
    """Records every dispatched queue item of an environment.

    Attaching a recorder flips the environment into its step-wise driver
    (same dispatch order as the fast drain loops, one item per step), and
    the tracer hook fires *before* the item's callbacks run — so the trace
    sees each item with its callback list still intact.
    """

    def __init__(self) -> None:
        self.entries: list[tuple[float, str]] = []

    def attach(self, env: Environment) -> "TraceRecorder":
        env._tracer = self._record
        return self

    def _record(self, t: float, item: Any) -> None:
        self.entries.append((t, describe_item(item)))

    def digest(self) -> str:
        return trace_digest(self.entries)


class ReferenceEnvironment(Environment):
    """The classic scheduling kernel: one heap entry per item, seq tie-break.

    Accepts the full environment interface (events, processes, flat timers,
    flat call scheduling, tracing), so a :class:`~repro.core.cluster.DTXCluster`
    built on it runs the unmodified production upper layers. Intentionally
    simple and obviously correct — it is the oracle, not the hot path.
    """

    #: Route flat-timer ticks through ``_schedule`` below — the production
    #: inline path writes into the bucket structures this kernel replaces.
    _FLAT_INLINE = False

    __slots__ = ("_heap", "_seq")

    def __init__(self, initial_time: float = 0.0):
        super().__init__(initial_time)
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0

    # -- scheduling (classic form) ---------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        self._seq += 1
        heappush(self._heap, (self._now + delay, self._seq, event))

    def _schedule_flat(self, delay: float, fn: Callable[[Any], None], arg: Any) -> None:
        self._seq += 1
        heappush(self._heap, (self._now + delay, self._seq, (fn, arg)))

    # -- execution -------------------------------------------------------

    def step(self) -> None:
        if not self._heap:
            raise SimulationError("step on an empty event queue")
        t, _seq, item = heappop(self._heap)
        self._now = t
        if self._tracer is not None:
            self._tracer(t, item)
        if item.__class__ is tuple:
            item[0](item[1])
            return
        callbacks = item.callbacks
        item.callbacks = None
        for callback in callbacks:
            callback(item)
        if not item._ok and not item._defused:
            raise item._value

    def peek(self) -> float:
        heap = self._heap
        return heap[0][0] if heap else _INF

    def run(self, until: Optional[Any] = None) -> Any:
        heap = self._heap
        if until is None:
            while heap:
                self.step()
            return None
        if isinstance(until, Event):
            while until.callbacks is not None:
                if not heap:
                    raise SimulationError(
                        "simulation ran out of events before the awaited event fired"
                    )
                self.step()
            if until._ok:
                return until._value
            until.defuse()
            raise until._value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"cannot run until {horizon} < now {self._now}")
        while heap and heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
