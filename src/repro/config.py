"""System configuration for DTX simulations.

All tunables of the reproduction live here: the simulated cost model (what a
lock-table operation, a node visit, a network hop or a persist costs in
simulated milliseconds), deadlock-detector cadence, and client behaviour.

The defaults are calibrated so that the *relative* results of the paper's
evaluation (Figs. 9-12) emerge from structural asymmetries between protocols
(XDGL touches O(depth) DataGuide nodes per operation, Node2PL touches
O(subtree) document nodes) rather than from per-protocol fudge factors: every
protocol is charged through the same knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from .errors import ConfigError


@dataclass(frozen=True)
class NetworkConfig:
    """Latency model for the simulated 100 Mbit/s switched LAN.

    A message of ``n`` bytes from one site to another costs
    ``latency_ms + (n / 1024) * per_kb_ms`` plus uniform jitter in
    ``[0, jitter_ms]`` drawn from the experiment RNG. Local (same-site)
    delivery costs ``local_ms``.
    """

    latency_ms: float = 0.25
    per_kb_ms: float = 0.08  # ~100 Mbit/s full duplex => ~12.5 KB/ms
    jitter_ms: float = 0.05
    local_ms: float = 0.01

    def validate(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigError(f"NetworkConfig.{f.name} must be >= 0")


@dataclass(frozen=True)
class CostConfig:
    """Per-action CPU cost model, in simulated milliseconds.

    ``lock_op_ms`` is the paper's "lock management overhead": it is charged
    for every lock-table check/insert/release, so protocols that take many
    locks (tree locking) pay proportionally more than protocols with a
    summarized structure (XDGL on the DataGuide).
    """

    lock_op_ms: float = 0.02
    node_visit_ms: float = 0.002  # per document/DataGuide node processed
    update_apply_ms: float = 0.05  # per update operation applied to a tree
    persist_per_kb_ms: float = 0.02  # DataManager -> storage write-back
    parse_per_kb_ms: float = 0.01  # storage -> in-memory representation
    scheduler_dispatch_ms: float = 0.01  # picking work from a queue
    wfg_merge_per_edge_ms: float = 0.005  # deadlock detector union cost

    def validate(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigError(f"CostConfig.{f.name} must be >= 0")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration of a DTX cluster simulation.

    Parameters
    ----------
    network, costs:
        Sub-models, see :class:`NetworkConfig` and :class:`CostConfig`.
    detector_interval_ms:
        Period of the distributed deadlock detector (Algorithm 4). The
        detector runs on the site with the lowest id, mirroring the paper's
        "a process ... periodically goes through all instances".
    detector_initial_delay_ms:
        Delay before the first detector sweep.
    client_think_ms:
        Mean think time between a client receiving a transaction result and
        submitting the next transaction (exponential).
    lock_wait_timeout_ms:
        Safety valve: a transaction waiting longer than this is aborted.
        ``0`` disables the timeout (the paper relies purely on detection).
    seed:
        Master seed; every stochastic component derives its stream from it,
        making whole-cluster runs exactly reproducible.
    max_restarts:
        How many times a client resubmits an aborted transaction before
        giving up (Fig. 12 counts never-completed transactions).
    replication_factor:
        Copies per document/fragment created by allocation helpers and the
        experiment runner (1 = disjoint placement, the paper's partial
        regime).
    replica_read_policy:
        Where queries lock and execute: ``"all"`` replicas (the paper's
        behaviour), the ``"primary"``, a ``"random"`` replica, the
        ``"nearest"`` one (the coordinator's own copy when it has one), or
        ``"quorum"`` — the coordinator probes the version state
        (per-document applied LSN + election epoch) of ``read_quorum_r``
        replicas, executes at the freshest responder that provably covers
        every committed write, and triggers read repair on the laggards
        the probes revealed. With ``read_quorum_r + write_quorum_w > N``
        a quorum read can never miss a quorum-committed write.
    replica_write_policy:
        ``"all"`` executes updates eagerly at every replica (the paper's
        behaviour); ``"primary"`` locks and executes at the primary copy
        only and synchronously propagates the committed updates to the
        secondaries before the primary's locks are released (primary-copy
        ROWA); ``"lazy"`` also locks at the primary only but commits
        immediately and propagates asynchronously after
        ``lazy_staleness_ms`` (bounded-staleness primary copy);
        ``"quorum"`` locks and executes at the primary like ``"primary"``
        but acknowledges the commit as soon as ``write_quorum_w`` replicas
        (the primary's durable log record included) hold the batch —
        commit latency stops tracking the slowest replica, and stragglers
        converge through catch-up / anti-entropy.
    read_quorum_r, write_quorum_w:
        Quorum sizes for the ``"quorum"`` policies; ``0`` (default) means
        "majority of the replica set". Validated at construction time:
        ``R + W > N`` (read/write quorums intersect) and ``W > N/2``
        (write quorums intersect each other), with ``N``
        = ``replication_factor``; both must also fit in ``[1, N]``.
        Tuning is a consistency/latency spectrum: ``W=N, R=1`` is the
        eager regime (reads are free, commits pay every replica),
        ``W=majority, R=majority`` balances both, larger ``R`` shifts
        cost from writers to readers.
    lazy_staleness_ms:
        Upper bound on how long a committed update may sit in the primary's
        log before asynchronous propagation to the secondaries starts
        (``replica_write_policy="lazy"`` only).
    max_read_staleness_ms:
        Follower-read fence for lease-mode secondary reads (``0`` = off,
        the pre-existing behaviour). A secondary serving a read under
        ``failure_detector="lease"`` refuses it when nothing was heard
        from the document's primary for longer than this bound — inside
        a false-suspicion window (primary partitioned away, lease not yet
        expired) the secondary can no longer bound its staleness, so the
        coordinator re-routes the read to the primary instead of serving
        possibly-ancient data. Quorum reads carry their own freshness
        proof and are exempt.
    catchup_timeout_ms:
        How long a recovering or gap-detecting replica waits for the
        primary's catch-up response before giving up and retrying on the
        next trigger.
    wake_policy:
        Who gets woken when a transaction ends and its locks release.
        ``"targeted"`` (default since it soaked across the PR 3-4
        workloads) wakes only waiters whose recorded wait-set (the lock
        keys their blocked operation requested) intersects the keys just
        released — spurious wake-ups and their retry lock-table traffic
        disappear, at the cost of a per-waiter key-set record. The final
        committed states are identical either way (a woken waiter that
        cannot progress simply re-blocks); ``"broadcast"`` (the paper's
        literal rule) remains the opt-out for paper-faithful wake
        schedules.
    group_commit_window_ms:
        Group commit for eager replica synchronization. ``0`` (default)
        sends one ReplicaSyncRequest round per committing transaction, as
        before. ``> 0`` coalesces the sync batches of transactions that
        reach commit within the window at the same coordinator into one
        ReplicaSyncBatch per (primary, document): one batched log append
        and one ack round per secondary, shared by every transaction in
        the batch.
    spec_cache:
        Reuse an operation's computed LockSpec across wait/retry attempts
        while the protocol's structure summary (e.g. the DataGuide) is
        unchanged. Pure wall-clock optimisation: the cached spec retains
        its ``nodes_visited`` meter, so *simulated* costs and schedules
        are bit-identical with the cache on or off.
    message_pool:
        Recycle the highest-volume message objects (RemoteOpRequest /
        RemoteOpResult) through a per-site pool instead of allocating one
        per operation round. Pure wall-clock optimisation: pooled and
        unpooled runs produce identical schedules and state digests
        (asserted by tests). Pool hit/miss counts surface in ``SiteStats``.
    failure_detector:
        How the cluster learns about membership. ``"perfect"`` (default,
        the paper's modeling assumption) is the oracle: crashes are
        announced within one hop by an omniscient monitor that reads
        candidates' log tips directly — schedules are bit-identical to
        the pre-membership-refactor code. ``"lease"`` removes the oracle:
        every membership fact travels as a message — sites heartbeat each
        other, a peer is *suspected* only when its lease expires, primary
        election is a LogTipQuery/LogTipReport exchange requiring reports
        from a majority of the replica set, and the winner's epoch-bumped
        PrimaryAnnounce (plus heartbeat-carried views) re-points each
        site's own catalog view. Under ``"lease"`` network partitions and
        false suspicion become survivable: split-brain is prevented by
        epoch fencing and the commit-time sync quorum, not by the oracle.
    heartbeat_interval_ms:
        Period of each site's heartbeat broadcast (``"lease"`` only).
    lease_timeout_ms:
        A peer is suspected once nothing was heard from it for this long
        (``"lease"`` only). Must comfortably exceed
        ``heartbeat_interval_ms`` plus network jitter, or live sites get
        falsely suspected under load.
    election_timeout_ms:
        How long an election waits for LogTipReports before deciding (or
        giving up for lack of a majority) (``"lease"`` only).
    view_staleness_ms:
        Default staleness bound for materialized-view reads (``0`` = view
        routing off, the default). When positive and a registered view's
        pattern subsumes a read-only transaction's query, the coordinator
        answers the query from the view host — no locks, no 2PC — as long
        as the view's shadow provably matched the primary's committed log
        within the last ``view_staleness_ms``. Per-transaction overridable
        via ``Transaction.view_staleness_ms`` (like the quorum overrides);
        any refusal, epoch change or view-host crash falls back to the
        normal locked read path, so correctness never depends on a view.
    view_refresh_ms:
        Period of the primary's view-delta push loop. Each tick ships the
        committed log entries accumulated since the last one as a single
        ``ViewDeltaBatch`` per view host (an empty batch is a freshness
        beacon for idle documents). The effective view lag is roughly one
        period plus network latency, so ``view_staleness_ms`` should
        comfortably exceed this.
    tracing:
        Record causally-linked spans (``repro.obs``) across the whole
        transaction lifecycle: client submit, per-operation coordinator
        rounds, lock waits, participant execution, message transfers,
        2PC rounds, replica sync, view serves, elections, catch-up and
        detector sweeps. Pure wall-clock instrumentation: no messages,
        no RNG draws, no simulated delays are added, so schedules and
        state digests are byte-identical with tracing on or off (and the
        off path is a single attribute check — zero allocation).
    """

    network: NetworkConfig = field(default_factory=NetworkConfig)
    costs: CostConfig = field(default_factory=CostConfig)
    # The detection cadence is scaled to the simulated operation costs the
    # same way the paper's (unspecified) cadence was scaled to its seconds-
    # long transactions: a victim should wait a small multiple of an
    # operation time, not orders of magnitude longer.
    detector_interval_ms: float = 25.0
    detector_initial_delay_ms: float = 10.0
    client_think_ms: float = 1.0
    lock_wait_timeout_ms: float = 0.0
    seed: int = 0xD7C5
    max_restarts: int = 0
    replication_factor: int = 1
    replica_read_policy: str = "all"
    replica_write_policy: str = "all"
    read_quorum_r: int = 0
    write_quorum_w: int = 0
    lazy_staleness_ms: float = 5.0
    max_read_staleness_ms: float = 0.0
    catchup_timeout_ms: float = 50.0
    wake_policy: str = "targeted"
    group_commit_window_ms: float = 0.0
    spec_cache: bool = True
    message_pool: bool = True
    failure_detector: str = "perfect"
    heartbeat_interval_ms: float = 1.0
    lease_timeout_ms: float = 4.0
    election_timeout_ms: float = 4.0
    view_staleness_ms: float = 0.0
    view_refresh_ms: float = 2.0
    tracing: bool = False

    def validate(self) -> None:
        self.network.validate()
        self.costs.validate()
        # Routing knobs are validated by the policy object they configure.
        from .distribution.replication import ReplicationPolicy

        ReplicationPolicy.from_config(self).validate()
        if self.detector_interval_ms <= 0:
            raise ConfigError("detector_interval_ms must be > 0")
        if self.detector_initial_delay_ms < 0:
            raise ConfigError("detector_initial_delay_ms must be >= 0")
        if self.client_think_ms < 0:
            raise ConfigError("client_think_ms must be >= 0")
        if self.lock_wait_timeout_ms < 0:
            raise ConfigError("lock_wait_timeout_ms must be >= 0")
        if self.max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")
        if self.lazy_staleness_ms < 0:
            raise ConfigError("lazy_staleness_ms must be >= 0")
        if self.max_read_staleness_ms < 0:
            raise ConfigError("max_read_staleness_ms must be >= 0")
        if self.catchup_timeout_ms <= 0:
            raise ConfigError("catchup_timeout_ms must be > 0")
        if self.wake_policy not in ("broadcast", "targeted"):
            raise ConfigError(
                f"wake_policy must be 'broadcast' or 'targeted', got {self.wake_policy!r}"
            )
        if self.group_commit_window_ms < 0:
            raise ConfigError("group_commit_window_ms must be >= 0")
        if self.failure_detector not in ("perfect", "lease"):
            raise ConfigError(
                f"failure_detector must be 'perfect' or 'lease', "
                f"got {self.failure_detector!r}"
            )
        if self.heartbeat_interval_ms <= 0:
            raise ConfigError("heartbeat_interval_ms must be > 0")
        if self.lease_timeout_ms <= self.heartbeat_interval_ms:
            raise ConfigError(
                "lease_timeout_ms must exceed heartbeat_interval_ms "
                "(a lease shorter than one heartbeat suspects everyone)"
            )
        if self.election_timeout_ms <= 0:
            raise ConfigError("election_timeout_ms must be > 0")
        if self.view_staleness_ms < 0:
            raise ConfigError("view_staleness_ms must be >= 0")
        if self.view_refresh_ms <= 0:
            raise ConfigError("view_refresh_ms must be > 0")

    def with_(self, **kwargs) -> "SystemConfig":
        """Return a copy with the given top-level fields replaced."""
        cfg = replace(self, **kwargs)
        cfg.validate()
        return cfg

    @classmethod
    def preset(cls, name: str, **overrides) -> "SystemConfig":
        """A validated named configuration — the safe front door to the
        ~20-knob constructor.

        ``"paper"``
            The paper's regime: every operation executes at every replica
            (read/write policy ``"all"``), perfect failure detector.
            Identical to ``SystemConfig()``.
        ``"eager"``
            Primary-copy ROWA at replication factor 3: updates lock and
            execute at the primary and propagate synchronously before its
            locks release; reads at the nearest copy.
        ``"quorum"``
            Versioned quorum reads/writes (majority R and W, factor 3)
            under the lease detector — the regime of PR 5's evaluation:
            commit settles at W durable copies, reads probe R versions.
        ``"lazy"``
            Bounded-staleness primary copy at factor 3: commits return
            immediately, propagation is asynchronous.

        Keyword overrides are applied on top (and re-validated), so
        ``SystemConfig.preset("quorum", seed=7)`` works as expected.
        """
        try:
            base = dict(_PRESETS[name])
        except KeyError:
            raise ConfigError(
                f"unknown preset {name!r}; choose from {sorted(_PRESETS)}"
            ) from None
        base.update(overrides)
        cfg = cls(**base)
        cfg.validate()
        return cfg


_PRESETS: dict[str, dict] = {
    "paper": {},
    "eager": {
        "replication_factor": 3,
        "replica_write_policy": "primary",
        "replica_read_policy": "nearest",
    },
    "quorum": {
        "replication_factor": 3,
        "replica_write_policy": "quorum",
        "replica_read_policy": "quorum",
        "failure_detector": "lease",
        "heartbeat_interval_ms": 1.0,
        "lease_timeout_ms": 4.0,
        "election_timeout_ms": 4.0,
    },
    "lazy": {
        "replication_factor": 3,
        "replica_write_policy": "lazy",
        "replica_read_policy": "nearest",
    },
}


DEFAULT_CONFIG = SystemConfig()
