"""DTXTester: the client simulator driving the experiments (paper §3).

"Transaction concurrency is simulated when multiple clients are used. The
simulator generates the transactions according to certain parameters, sends
them to DTX and collects the results at the end of each execution."

A :class:`WorkloadSpec` captures the paper's experiment parameters: number of
clients, transactions per client (5), operations per transaction (5), the
percentage of update transactions and the percentage of update operations
within an update transaction (20 %). Generation is deterministic per seed and
client, so two protocol runs see the *same* transaction streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..core.transaction import Operation, Transaction
from ..errors import ConfigError
from ..sim.rng import substream
from ..xml.model import Document
from .queries import QUERY_TEMPLATES, UPDATE_TEMPLATES, UPDATE_WEIGHTS


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one experiment workload."""

    n_clients: int = 10
    tx_per_client: int = 5
    ops_per_tx: int = 5
    update_tx_ratio: float = 0.0  # fraction of transactions that update
    update_op_ratio: float = 0.2  # fraction of update ops inside those
    seed: int = 42

    def validate(self) -> None:
        if self.n_clients < 1 or self.tx_per_client < 1 or self.ops_per_tx < 1:
            raise ConfigError("workload counts must be >= 1")
        for ratio in (self.update_tx_ratio, self.update_op_ratio):
            if not 0.0 <= ratio <= 1.0:
                raise ConfigError("ratios must be within [0, 1]")


class DTXTester:
    """Generates per-client transaction streams over a set of documents."""

    def __init__(self, spec: WorkloadSpec, documents: Sequence[Document]):
        spec.validate()
        if not documents:
            raise ConfigError("DTXTester needs at least one document")
        self.spec = spec
        self.documents = {d.name: d for d in documents}
        self._doc_names = sorted(self.documents)

    def transactions_for_client(self, client_index: int) -> list[Transaction]:
        """The deterministic transaction stream of one client."""
        spec = self.spec
        rng = substream(spec.seed, "dtxtester", client_index)
        txs: list[Transaction] = []
        for t in range(spec.tx_per_client):
            is_update_tx = rng.random() < spec.update_tx_ratio
            ops: list[Operation] = []
            guard = 0
            while len(ops) < spec.ops_per_tx:
                guard += 1
                if guard > 200 * spec.ops_per_tx:  # pragma: no cover - safety
                    raise ConfigError("workload generation failed to produce operations")
                doc_name = rng.choice(self._doc_names)
                doc = self.documents[doc_name]
                make_update = is_update_tx and rng.random() < spec.update_op_ratio
                if make_update:
                    template = rng.choices(UPDATE_TEMPLATES, weights=UPDATE_WEIGHTS)[0]
                else:
                    template = rng.choice(QUERY_TEMPLATES)
                op = template(rng, doc_name, doc)
                if op is not None:
                    ops.append(op)
            # An "update transaction" must contain at least one update op
            # (the ratios are per-op probabilities, paper §3.2.2).
            if is_update_tx and not any(o.is_update for o in ops):
                doc_name = rng.choice(self._doc_names)
                doc = self.documents[doc_name]
                replacement = None
                guard = 0
                while replacement is None:
                    guard += 1
                    if guard > 500:  # pragma: no cover - safety
                        break
                    template = rng.choices(UPDATE_TEMPLATES, weights=UPDATE_WEIGHTS)[0]
                    replacement = template(rng, doc_name, doc)
                if replacement is not None:
                    ops[-1] = replacement
            tx = Transaction(ops, label=f"c{client_index}-t{t}")
            txs.append(tx)
        return txs

    def all_transactions(self) -> dict[int, list[Transaction]]:
        return {
            c: self.transactions_for_client(c) for c in range(self.spec.n_clients)
        }

    def assign_clients_to_sites(self, site_ids: Sequence[Hashable]) -> dict[int, Hashable]:
        """Round-robin client placement (clients connect to their local DTX)."""
        if not site_ids:
            raise ConfigError("no sites to place clients on")
        return {c: site_ids[c % len(site_ids)] for c in range(self.spec.n_clients)}
