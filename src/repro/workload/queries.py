"""XMark query and update templates adapted to the DTX languages.

The paper §3: "the XMark benchmark is extended, adapting its queries to the
XPath language and adding update operations". The templates below follow the
spirit of XMark's Q1-Q20 where they fit the XPath subset (id lookups, value
range scans, structural scans) and add the update mix (inserts of bids,
items and persons; price/phone changes; closed-auction removals; an
occasional item transposition between regions).

Each template is a callable ``(rng, doc_name, doc) -> Operation``; the
document is inspected for live ids so operations reference data that exists
in that fragment.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..core.transaction import Operation
from ..update.operations import ChangeOp, InsertOp, RemoveOp, TransposeOp
from ..xml.model import Document
from .xmark import REGIONS

TemplateFn = Callable[[random.Random, str, Document], Optional[Operation]]


def _ids(doc: Document, container: str, tag: str) -> list[str]:
    root = doc.root
    cont = root.child(container) if root is not None else None
    if cont is None:
        return []
    if container == "regions":
        out = []
        for region in cont.children:
            out.extend(i.attrib["id"] for i in region.children if "id" in i.attrib)
        return out
    return [e.attrib["id"] for e in cont.children if e.tag == tag and "id" in e.attrib]


def _pick(rng: random.Random, pool: list[str]) -> Optional[str]:
    return rng.choice(pool) if pool else None


# -- queries (XMark-flavoured, XPath subset) --------------------------------


def q_person_name(rng, doc_name, doc):
    pid = _pick(rng, _ids(doc, "people", "person"))
    if pid is None:
        return None
    return Operation.query(doc_name, f'/site/people/person[@id="{pid}"]/name')


def q_open_auction_current(rng, doc_name, doc):
    aid = _pick(rng, _ids(doc, "open_auctions", "open_auction"))
    if aid is None:
        return None
    return Operation.query(doc_name, f'/site/open_auctions/open_auction[@id="{aid}"]/current')


def q_region_items(rng, doc_name, doc):
    region = rng.choice(REGIONS)
    return Operation.query(doc_name, f"/site/regions/{region}/item/name")


def q_items_anywhere(rng, doc_name, doc):
    return Operation.query(doc_name, "//item/name")


def q_expensive_closed(rng, doc_name, doc):
    threshold = rng.randint(20, 150)
    return Operation.query(
        doc_name, f"/site/closed_auctions/closed_auction[price>={threshold}]"
    )


def q_categories(rng, doc_name, doc):
    return Operation.query(doc_name, "/site/categories/category/name")


def q_person_city(rng, doc_name, doc):
    pid = _pick(rng, _ids(doc, "people", "person"))
    if pid is None:
        return None
    return Operation.query(doc_name, f'/site/people/person[@id="{pid}"]/address/city')


def q_auction_bidders(rng, doc_name, doc):
    aid = _pick(rng, _ids(doc, "open_auctions", "open_auction"))
    if aid is None:
        return None
    return Operation.query(
        doc_name, f'/site/open_auctions/open_auction[@id="{aid}"]/bidder/increase'
    )


QUERY_TEMPLATES: list[TemplateFn] = [
    q_person_name,
    q_open_auction_current,
    q_region_items,
    q_items_anywhere,
    q_expensive_closed,
    q_categories,
    q_person_city,
    q_auction_bidders,
]


# -- updates ------------------------------------------------------------------


def u_new_bid(rng, doc_name, doc):
    aid = _pick(rng, _ids(doc, "open_auctions", "open_auction"))
    pid = _pick(rng, _ids(doc, "people", "person")) or "person0"
    if aid is None:
        return None
    frag = (
        f"<bidder><date>06/2009</date><increase>{rng.uniform(1, 15):.2f}</increase>"
        f'<personref person="{pid}"/></bidder>'
    )
    return Operation.update(
        doc_name, InsertOp(frag, f'/site/open_auctions/open_auction[@id="{aid}"]')
    )


def u_change_current(rng, doc_name, doc):
    aid = _pick(rng, _ids(doc, "open_auctions", "open_auction"))
    if aid is None:
        return None
    return Operation.update(
        doc_name,
        ChangeOp(
            f'/site/open_auctions/open_auction[@id="{aid}"]/current',
            f"{rng.uniform(10, 300):.2f}",
        ),
    )


def u_new_item(rng, doc_name, doc):
    region = rng.choice(REGIONS)
    new_id = f"itemN{rng.randrange(10_000_000)}"
    frag = (
        f'<item id="{new_id}"><location>Brazil</location><quantity>1</quantity>'
        f"<name>fresh item</name><payment>Creditcard</payment></item>"
    )
    return Operation.update(doc_name, InsertOp(frag, f"/site/regions/{region}"))


def u_new_person(rng, doc_name, doc):
    new_id = f"personN{rng.randrange(10_000_000)}"
    frag = (
        f'<person id="{new_id}"><name>New Person</name>'
        f"<emailaddress>mailto:{new_id}@example.net</emailaddress></person>"
    )
    return Operation.update(doc_name, InsertOp(frag, "/site/people"))


def u_change_phone(rng, doc_name, doc):
    pid = _pick(rng, _ids(doc, "people", "person"))
    if pid is None:
        return None
    return Operation.update(
        doc_name,
        ChangeOp(
            f'/site/people/person[@id="{pid}"]/phone',
            f"+55 (85) {rng.randint(1000000, 9999999)}",
        ),
    )


def u_remove_closed(rng, doc_name, doc):
    aid = _pick(rng, _ids(doc, "closed_auctions", "closed_auction"))
    if aid is None:
        return None
    return Operation.update(
        doc_name, RemoveOp(f'/site/closed_auctions/closed_auction[@id="{aid}"]')
    )


def u_transpose_item(rng, doc_name, doc):
    iid = _pick(rng, _ids(doc, "regions", "item"))
    if iid is None:
        return None
    dest = rng.choice(REGIONS)
    return Operation.update(
        doc_name,
        TransposeOp(f'//item[@id="{iid}"]', f"/site/regions/{dest}"),
    )


UPDATE_TEMPLATES: list[TemplateFn] = [
    u_new_bid,
    u_change_current,
    u_new_item,
    u_new_person,
    u_change_phone,
    u_remove_closed,
    u_transpose_item,
]
#: Weights mirror a plausible auction-site mix: bids and price changes
#: dominate; structural moves are rare.
UPDATE_WEIGHTS = [4, 4, 2, 2, 2, 1, 1]
