"""Workloads: XMark generator, query/update templates, DTXTester, metrics."""

from .generator import DTXTester, WorkloadSpec
from .metrics import ExperimentPoint, FigureData, point_from_run, render_comparison
from .queries import QUERY_TEMPLATES, UPDATE_TEMPLATES
from .xmark import REGIONS, XMarkStats, generate_xmark, xmark_fragments

__all__ = [
    "DTXTester",
    "ExperimentPoint",
    "FigureData",
    "QUERY_TEMPLATES",
    "REGIONS",
    "UPDATE_TEMPLATES",
    "WorkloadSpec",
    "XMarkStats",
    "generate_xmark",
    "point_from_run",
    "render_comparison",
    "xmark_fragments",
]
