"""Scaled-down XMark database generator (Schmidt et al., VLDB '02).

Generates the auction-site schema of the paper's Fig. 7::

    site
    ├── regions/{africa,asia,australia,europe,namerica,samerica}/item*
    ├── categories/category*
    ├── catgraph/edge*
    ├── people/person*
    ├── open_auctions/open_auction*   (with nested bidder* lists)
    └── closed_auctions/closed_auction*

The generator is deterministic (seeded) and sized by ``target_bytes``: entity
counts scale linearly with the target, preserving XMark's relative
cardinalities, so a "200 MB" experiment point and a "50 MB" point differ the
way the paper's do — only scaled down (see EXPERIMENTS.md).

The paper fragments the database at root-child granularity; this schema has
six fine-grained region/entity containers under a two-level root, so for
fragmentation we also provide :func:`xmark_fragments`, which splits by
*entity groups* keeping every fragment a valid ``site`` document.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.rng import substream
from ..xml.builder import E
from ..xml.model import Document, Element

REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")

_WORDS = (
    "gold silver bronze ancient modern rare classic plain ornate carved "
    "leather wooden silk copper iron glass marble ivory amber jade crystal "
    "swift quiet bold grand small large heavy light dark bright"
).split()

_CITIES = (
    "Fortaleza Lisboa Paris Tokyo Cairo Sydney Toronto Lima Oslo Madrid "
    "Berlin Rome Athens Dublin Vienna Prague"
).split()

_COUNTRIES = (
    "Brazil Portugal France Japan Egypt Australia Canada Peru Norway Spain "
    "Germany Italy Greece Ireland Austria Czechia"
).split()

_NAMES = (
    "Ana Bruno Carla Diego Elena Fabio Gina Hugo Iris Joao Karla Luis Maria "
    "Nuno Olga Paulo Quita Rui Sofia Tiago"
).split()

#: Approximate serialized bytes of one of each entity (measured; used to
#: convert a byte budget into entity counts).
_BYTES_PER = {"item": 260, "person": 230, "open": 280, "closed": 170, "category": 60}


@dataclass
class XMarkStats:
    items: int = 0
    persons: int = 0
    open_auctions: int = 0
    closed_auctions: int = 0
    categories: int = 0
    item_ids: list[str] = field(default_factory=list)
    person_ids: list[str] = field(default_factory=list)
    open_ids: list[str] = field(default_factory=list)
    closed_ids: list[str] = field(default_factory=list)


def generate_xmark(
    target_bytes: int = 200_000, seed: int = 7, name: str = "xmark"
) -> tuple[Document, XMarkStats]:
    """Generate an XMark-schema document of roughly ``target_bytes``."""
    if target_bytes < 5_000:
        raise ValueError("target_bytes too small for the XMark schema (min 5000)")
    rng = substream(seed, "xmark", name)
    stats = XMarkStats()

    # XMark relative cardinalities: per scale unit, roughly
    # items : persons : open : closed : categories = 4 : 3 : 2 : 2 : 1.
    unit_bytes = (
        4 * _BYTES_PER["item"]
        + 3 * _BYTES_PER["person"]
        + 2 * _BYTES_PER["open"]
        + 2 * _BYTES_PER["closed"]
        + 1 * _BYTES_PER["category"]
    )
    units = max(1, target_bytes // unit_bytes)
    n_items = int(4 * units)
    n_persons = int(3 * units)
    n_open = int(2 * units)
    n_closed = int(2 * units)
    n_categories = max(3, int(units))

    root = E("site")

    categories = root.append(E("categories"))
    for c in range(n_categories):
        cat = E(
            "category",
            E("name", text=f"{rng.choice(_WORDS)} goods {c}"),
            E("description", text=" ".join(rng.choice(_WORDS) for _ in range(4))),
            id=f"category{c}",
        )
        categories.append(cat)
    stats.categories = n_categories

    catgraph = root.append(E("catgraph"))
    for _ in range(max(1, n_categories // 2)):
        a, b = rng.randrange(n_categories), rng.randrange(n_categories)
        catgraph.append(E("edge", **{"from": f"category{a}", "to": f"category{b}"}))

    regions = root.append(E("regions"))
    region_elems = {r: regions.append(E(r)) for r in REGIONS}
    for i in range(n_items):
        region = REGIONS[i % len(REGIONS)]
        item_id = f"item{i}"
        item = E(
            "item",
            E("location", text=rng.choice(_COUNTRIES)),
            E("quantity", text=str(rng.randint(1, 10))),
            E("name", text=f"{rng.choice(_WORDS)} {rng.choice(_WORDS)} {i}"),
            E("payment", text="Creditcard"),
            E(
                "description",
                E("text", text=" ".join(rng.choice(_WORDS) for _ in range(8))),
            ),
            E("incategory", category=f"category{rng.randrange(n_categories)}"),
            id=item_id,
        )
        region_elems[region].append(item)
        stats.item_ids.append(item_id)
    stats.items = n_items

    people = root.append(E("people"))
    for p in range(n_persons):
        pid = f"person{p}"
        person = E(
            "person",
            E("name", text=f"{rng.choice(_NAMES)} {rng.choice(_NAMES)}"),
            E("emailaddress", text=f"mailto:{pid}@example.net"),
            E("phone", text=f"+55 ({rng.randint(10, 99)}) {rng.randint(1000000, 9999999)}"),
            E(
                "address",
                E("street", text=f"{rng.randint(1, 999)} {rng.choice(_WORDS)} St"),
                E("city", text=rng.choice(_CITIES)),
                E("country", text=rng.choice(_COUNTRIES)),
                E("zipcode", text=str(rng.randint(10000, 99999))),
            ),
            E("creditcard", text=" ".join(str(rng.randint(1000, 9999)) for _ in range(4))),
            id=pid,
        )
        people.append(person)
        stats.person_ids.append(pid)
    stats.persons = n_persons

    open_auctions = root.append(E("open_auctions"))
    for a in range(n_open):
        aid = f"open_auction{a}"
        initial = round(rng.uniform(1.0, 100.0), 2)
        auction = E(
            "open_auction",
            E("initial", text=f"{initial:.2f}"),
            E("current", text=f"{initial + rng.uniform(0, 50):.2f}"),
            E("itemref", item=f"item{rng.randrange(max(1, n_items))}"),
            E("seller", person=f"person{rng.randrange(max(1, n_persons))}"),
            E("quantity", text=str(rng.randint(1, 5))),
            E("type", text=rng.choice(("Regular", "Featured"))),
            id=aid,
        )
        for b in range(rng.randint(0, 3)):
            auction.append(
                E(
                    "bidder",
                    E("date", text=f"0{rng.randint(1, 9)}/2008"),
                    E("increase", text=f"{rng.uniform(1.0, 20.0):.2f}"),
                    E("personref", person=f"person{rng.randrange(max(1, n_persons))}"),
                )
            )
        open_auctions.append(auction)
        stats.open_ids.append(aid)
    stats.open_auctions = n_open

    closed_auctions = root.append(E("closed_auctions"))
    for a in range(n_closed):
        aid = f"closed_auction{a}"
        closed_auctions.append(
            E(
                "closed_auction",
                E("seller", person=f"person{rng.randrange(max(1, n_persons))}"),
                E("buyer", person=f"person{rng.randrange(max(1, n_persons))}"),
                E("itemref", item=f"item{rng.randrange(max(1, n_items))}"),
                E("price", text=f"{rng.uniform(5.0, 200.0):.2f}"),
                E("date", text=f"1{rng.randint(0, 2)}/2008"),
                E("quantity", text=str(rng.randint(1, 5))),
                id=aid,
            )
        )
        stats.closed_ids.append(aid)
    stats.closed_auctions = n_closed

    return Document(name, root), stats


def xmark_fragments(doc: Document, k: int) -> list[Document]:
    """Split an XMark document into ``k`` valid ``site`` fragments.

    Entity elements (items, persons, auctions, categories) are dealt
    round-robin into ``k`` documents that all keep the full container
    skeleton, so every fragment answers the same structural paths — the
    Kurita-style "structure and size" fragmentation the paper uses, adapted
    to XMark's two-level containers.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    from ..xml.model import _clone_subtree

    frags: list[Document] = []
    skeletons: list[dict[tuple[str, ...], Element]] = []
    for i in range(k):
        root = E("site")
        containers: dict[tuple[str, ...], Element] = {}
        for top in doc.root.children:
            top_copy = E(top.tag)
            root.append(top_copy)
            containers[(top.tag,)] = top_copy
            if top.tag == "regions":
                for region in top.children:
                    region_copy = E(region.tag)
                    top_copy.append(region_copy)
                    containers[(top.tag, region.tag)] = region_copy
        frags.append(Document(f"{doc.name}#{i}", root))
        skeletons.append(containers)

    counter = 0
    for top in doc.root.children:
        if top.tag == "regions":
            for region in top.children:
                for item in region.children:
                    dest = skeletons[counter % k][(top.tag, region.tag)]
                    dest.append(_clone_subtree(item))
                    counter += 1
        else:
            for entity in top.children:
                dest = skeletons[counter % k][(top.tag,)]
                dest.append(_clone_subtree(entity))
                counter += 1
    return frags
