"""Experiment metrics: aggregation and comparison across runs.

Turns :class:`~repro.core.results.RunResult` objects into the rows the
paper's figures plot — response time per configuration, deadlock counts,
throughput/concurrency series — and renders ASCII tables for reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.results import RunResult


@dataclass
class ExperimentPoint:
    """One (x, series) measurement in a figure."""

    series: str  # e.g. 'xdgl/partial'
    x: float  # e.g. number of clients
    response_ms: float
    deadlocks: int
    committed: int
    aborted: int
    duration_ms: float
    messages: int
    extra: dict = field(default_factory=dict)


def point_from_run(series: str, x: float, run: RunResult, **extra) -> ExperimentPoint:
    return ExperimentPoint(
        series=series,
        x=x,
        response_ms=run.mean_response_ms(),
        deadlocks=run.total_deadlocks,
        committed=len(run.committed),
        aborted=len(run.aborted),
        duration_ms=run.duration_ms,
        messages=run.network_messages,
        extra=dict(extra),
    )


@dataclass
class FigureData:
    """All measurements of one reproduced figure."""

    figure_id: str
    title: str
    x_label: str
    points: list[ExperimentPoint] = field(default_factory=list)

    def add(self, point: ExperimentPoint) -> None:
        self.points.append(point)

    def series_names(self) -> list[str]:
        seen: list[str] = []
        for p in self.points:
            if p.series not in seen:
                seen.append(p.series)
        return seen

    def xs(self) -> list[float]:
        seen: list[float] = []
        for p in self.points:
            if p.x not in seen:
                seen.append(p.x)
        return sorted(seen)

    def value(self, series: str, x: float, metric: str = "response_ms") -> Optional[float]:
        for p in self.points:
            if p.series == series and p.x == x:
                return getattr(p, metric)
        return None

    def series_values(self, series: str, metric: str = "response_ms") -> list[float]:
        return [
            v
            for x in self.xs()
            if (v := self.value(series, x, metric)) is not None
        ]

    def render(self, metric: str = "response_ms", fmt: str = "{:.2f}") -> str:
        """ASCII table: rows = x values, columns = series."""
        series = self.series_names()
        header = [self.x_label] + series
        rows: list[list[str]] = []
        for x in self.xs():
            row = [self._fmt_x(x)]
            for s in series:
                v = self.value(s, x, metric)
                row.append(fmt.format(v) if v is not None else "-")
            rows.append(row)
        return _table(f"{self.figure_id}: {self.title} [{metric}]", header, rows)

    @staticmethod
    def _fmt_x(x: float) -> str:
        return str(int(x)) if float(x).is_integer() else f"{x:g}"


def _table(title: str, header: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [title, " | ".join(h.ljust(w) for h, w in zip(header, widths)), sep]
    for row in rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_comparison(title: str, runs: dict[str, RunResult]) -> str:
    """Side-by-side summary of several runs (used by examples)."""
    header = ["metric"] + list(runs)
    rows = [
        ["committed"] + [str(len(r.committed)) for r in runs.values()],
        ["aborted"] + [str(len(r.aborted)) for r in runs.values()],
        ["mean response (ms)"] + [f"{r.mean_response_ms():.2f}" for r in runs.values()],
        ["deadlocks"] + [str(r.total_deadlocks) for r in runs.values()],
        ["duration (ms)"] + [f"{r.duration_ms:.1f}" for r in runs.values()],
        ["messages"] + [str(r.network_messages) for r in runs.values()],
    ]
    return _table(title, header, rows)
