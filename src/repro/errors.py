"""Exception hierarchy for the DTX reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch library failures with a single handler while still being able to
discriminate subsystems (XML parsing, XPath, updates, locking, transactions,
storage, distribution).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class XMLError(ReproError):
    """Base class for XML-model and parsing errors."""


class XMLParseError(XMLError):
    """Raised when a document cannot be parsed.

    Attributes
    ----------
    position:
        Character offset in the input at which the error was detected.
    line, column:
        1-based source coordinates of the error.
    """

    def __init__(self, message: str, position: int = -1, line: int = -1, column: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.line >= 0:
            return f"{base} (line {self.line}, column {self.column})"
        return base


class XMLModelError(XMLError):
    """Raised on illegal tree manipulation (cycles, foreign nodes, ...)."""


class XPathError(ReproError):
    """Base class for XPath subset errors."""


class XPathSyntaxError(XPathError):
    """Raised when an expression is outside the supported XPath subset."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class XPathEvalError(XPathError):
    """Raised when a syntactically valid expression cannot be evaluated."""


class UpdateError(ReproError):
    """Raised when an update operation is invalid or cannot be applied."""


class UpdateSyntaxError(UpdateError):
    """Raised when the textual update language cannot be parsed."""


class LockError(ReproError):
    """Base class for locking subsystem errors."""


class LockUpgradeError(LockError):
    """Raised when a lock upgrade is requested outside the mode lattice."""


class DeadlockDetected(ReproError):
    """Internal signal: acquiring a lock would close a wait-for cycle."""

    def __init__(self, message: str, victim=None):
        super().__init__(message)
        self.victim = victim


class TransactionError(ReproError):
    """Base class for transaction lifecycle errors."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (deadlock victim or explicit abort)."""

    def __init__(self, message: str, reason: str = "abort"):
        super().__init__(message)
        self.reason = reason


class TransactionFailed(TransactionError):
    """The transaction failed: an abort could not be executed at some site.

    Mirrors the paper's three terminal states: *commit*, *abort*, *fail*.
    """


class StorageError(ReproError):
    """Raised by storage backends (missing document, I/O failure, ...)."""


class DistributionError(ReproError):
    """Raised by fragmentation/allocation/catalog components."""


class ConfigError(ReproError):
    """Raised for invalid system configuration values."""


class SimulationError(ReproError):
    """Raised by the discrete-event simulation kernel."""
