"""Replica sets and routing policy: primary-copy read-one-write-all.

The paper's DTX ships *every* operation to *every* site holding the target
document (Alg. 1) — reads included — which is why total replication pays a
synchronization cost even for read-only workloads (Fig. 9). That regime is
kept as the default (``read_policy="all"``, ``write_policy="all"``).

This module adds the primary-copy ROWA regime used to scale read-heavy
workloads (cf. Abiteboul et al., "Distributed XML Design"; the ViP2P
materialized-view platform):

* each document/fragment has one **primary** replica (the first site in its
  catalog placement) and any number of **secondaries**;
* **reads** lock and execute at a *single* replica, chosen by
  ``read_policy`` (``primary`` | ``random`` | ``nearest``);
* **writes** lock and execute at the primary only; at commit time the
  update operations are propagated synchronously to every secondary over
  the network *before* the primary's locks are released, so replicas never
  diverge and writers on the same document serialize through the primary's
  lock table.

Within a transaction, a read on a document the transaction has already
written is pinned to the primary (read-your-writes — secondaries only see
the update after commit).

Isolation guarantee: write effects are one-copy serializable (the primary's
lock table orders all writers, and sync streams apply at secondaries in
commit order — `repro.verify.serial` validates this per replica). Reads at
*secondaries* see committed data only, but a sync may apply between two
reads of the same transaction: replica reads are READ COMMITTED, not
repeatable. Route reads to the primary (``read_policy="primary"``) when a
workload needs fully serializable reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from ..errors import ConfigError, DistributionError

READ_POLICIES = ("all", "primary", "random", "nearest")
WRITE_POLICIES = ("all", "primary")


@dataclass(frozen=True)
class ReplicaSet:
    """The placement of one document: a primary plus ordered secondaries."""

    doc_name: str
    primary: Hashable
    secondaries: tuple = ()

    def __post_init__(self) -> None:
        if self.primary in self.secondaries:
            raise DistributionError(
                f"primary of {self.doc_name!r} repeated among its secondaries"
            )

    @property
    def all_sites(self) -> tuple:
        return (self.primary, *self.secondaries)

    @property
    def degree(self) -> int:
        return 1 + len(self.secondaries)

    @property
    def is_replicated(self) -> bool:
        return bool(self.secondaries)

    def __contains__(self, site_id: Hashable) -> bool:
        return site_id == self.primary or site_id in self.secondaries

    def __str__(self) -> str:
        sites = ", ".join(str(s) for s in self.secondaries)
        return f"{self.doc_name}@{self.primary}" + (f"+[{sites}]" if sites else "")


@dataclass(frozen=True)
class ReplicationPolicy:
    """How operations are routed across a document's replicas.

    ``factor`` is the *placement* knob (how many copies allocation helpers
    create); ``read_policy``/``write_policy`` are the *routing* knobs. The
    defaults reproduce the paper's behaviour exactly: every operation runs
    at every replica.
    """

    factor: int = 1
    read_policy: str = "all"
    write_policy: str = "all"

    def validate(self) -> None:
        if self.factor < 1:
            raise ConfigError(f"replication factor must be >= 1, got {self.factor}")
        if self.read_policy not in READ_POLICIES:
            raise ConfigError(
                f"read_policy must be one of {READ_POLICIES}, got {self.read_policy!r}"
            )
        if self.write_policy not in WRITE_POLICIES:
            raise ConfigError(
                f"write_policy must be one of {WRITE_POLICIES}, got {self.write_policy!r}"
            )

    @classmethod
    def from_config(cls, config) -> "ReplicationPolicy":
        """Build from a :class:`repro.config.SystemConfig`."""
        policy = cls(
            factor=config.replication_factor,
            read_policy=config.replica_read_policy,
            write_policy=config.replica_write_policy,
        )
        policy.validate()
        return policy

    # -- routing -----------------------------------------------------------

    def route_read(
        self,
        rset: ReplicaSet,
        origin: Hashable,
        rng=None,
        wrote_before: bool = False,
    ) -> list:
        """Sites that must lock and execute a query on ``rset.doc_name``.

        ``origin`` is the coordinator's site (the "nearest" candidate);
        ``wrote_before`` pins the read to the primary when the transaction
        already updated the document under primary-copy writes.
        """
        # The read-your-writes pin outranks every read policy: under
        # primary-copy writes only the primary has the update before commit.
        if wrote_before and self.write_policy == "primary":
            return [rset.primary]
        if self.read_policy == "all":
            return list(rset.all_sites)
        if self.read_policy == "primary":
            return [rset.primary]
        if self.read_policy == "random":
            if rng is None:
                return [rset.primary]
            return [rng.choice(rset.all_sites)]
        # "nearest": the coordinator's own replica when it has one (zero
        # network hops in the simulated LAN), otherwise the primary.
        if origin in rset:
            return [origin]
        return [rset.primary]

    def route_write(self, rset: ReplicaSet) -> list:
        """Sites that must lock and execute an update on ``rset.doc_name``."""
        if self.write_policy == "all":
            return list(rset.all_sites)
        return [rset.primary]

    def sync_targets(self, rset: ReplicaSet) -> list:
        """Secondaries needing commit-time propagation of executed updates."""
        if self.write_policy == "all":
            return []  # eager writes already ran everywhere
        return list(rset.secondaries)

    @property
    def is_primary_copy(self) -> bool:
        return self.write_policy == "primary"

    def describe(self) -> str:
        return (
            f"factor={self.factor} read={self.read_policy} write={self.write_policy}"
        )


def replica_placement(
    index: int, site_ids, factor: int, primary: Optional[Hashable] = None
) -> list:
    """Round-robin placement of the ``index``-th item on ``factor``
    consecutive sites; the first listed site is the primary."""
    if not site_ids:
        raise DistributionError("need at least one site")
    if factor < 1 or factor > len(site_ids):
        raise DistributionError(
            f"replication factor must be in [1, {len(site_ids)}], got {factor}"
        )
    home = (
        list(site_ids).index(primary) if primary is not None else index % len(site_ids)
    )
    return [site_ids[(home + r) % len(site_ids)] for r in range(factor)]
