"""Replica sets and routing policy: primary-copy read-one-write-all.

The paper's DTX ships *every* operation to *every* site holding the target
document (Alg. 1) — reads included — which is why total replication pays a
synchronization cost even for read-only workloads (Fig. 9). That regime is
kept as the default (``read_policy="all"``, ``write_policy="all"``).

This module adds the primary-copy ROWA regime used to scale read-heavy
workloads (cf. Abiteboul et al., "Distributed XML Design"; the ViP2P
materialized-view platform):

* each document/fragment has one **primary** replica (the first site in its
  catalog placement) and any number of **secondaries**;
* **reads** lock and execute at a *single* replica, chosen by
  ``read_policy`` (``primary`` | ``random`` | ``nearest``);
* **writes** lock and execute at the primary only; at commit time the
  update operations are propagated synchronously to every secondary over
  the network *before* the primary's locks are released, so replicas never
  diverge and writers on the same document serialize through the primary's
  lock table.

Within a transaction, a read on a document the transaction has already
written is pinned to the primary (read-your-writes — secondaries only see
the update after commit).

Isolation guarantee: write effects are one-copy serializable (the primary's
lock table orders all writers, and sync streams apply at secondaries in
commit order — `repro.verify.serial` validates this per replica). Reads at
*secondaries* see committed data only, but a sync may apply between two
reads of the same transaction: replica reads are READ COMMITTED, not
repeatable. Route reads to the primary (``read_policy="primary"``) when a
workload needs fully serializable reads.

A third write regime, ``write_policy="lazy"``, commits at the primary
*without* waiting for the secondaries: the primary appends the committed
updates to its durable :class:`UpdateLog` while its locks are still held
(so log order equals commit order) and propagates them asynchronously
after a configurable staleness delay. Lazy replication trades the eager
regime's freshness for availability and commit latency: secondary reads may
be stale by up to ``lazy_staleness_ms`` plus a network hop, and a primary
crash can lose the committed-but-unpropagated tail of the log — the
tradeoff the ``availability`` experiment measures.

The :class:`UpdateLog` is also what crash recovery is built on: every
replica (primary and secondaries alike) logs each applied update batch
under a per-document log sequence number (LSN) assigned by the current
primary's regime, so a recovering replica can ask the primary for the
entries it missed, and a deposed primary can detect that its log diverged
(same LSN, different epoch) and fall back to a snapshot transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from ..errors import ConfigError, DistributionError
from .quorum import QuorumSpec
from .quorum import majority as _majority

READ_POLICIES = ("all", "primary", "random", "nearest", "quorum")
WRITE_POLICIES = ("all", "primary", "lazy", "quorum")
# Writes lock and execute at the primary only; they differ in how the
# committed batch reaches the secondaries (eagerly/asynchronously/quorum).
PRIMARY_COPY_POLICIES = ("primary", "lazy", "quorum")
# Commit-time synchronous propagation (the _sync_replicas path).
COMMIT_SYNC_POLICIES = ("primary", "quorum")


@dataclass(frozen=True)
class ReplicaSet:
    """The placement of one document: a primary plus ordered secondaries."""

    doc_name: str
    primary: Hashable
    secondaries: tuple = ()

    def __post_init__(self) -> None:
        if self.primary in self.secondaries:
            raise DistributionError(
                f"primary of {self.doc_name!r} repeated among its secondaries"
            )

    @property
    def all_sites(self) -> tuple:
        return (self.primary, *self.secondaries)

    @property
    def degree(self) -> int:
        return 1 + len(self.secondaries)

    @property
    def is_replicated(self) -> bool:
        return bool(self.secondaries)

    def __contains__(self, site_id: Hashable) -> bool:
        return site_id == self.primary or site_id in self.secondaries

    def __str__(self) -> str:
        sites = ", ".join(str(s) for s in self.secondaries)
        return f"{self.doc_name}@{self.primary}" + (f"+[{sites}]" if sites else "")


@dataclass(frozen=True)
class ReplicationPolicy:
    """How operations are routed across a document's replicas.

    ``factor`` is the *placement* knob (how many copies allocation helpers
    create); ``read_policy``/``write_policy`` are the *routing* knobs. The
    defaults reproduce the paper's behaviour exactly: every operation runs
    at every replica.
    """

    factor: int = 1
    read_policy: str = "all"
    write_policy: str = "all"
    # Quorum sizes for the "quorum" policies; 0 means "majority of the
    # replica set". Validated against ``factor`` at construction time and
    # re-resolved per replica set at run time (see :meth:`quorum_for`).
    read_quorum_r: int = 0
    write_quorum_w: int = 0

    def validate(self) -> None:
        if self.factor < 1:
            raise ConfigError(f"replication factor must be >= 1, got {self.factor}")
        if self.read_policy not in READ_POLICIES:
            raise ConfigError(
                f"read_policy must be one of {READ_POLICIES}, got {self.read_policy!r}"
            )
        if self.write_policy not in WRITE_POLICIES:
            raise ConfigError(
                f"write_policy must be one of {WRITE_POLICIES}, got {self.write_policy!r}"
            )
        uses_quorum = "quorum" in (self.read_policy, self.write_policy)
        if uses_quorum and self.factor < 2:
            raise ConfigError(
                "quorum read/write policies need replication_factor >= 2 "
                f"(got {self.factor}): with a single copy there is nothing "
                "to form a quorum over"
            )
        if self.read_policy == "quorum" and self.write_policy == "lazy":
            raise ConfigError(
                "replica_read_policy='quorum' cannot intersect lazy writes: "
                "a lazy commit is durable at the primary alone (W=1), so no "
                "read quorum short of R=N could cover it — use "
                "replica_write_policy='quorum' or 'primary'"
            )
        if not uses_quorum and (self.read_quorum_r or self.write_quorum_w):
            raise ConfigError(
                "read_quorum_r/write_quorum_w are set but neither "
                "replica_read_policy nor replica_write_policy is 'quorum'"
            )
        for name, value in (
            ("read_quorum_r", self.read_quorum_r),
            ("write_quorum_w", self.write_quorum_w),
        ):
            if value < 0:
                raise ConfigError(f"{name} must be >= 0 (0 = majority), got {value}")
            if value > self.factor:
                raise ConfigError(
                    f"{name}={value} exceeds the replica count "
                    f"(replication_factor={self.factor})"
                )
        if uses_quorum:
            # Resolve against the configured factor so impossible explicit
            # combinations (R+W <= N, W <= N/2) fail at construction time
            # with the laws spelled out, not at the first routed operation.
            QuorumSpec(
                n=self.factor,
                read_quorum=self.read_quorum_r or _majority(self.factor),
                write_quorum=self.write_quorum_w or _majority(self.factor),
            ).validate()

    @classmethod
    def from_config(cls, config) -> "ReplicationPolicy":
        """Build from a :class:`repro.config.SystemConfig`."""
        policy = cls(
            factor=config.replication_factor,
            read_policy=config.replica_read_policy,
            write_policy=config.replica_write_policy,
            read_quorum_r=config.read_quorum_r,
            write_quorum_w=config.write_quorum_w,
        )
        policy.validate()
        return policy

    # -- routing -----------------------------------------------------------

    def route_read(
        self,
        rset: ReplicaSet,
        origin: Hashable,
        rng=None,
        wrote_before: bool = False,
    ) -> list:
        """Sites that must lock and execute a query on ``rset.doc_name``.

        ``origin`` is the coordinator's site (the "nearest" candidate);
        ``wrote_before`` pins the read to the primary when the transaction
        already updated the document under primary-copy writes.
        """
        # The read-your-writes pin outranks every read policy: under
        # primary-copy writes only the primary has the update before commit.
        if wrote_before and self.write_policy in PRIMARY_COPY_POLICIES:
            return [rset.primary]
        if self.read_policy == "all":
            return list(rset.all_sites)
        if self.read_policy in ("primary", "quorum"):
            # "quorum" is resolved by the coordinator's version-probe round
            # (DTXSite), which overrides this with the freshest responder;
            # the primary is the degenerate (and always-safe) answer for
            # callers outside that path and for unreplicated documents.
            return [rset.primary]
        if self.read_policy == "random":
            if rng is None:
                return [rset.primary]
            return [rng.choice(rset.all_sites)]
        # "nearest": the coordinator's own replica when it has one (zero
        # network hops in the simulated LAN), otherwise the primary.
        if origin in rset:
            return [origin]
        return [rset.primary]

    def route_write(self, rset: ReplicaSet) -> list:
        """Sites that must lock and execute an update on ``rset.doc_name``."""
        if self.write_policy == "all":
            return list(rset.all_sites)
        return [rset.primary]

    def sync_targets(self, rset: ReplicaSet) -> list:
        """Secondaries needing commit-time propagation of executed updates."""
        if self.write_policy == "all":
            return []  # eager writes already ran everywhere
        return list(rset.secondaries)

    @property
    def is_primary_copy(self) -> bool:
        """Writes lock and execute at the primary only (eager or lazy)."""
        return self.write_policy in PRIMARY_COPY_POLICIES

    @property
    def is_eager(self) -> bool:
        """Secondaries are synchronized before the commit is acknowledged."""
        return self.write_policy == "primary"

    @property
    def is_lazy(self) -> bool:
        """Commit at the primary immediately; propagate asynchronously."""
        return self.write_policy == "lazy"

    @property
    def is_quorum_write(self) -> bool:
        """Commit once W replicas (primary included) durably hold the batch."""
        return self.write_policy == "quorum"

    @property
    def is_quorum_read(self) -> bool:
        """Reads probe R replicas' versions and execute at the freshest."""
        return self.read_policy == "quorum"

    @property
    def syncs_at_commit(self) -> bool:
        """Committed updates are propagated before the commit acknowledges
        (waiting for all live secondaries under ``"primary"``, for W
        durable copies under ``"quorum"``)."""
        return self.write_policy in COMMIT_SYNC_POLICIES

    def quorum_for(self, degree: int, r: int = 0, w: int = 0) -> QuorumSpec:
        """The effective (N, R, W) for a replica set of ``degree`` copies.

        Documents can be replicated at fewer sites than the configured
        ``factor`` (hand-built clusters, shrunken placements):
        :meth:`QuorumSpec.resolve` re-anchors the configured quorums to
        the actual degree, falling back to majorities where the
        configured values would break the intersection laws.

        ``r``/``w`` are per-transaction overrides (0 = use the cluster
        knobs): a transaction submitted with its own ``(R, W)`` trades
        read cost against write cost for *its* operations only, under the
        same intersection laws.
        """
        return QuorumSpec.resolve(
            degree, r=r or self.read_quorum_r, w=w or self.write_quorum_w
        )

    def validate_tx_quorums(self, r: int, w: int) -> None:
        """Validate a transaction's ``(R, W)`` override against the same
        intersection laws as the cluster-wide knobs (N = ``factor``).

        ``0`` inherits the corresponding cluster knob. Raises
        :class:`~repro.errors.ConfigError` exactly like
        :meth:`validate` does for cluster-wide values.
        """
        if r == 0 and w == 0:
            return
        if r < 0 or w < 0:
            raise ConfigError(
                f"per-transaction quorums must be >= 0, got (R={r}, W={w})"
            )
        n = self.factor
        r_eff = r or self.read_quorum_r or _majority(n)
        w_eff = w or self.write_quorum_w or _majority(n)
        if r_eff > n or w_eff > n:
            raise ConfigError(
                f"per-transaction quorums must fit the replica set: "
                f"(R={r_eff}, W={w_eff}) with N={n}"
            )
        if r_eff + w_eff <= n:
            raise ConfigError(
                f"per-transaction R + W must exceed N "
                f"(R={r_eff}, W={w_eff}, N={n}): read/write quorums must intersect"
            )
        if 2 * w_eff <= n:
            raise ConfigError(
                f"per-transaction W must exceed N/2 "
                f"(W={w_eff}, N={n}): write quorums must intersect each other"
            )

    def describe(self) -> str:
        out = f"factor={self.factor} read={self.read_policy} write={self.write_policy}"
        if "quorum" in (self.read_policy, self.write_policy):
            spec = self.quorum_for(self.factor)
            out += f" R={spec.read_quorum} W={spec.write_quorum}"
        return out


@dataclass(frozen=True)
class UpdateLogEntry:
    """One committed update batch of one transaction on one document.

    ``lsn`` is the per-document log sequence number assigned by the
    primary's regime while the primary's write locks were still held, so
    LSN order equals commit order and per-document LSNs are gapless.
    ``epoch`` is the primary-election epoch the entry was produced under;
    a recovering replica whose entry at some LSN carries a different epoch
    than the current primary's knows its log diverged (it applied writes
    of a deposed primary) and must fall back to a snapshot transfer.
    """

    lsn: int
    epoch: int
    tid: object
    doc_name: str
    ops: tuple = ()  # executed update Operations, transaction order

    def payload_size(self) -> int:
        return 24 + sum(op.payload_size() for op in self.ops)


@dataclass
class UpdateLog:
    """The durable per-document redo log kept at every replica.

    Modeled as persistent storage: a site crash wipes its in-memory
    documents and lock tables but *not* its logs (nor the storage backend),
    which is exactly what makes catch-up after recovery possible.
    ``base_lsn``/``base_epoch`` describe the state the log starts from —
    after a snapshot transfer the entries are discarded and the base is
    moved forward, so the watermark stays meaningful.

    Entries are keyed by LSN and may arrive **out of order**: conflicting
    writers are serialized by the primary's lock table (their batches can
    never race), but *non-conflicting* writers on the same document commit
    — and therefore allocate LSNs and ship their batches — concurrently.
    Their data effects commute (disjoint lock scopes), so replicas apply
    them in arrival order; the log records them under their allocated LSNs
    and ``applied_lsn`` reports the highest *contiguous* watermark, which
    is what catch-up requests and promotion decisions are based on.
    Transient holes above the watermark (batches still in flight) fill in
    as their entries arrive.
    """

    doc_name: str
    entries: dict = field(default_factory=dict)  # lsn -> UpdateLogEntry
    base_lsn: int = 0
    base_epoch: int = 0
    # Maintained incrementally by record()/reset_to_snapshot so the
    # hot-path reads below stay O(1) instead of re-walking the prefix.
    _watermark: int = 0

    def __post_init__(self) -> None:
        self._watermark = max(self._watermark, self.base_lsn)
        while self._watermark + 1 in self.entries:
            self._watermark += 1

    @property
    def applied_lsn(self) -> int:
        """Highest LSN such that every entry up to it is present."""
        return self._watermark

    @property
    def last_epoch(self) -> int:
        """Epoch at the contiguous watermark."""
        tip = self.applied_lsn
        entry = self.entries.get(tip)
        return entry.epoch if entry is not None else self.base_epoch

    @property
    def max_recorded_lsn(self) -> int:
        """Highest LSN recorded (equals ``applied_lsn`` iff hole-free)."""
        return max(self.entries, default=self.base_lsn)

    def has(self, lsn: int) -> bool:
        """Whether ``lsn``'s batch is already incorporated here (recorded as
        an entry, or subsumed by the snapshot base)."""
        return lsn <= self.base_lsn or lsn in self.entries

    def record(self, entry: UpdateLogEntry) -> None:
        if self.has(entry.lsn):
            raise DistributionError(
                f"log of {self.doc_name!r}: lsn {entry.lsn} recorded twice"
            )
        self.entries[entry.lsn] = entry
        while self._watermark + 1 in self.entries:
            self._watermark += 1

    def contiguous_entries_after(self, lsn: int) -> list:
        """The gapless run of entries directly above ``lsn``, in LSN order.

        What a primary serves to a catch-up request: entries above its own
        first hole (a batch whose log-record is still in flight to it) are
        withheld — the requester heals them on a later trigger.
        """
        out = []
        next_lsn = lsn + 1
        while next_lsn in self.entries:
            out.append(self.entries[next_lsn])
            next_lsn += 1
        return out

    def can_serve_after(self, lsn: int) -> bool:
        """Entries ``> lsn`` are all present (``lsn`` predates no snapshot)."""
        return lsn >= self.base_lsn

    def epoch_at(self, lsn: int) -> Optional[int]:
        """Epoch of the entry with ``lsn`` (``None`` when not in the log)."""
        if lsn == self.base_lsn:
            return self.base_epoch
        entry = self.entries.get(lsn)
        return entry.epoch if entry is not None else None

    def reset_to_snapshot(self, lsn: int, epoch: int) -> None:
        """Discard all entries: the document state now *is* ``lsn``."""
        self.entries.clear()
        self.base_lsn = lsn
        self.base_epoch = epoch
        self._watermark = lsn

    def compact_to(self, lsn: int) -> int:
        """Fold entries at or below ``lsn`` into the snapshot base.

        The log-compaction checkpoint: once every replica's applied
        watermark has passed an entry, no catch-up request can ever need
        it (requests ask for entries *above* the requester's watermark),
        so the prefix is truncated and the base moved up. Never compacts
        past this log's own contiguous watermark — an entry above a hole
        may still be needed to serve the hole's eventual healing. Returns
        the number of entries discarded.
        """
        lsn = min(lsn, self.applied_lsn)
        if lsn <= self.base_lsn:
            return 0
        epoch = self.epoch_at(lsn)
        discard = [recorded for recorded in self.entries if recorded <= lsn]
        for recorded in discard:
            del self.entries[recorded]
        self.base_lsn = lsn
        self.base_epoch = epoch if epoch is not None else self.base_epoch
        return len(discard)

    def __len__(self) -> int:
        return len(self.entries)


def replica_placement(
    index: int, site_ids, factor: int, primary: Optional[Hashable] = None
) -> list:
    """Round-robin placement of the ``index``-th item on ``factor``
    consecutive sites; the first listed site is the primary."""
    if not site_ids:
        raise DistributionError("need at least one site")
    if factor < 1 or factor > len(site_ids):
        raise DistributionError(
            f"replication factor must be in [1, {len(site_ids)}], got {factor}"
        )
    home = (
        list(site_ids).index(primary) if primary is not None else index % len(site_ids)
    )
    return [site_ids[(home + r) % len(site_ids)] for r in range(factor)]
