"""Data distribution: fragmentation, allocation, placement catalog, replication."""

from .allocation import (
    Allocation,
    allocate_explicit,
    allocate_partial,
    allocate_replicated,
    allocate_total,
)
from .catalog import Catalog, CatalogView
from .fragmentation import (
    Fragment,
    FragmentationPlan,
    fragment_document,
    fragment_name,
    is_fragment_of,
)
from .replication import (
    PRIMARY_COPY_POLICIES,
    READ_POLICIES,
    WRITE_POLICIES,
    ReplicaSet,
    ReplicationPolicy,
    UpdateLog,
    UpdateLogEntry,
    replica_placement,
)

__all__ = [
    "Allocation",
    "Catalog",
    "CatalogView",
    "Fragment",
    "FragmentationPlan",
    "PRIMARY_COPY_POLICIES",
    "READ_POLICIES",
    "ReplicaSet",
    "ReplicationPolicy",
    "UpdateLog",
    "UpdateLogEntry",
    "WRITE_POLICIES",
    "allocate_explicit",
    "allocate_partial",
    "allocate_replicated",
    "allocate_total",
    "fragment_document",
    "fragment_name",
    "is_fragment_of",
    "replica_placement",
]
