"""Data distribution: fragmentation, allocation, placement catalog, replication."""

from .allocation import (
    Allocation,
    allocate_explicit,
    allocate_partial,
    allocate_replicated,
    allocate_total,
)
from .catalog import Catalog
from .fragmentation import (
    Fragment,
    FragmentationPlan,
    fragment_document,
    fragment_name,
    is_fragment_of,
)
from .replication import (
    READ_POLICIES,
    WRITE_POLICIES,
    ReplicaSet,
    ReplicationPolicy,
    replica_placement,
)

__all__ = [
    "Allocation",
    "Catalog",
    "Fragment",
    "FragmentationPlan",
    "READ_POLICIES",
    "ReplicaSet",
    "ReplicationPolicy",
    "WRITE_POLICIES",
    "allocate_explicit",
    "allocate_partial",
    "allocate_replicated",
    "allocate_total",
    "fragment_document",
    "fragment_name",
    "is_fragment_of",
    "replica_placement",
]
