"""Data distribution: fragmentation, allocation, placement catalog, replication."""

from .allocation import (
    Allocation,
    allocate_explicit,
    allocate_partial,
    allocate_replicated,
    allocate_total,
)
from .catalog import Catalog, CatalogView
from .migration import Migration, MigrationManager, MigrationStats
from .placement import (
    ExplicitPlacement,
    HashRing,
    HashRingPlacement,
    PartialPlacement,
    PlacementPolicy,
    ReplicatedPlacement,
    TotalPlacement,
    ring_rebalance,
)
from .fragmentation import (
    Fragment,
    FragmentationPlan,
    fragment_document,
    fragment_name,
    is_fragment_of,
)
from .quorum import (
    QuorumSpec,
    VersionVector,
    choose_read_replica,
    majority,
    version_frontier,
)
from .replication import (
    COMMIT_SYNC_POLICIES,
    PRIMARY_COPY_POLICIES,
    READ_POLICIES,
    WRITE_POLICIES,
    ReplicaSet,
    ReplicationPolicy,
    UpdateLog,
    UpdateLogEntry,
    replica_placement,
)

__all__ = [
    "Allocation",
    "COMMIT_SYNC_POLICIES",
    "Catalog",
    "CatalogView",
    "ExplicitPlacement",
    "Fragment",
    "FragmentationPlan",
    "HashRing",
    "HashRingPlacement",
    "Migration",
    "MigrationManager",
    "MigrationStats",
    "PRIMARY_COPY_POLICIES",
    "PartialPlacement",
    "PlacementPolicy",
    "QuorumSpec",
    "READ_POLICIES",
    "ReplicaSet",
    "ReplicatedPlacement",
    "ReplicationPolicy",
    "TotalPlacement",
    "UpdateLog",
    "UpdateLogEntry",
    "VersionVector",
    "WRITE_POLICIES",
    "allocate_explicit",
    "allocate_partial",
    "allocate_replicated",
    "allocate_total",
    "choose_read_replica",
    "fragment_document",
    "fragment_name",
    "is_fragment_of",
    "majority",
    "replica_placement",
    "ring_rebalance",
    "version_frontier",
]
