"""Data distribution: fragmentation, allocation, placement catalog."""

from .allocation import Allocation, allocate_explicit, allocate_partial, allocate_total
from .catalog import Catalog
from .fragmentation import (
    Fragment,
    FragmentationPlan,
    fragment_document,
    fragment_name,
    is_fragment_of,
)

__all__ = [
    "Allocation",
    "Catalog",
    "Fragment",
    "FragmentationPlan",
    "allocate_explicit",
    "allocate_partial",
    "allocate_total",
    "fragment_document",
    "fragment_name",
    "is_fragment_of",
]
