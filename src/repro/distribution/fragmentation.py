"""Structural, size-balanced document fragmentation.

The paper fragments the XMark database following Kurita et al. (AINA '07):
"the data is fragmented considering the structure and size of the document,
so that each generated fragment has a similar size. The fragmentation
approach used in this work makes all sites have similar volumes of data."

We implement that contract: the root's child subtrees are partitioned into
``k`` contiguous runs whose serialized sizes are as balanced as a greedy
sweep can make them (contiguity preserves document order inside each
fragment). Each fragment becomes an independent document named
``{name}#{index}`` sharing the original root tag, so fragment documents have
the same schema (and hence DataGuide shape) as the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DistributionError
from ..xml.model import Document, Element, _clone_subtree


def fragment_name(doc_name: str, index: int) -> str:
    return f"{doc_name}#{index}"


def is_fragment_of(name: str, doc_name: str) -> bool:
    return name.startswith(doc_name + "#")


@dataclass
class Fragment:
    name: str
    index: int
    document: Document
    size_bytes: int
    child_range: tuple[int, int]  # [start, end) indices into the original root


@dataclass
class FragmentationPlan:
    source_name: str
    fragments: list[Fragment] = field(default_factory=list)

    @property
    def names(self) -> list[str]:
        return [f.name for f in self.fragments]

    def balance_ratio(self) -> float:
        """max/min fragment size — 1.0 is perfectly balanced."""
        sizes = [f.size_bytes for f in self.fragments if f.size_bytes > 0]
        if not sizes:
            return 1.0
        return max(sizes) / min(sizes)

    def describe(self) -> str:
        lines = [f"fragmentation of {self.source_name!r}:"]
        for f in self.fragments:
            a, b = f.child_range
            lines.append(
                f"  {f.name}: children [{a}:{b}) "
                f"({b - a} subtrees, {f.size_bytes} bytes)"
            )
        return "\n".join(lines)


def fragment_document(doc: Document, k: int) -> FragmentationPlan:
    """Split ``doc`` into ``k`` size-balanced fragment documents.

    Raises :class:`DistributionError` when the document has fewer root
    children than fragments requested (a subtree is the atomic unit).
    """
    if k < 1:
        raise DistributionError(f"fragment count must be >= 1, got {k}")
    if doc.root is None:
        raise DistributionError(f"cannot fragment empty document {doc.name!r}")
    children = list(doc.root.children)
    if k == 1:
        copy = doc.clone(fragment_name(doc.name, 0))
        return FragmentationPlan(
            doc.name,
            [
                Fragment(
                    copy.name, 0, copy, copy.size_bytes(), (0, len(children))
                )
            ],
        )
    if len(children) < k:
        raise DistributionError(
            f"document {doc.name!r} has {len(children)} root subtrees; "
            f"cannot make {k} non-empty fragments"
        )

    sizes = [_subtree_bytes(c) for c in children]
    total = sum(sizes)
    plan = FragmentationPlan(doc.name)
    start = 0
    acc = 0
    boundaries: list[tuple[int, int]] = []
    for frag_idx in range(k):
        remaining_frags = k - frag_idx
        remaining_children = len(children) - start
        # Always leave at least one child per remaining fragment.
        end = start
        target = (total - acc) / remaining_frags
        frag_acc = 0
        while end < len(children) and (len(children) - end) > (remaining_frags - 1):
            next_size = sizes[end]
            # take the child if the fragment is empty or it improves balance
            if frag_acc > 0 and abs(frag_acc + next_size - target) > abs(frag_acc - target):
                break
            frag_acc += next_size
            end += 1
        if end == start:  # ensure progress
            frag_acc = sizes[start]
            end = start + 1
        boundaries.append((start, end))
        acc += frag_acc
        start = end
    # any remaining children (shouldn't happen) go to the last fragment
    if start < len(children):
        s, _ = boundaries[-1]
        boundaries[-1] = (s, len(children))

    for frag_idx, (a, b) in enumerate(boundaries):
        root = Element(doc.root.tag, dict(doc.root.attrib), doc.root.text)
        frag_doc = Document(fragment_name(doc.name, frag_idx), root)
        for child in children[a:b]:
            root.append(_clone_subtree(child))
        plan.fragments.append(
            Fragment(frag_doc.name, frag_idx, frag_doc, frag_doc.size_bytes(), (a, b))
        )
    return plan


def _subtree_bytes(node: Element) -> int:
    total = 0
    for n in node.iter_subtree():
        total += 2 * len(n.tag) + 5
        for k, v in n.attrib.items():
            total += len(k) + len(v) + 4
        if n.text:
            total += len(n.text)
    return total
