"""Placement policies: one ``place()`` front door for every allocation shape.

Six PRs of growth left four ad-hoc allocation helpers with four different
signatures (``allocate_total`` / ``allocate_replicated`` / ``allocate_partial``
/ ``allocate_explicit``). This module collapses them behind a single
:class:`PlacementPolicy` interface::

    alloc = ReplicatedPlacement(factor=2).place(documents, sites)
    cluster = DTXCluster.from_allocation(alloc)

Every policy answers the same question — *which sites hold a copy of which
document, and who is primary* — and returns the same
:class:`~repro.distribution.allocation.Allocation`. The old helpers remain
as thin deprecated aliases over these classes.

:class:`HashRingPlacement` is the elastic-sharding policy: placement is a
pure function of a consistent-hash ring over the site set, so adding or
removing a site moves only the documents whose ring arcs the change
touches. The difference between two ring placements is exactly the
migration plan the :class:`~repro.distribution.migration.MigrationManager`
executes online.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

from ..errors import DistributionError
from ..xml.model import Document
from .allocation import Allocation
from .catalog import Catalog
from .fragmentation import fragment_document
from .replication import replica_placement


class PlacementPolicy(ABC):
    """Maps a set of documents onto a set of sites.

    ``place(documents, sites)`` returns an :class:`Allocation`: the catalog
    (placement + primaries) plus the concrete document copies each site
    must load. Policies are small value objects — construct once, reuse
    freely; ``place`` never mutates the inputs.
    """

    @abstractmethod
    def place(
        self, documents: Sequence[Document], sites: Sequence[Hashable]
    ) -> Allocation:
        """Compute the allocation of ``documents`` across ``sites``."""

    @staticmethod
    def _require_sites(sites: Sequence[Hashable]) -> None:
        if not sites:
            raise DistributionError("need at least one site")


@dataclass(frozen=True)
class TotalPlacement(PlacementPolicy):
    """Every document replicated on every site (paper §3.2, total regime)."""

    def place(
        self, documents: Sequence[Document], sites: Sequence[Hashable]
    ) -> Allocation:
        self._require_sites(sites)
        catalog = Catalog()
        alloc = Allocation(catalog, {s: [] for s in sites})
        for doc in documents:
            catalog.add(doc.name, sites)
            for site in sites:
                alloc.site_documents[site].append(doc.clone())
        return alloc


@dataclass(frozen=True)
class ReplicatedPlacement(PlacementPolicy):
    """Whole-document replication at ``factor`` sites each.

    Primaries rotate round-robin so no single site coordinates every
    document; each document's ``factor - 1`` secondaries sit on the
    following sites. ``factor == len(sites)`` is total replication.
    """

    factor: int = 2

    def place(
        self, documents: Sequence[Document], sites: Sequence[Hashable]
    ) -> Allocation:
        self._require_sites(sites)
        catalog = Catalog()
        alloc = Allocation(catalog, {s: [] for s in sites})
        for i, doc in enumerate(documents):
            placement = replica_placement(i, sites, self.factor)
            catalog.add(doc.name, placement)
            for site in placement:
                alloc.site_documents[site].append(doc.clone())
        return alloc


@dataclass(frozen=True)
class PartialPlacement(PlacementPolicy):
    """Fragment each document and spread the fragments round-robin.

    ``fragments_per_doc`` defaults to the number of sites (the paper's
    setup: similar data volume everywhere). ``replicas`` > 1 places each
    fragment on that many consecutive sites. The fragmentation plans land
    on ``Allocation.fragment_plans``.
    """

    replicas: int = 1
    fragments_per_doc: int | None = None

    def place(
        self, documents: Sequence[Document], sites: Sequence[Hashable]
    ) -> Allocation:
        self._require_sites(sites)
        if self.replicas < 1 or self.replicas > len(sites):
            raise DistributionError(
                f"replicas must be in [1, {len(sites)}], got {self.replicas}"
            )
        k = self.fragments_per_doc if self.fragments_per_doc is not None else len(sites)
        catalog = Catalog()
        alloc = Allocation(catalog, {s: [] for s in sites})
        for doc in documents:
            plan = fragment_document(doc, k)
            alloc.fragment_plans.append(plan)
            for frag in plan.fragments:
                home = frag.index % len(sites)
                placement = [
                    sites[(home + r) % len(sites)] for r in range(self.replicas)
                ]
                catalog.add(frag.name, placement)
                for site in placement:
                    alloc.site_documents[site].append(frag.document.clone())
        return alloc


@dataclass(frozen=True)
class ExplicitPlacement(PlacementPolicy):
    """Fully explicit placement (the paper's §2.4 scenario: d1 on s1+s2,
    d2 only on s2). ``placements`` maps document name -> site sequence;
    the ``sites`` argument of ``place`` may extend the site set with
    sites that hold nothing (they still get an empty document list)."""

    placements: Mapping[str, Sequence[Hashable]] = field(default_factory=dict)

    def place(
        self, documents: Sequence[Document], sites: Sequence[Hashable] = ()
    ) -> Allocation:
        by_name = {doc.name: doc for doc in documents}
        catalog = Catalog()
        all_sites: set = set(sites)
        for placement in self.placements.values():
            all_sites.update(placement)
        if not all_sites:
            raise DistributionError("need at least one site")
        alloc = Allocation(catalog, {s: [] for s in sorted(all_sites, key=str)})
        for name, placement in self.placements.items():
            if name not in by_name:
                raise DistributionError(f"no document supplied for placement {name!r}")
            catalog.add(name, placement)
            for site in placement:
                alloc.site_documents[site].append(by_name[name].clone())
        return alloc


# ----------------------------------------------------------------------
# consistent hashing
# ----------------------------------------------------------------------


def _hash64(key: str) -> int:
    """Stable 64-bit hash (blake2b — identical across runs and platforms,
    unlike the salted builtin ``hash``)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring over a site set.

    Each site contributes ``vnodes`` virtual points; a key's replica set
    is the first ``factor`` *distinct* sites clockwise from the key's
    hash. The classic minimal-movement property follows: adding (or
    removing) one site changes a key's replica set by at most one member —
    only keys whose successor window the new site's points fall into move
    at all, ~``1/n`` of them in expectation.
    """

    def __init__(self, sites: Sequence[Hashable], vnodes: int = 64):
        if not sites:
            raise DistributionError("need at least one site")
        if len(set(sites)) != len(sites):
            raise DistributionError("duplicate sites in hash ring")
        if vnodes < 1:
            raise DistributionError("vnodes must be >= 1")
        self.sites = tuple(sites)
        self.vnodes = vnodes
        points = []
        for site in sites:
            for v in range(vnodes):
                points.append((_hash64(f"{site}#{v}"), site))
        points.sort(key=lambda p: (p[0], str(p[1])))
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def placement(self, key: str, factor: int) -> tuple[Hashable, ...]:
        """The first ``factor`` distinct sites clockwise from ``key``
        (primary first). ``factor`` is clamped to the ring's site count."""
        factor = max(1, min(factor, len(self.sites)))
        start = bisect_right(self._hashes, _hash64(key))
        chosen: list[Hashable] = []
        seen: set = set()
        n = len(self._owners)
        for k in range(n):
            site = self._owners[(start + k) % n]
            if site not in seen:
                seen.add(site)
                chosen.append(site)
                if len(chosen) == factor:
                    break
        return tuple(chosen)


@dataclass(frozen=True)
class HashRingPlacement(PlacementPolicy):
    """Consistent-hash placement: each document's replica set is the first
    ``factor`` distinct sites clockwise from its name's hash.

    The elastic policy behind ``python -m repro scale``: recomputing the
    placement after a site joins or leaves yields a new allocation that
    differs from the old one only on the ring arcs the change touched —
    :func:`ring_rebalance` turns that difference into the migration list.
    """

    factor: int = 2
    vnodes: int = 64

    def ring(self, sites: Sequence[Hashable]) -> HashRing:
        return HashRing(sites, vnodes=self.vnodes)

    def place(
        self, documents: Sequence[Document], sites: Sequence[Hashable]
    ) -> Allocation:
        self._require_sites(sites)
        ring = self.ring(sites)
        catalog = Catalog()
        alloc = Allocation(catalog, {s: [] for s in sites})
        for doc in documents:
            placement = ring.placement(doc.name, self.factor)
            catalog.add(doc.name, placement)
            for site in placement:
                alloc.site_documents[site].append(doc.clone())
        return alloc


def ring_rebalance(
    policy: HashRingPlacement,
    doc_names: Sequence[str],
    old_sites: Sequence[Hashable],
    new_sites: Sequence[Hashable],
) -> dict[str, tuple[Hashable, ...]]:
    """The migration plan from one site set to another.

    Maps each document whose ring placement changes to its *new* replica
    set (primary first) — exactly the argument list for
    :meth:`~repro.distribution.migration.MigrationManager.migrate`.
    Documents whose placement is unchanged are omitted (consistent
    hashing keeps this map small: ~``1/n`` of the keys per site change).
    """
    old_ring = policy.ring(old_sites)
    new_ring = policy.ring(new_sites)
    moves: dict[str, tuple[Hashable, ...]] = {}
    for name in doc_names:
        before = old_ring.placement(name, policy.factor)
        after = new_ring.placement(name, policy.factor)
        if before != after:
            moves[name] = after
    return moves
