"""Online fragment migration: move a replica set while traffic flows.

The elastic-sharding half of the ROADMAP's "millions of users" north star:
a document's placement was fixed at allocation time until now; the
:class:`MigrationManager` moves it — grow the replica set, catch the new
copies up, cut the primary over, retire the old copies — without stopping
client traffic. No new consistency machinery is introduced: every phase
leans on the epoch/LSN substrate PRs 2/4/5 built.

Phases (per migration)::

    JOIN ──► CATCH-UP ──► CUTOVER ──► DRAIN ──► RETIRE
      │          │            │                    │
      │          │            │                    └─ placement shrinks first
      │          │            └─ epoch bump fences the old primary
      │          └─ snapshot transfer + log replay (existing catch-up path)
      └─ placement grows: every commit now fans to the joiner too
         (the dual-write window)

**JOIN.** Each joining site adopts an empty placeholder and the shared
placement is extended in the same event — from that instant commit-time
replica sync fans to the joiner as well (writes land at old *and* new
copies: the dual-write window), and the joiner's first catch-up round
pulls a full snapshot because its empty log is off every timeline.

**CATCH-UP.** The manager polls until every joiner's applied watermark
reaches the live replicas' recorded tip, re-nudging the ordinary
anti-entropy path (:meth:`DTXSite.nudge_catch_up`) each round — crashes
and partitions during the window only delay the poll, they cannot corrupt
it, because catch-up is idempotent and epoch-fenced.

**CUTOVER** (only when the primary moves). The readiness check and the
promotion happen in one simulation event, so no commit can slip between
them. Under the perfect detector the manager mutates the shared catalog
(the same oracle stand-in the failure monitor uses): ``set_primary`` bumps
the document's election epoch, so any in-flight sync stamped by the old
primary is refused as ``stale-epoch`` and its transaction unwinds — the
fencing rule that already guards failover guards cutover. Under the lease
detector the cutover travels as messages: the manager asks the *target* to
assume primacy (:meth:`DTXSite.request_primacy`), which claims a unique
epoch and broadcasts a ``PrimaryAnnounce`` exactly like an election
winner. Cutover requires the target's log contiguous **and** at the goal
LSN, re-checked atomically at promotion time: a committed write can
therefore never sit above the new primary's tip when the epoch turns.

**DRAIN / RETIRE.** The placement shrinks first (new operations stop
routing to the leavers), then a drain window lets in-flight requests
finish, then each leaver drops its copy once no in-flight transaction
touches it at that site. A leaver that stays busy or crashed keeps its
(inert, unroutable) copy rather than risking an active transaction.

The manager is schedule-transparent when unused: constructing it spawns
no process and draws no randomness; default-config runs are bit-identical
with or without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Sequence

from ..errors import ConfigError, DistributionError

#: Phase names, in order; ``done``/``stalled`` are terminal.
PHASES = ("join", "catchup", "cutover", "drain", "retire", "done", "stalled")


@dataclass
class Migration:
    """One in-flight (or finished) placement move."""

    doc_name: str
    targets: tuple  # new placement, primary first
    label: str = ""
    started_ms: float = 0.0
    finished_ms: float = 0.0
    phase: str = "join"
    ok: bool = False  # True once the move fully completed
    joined: tuple = ()  # sites that gained a copy
    retired: tuple = ()  # sites that dropped their copy
    kept_inert: tuple = ()  # leavers whose copy could not be dropped safely
    cutover_epoch: int = 0  # epoch the new primary leads under (0 = no cutover)
    done: object = None  # env event, fires with the Migration when terminal

    @property
    def finished(self) -> bool:
        return self.phase in ("done", "stalled")


@dataclass
class MigrationStats:
    started: int = 0
    completed: int = 0
    stalled: int = 0
    replicas_added: int = 0
    replicas_retired: int = 0
    cutovers: int = 0
    log: list = field(default_factory=list)  # (time, doc, old, new, phase)


class MigrationManager:
    """Moves documents' replica sets online, one process per migration.

    Cluster-level, like the failure monitor: under the perfect detector it
    reads log tips and mutates the shared catalog directly (the in-process
    stand-in for the admin RPCs of a real deployment); under the lease
    detector promotions travel as messages through the target site.

    Parameters
    ----------
    poll_interval_ms:
        Cadence of the catch-up / readiness / quiescence polls.
    drain_ms:
        How long the placement shrink rests before copies are dropped —
        must comfortably exceed one network round so in-flight requests
        routed against the old placement land before their copy vanishes.
    max_poll_rounds:
        Patience per waiting phase; a migration that cannot make progress
        (e.g. its target never recovers) parks as ``stalled`` with the
        placement left as a safe superset — data is never dropped on a
        stalled move.
    """

    def __init__(
        self,
        cluster,
        poll_interval_ms: float = 2.0,
        drain_ms: float = 5.0,
        max_poll_rounds: int = 500,
    ):
        if cluster.replication.write_policy == "all":
            raise ConfigError(
                "online migration requires a primary-copy write regime "
                "(replica_write_policy 'primary', 'quorum' or 'lazy'): the "
                "write-all regime keeps no update logs to catch a joining "
                "replica up from"
            )
        self.cluster = cluster
        self.env = cluster.env
        self.catalog = cluster.catalog  # the shared catalog (placement truth)
        self.sites = cluster.sites
        self.poll_interval_ms = poll_interval_ms
        self.drain_ms = drain_ms
        self.max_poll_rounds = max_poll_rounds
        self.stats = MigrationStats()
        self.active: dict[str, Migration] = {}  # doc -> in-flight migration
        self.history: list[Migration] = []

    @property
    def _lease(self) -> bool:
        return self.cluster.config.failure_detector == "lease"

    # -- public API --------------------------------------------------------

    def migrate(
        self, doc_name: str, targets: Sequence[Hashable], label: str = ""
    ) -> Migration:
        """Start moving ``doc_name`` to ``targets`` (first = new primary).

        Returns immediately with the :class:`Migration` record; its
        ``done`` event fires when the move completes (or parks as
        ``stalled``). One migration per document at a time.
        """
        targets = tuple(targets)
        if not targets:
            raise DistributionError("migration needs at least one target site")
        if len(set(targets)) != len(targets):
            raise DistributionError(f"duplicate sites in migration of {doc_name!r}")
        for s in targets:
            if s not in self.sites:
                raise DistributionError(f"unknown migration target site {s!r}")
        if not self.catalog.has_document(doc_name):
            raise DistributionError(f"document {doc_name!r} not in catalog")
        if doc_name in self.active:
            raise DistributionError(
                f"a migration of {doc_name!r} is already in flight"
            )
        mig = Migration(
            doc_name=doc_name,
            targets=targets,
            label=label,
            started_ms=self.env.now,
            done=self.env.event(),
        )
        self.active[doc_name] = mig
        self.stats.started += 1
        self.stats.log.append(
            (self.env.now, doc_name, self.catalog.sites_for(doc_name), targets, "start")
        )
        self.env.process(self._run(mig))
        return mig

    def quiesced(self) -> bool:
        """True when no migration is in flight."""
        return not self.active

    # -- the migration process ---------------------------------------------

    def _finish(self, mig: Migration, phase: str) -> None:
        mig.phase = phase
        mig.ok = phase == "done"
        mig.finished_ms = self.env.now
        if mig.ok:
            self.stats.completed += 1
        else:
            self.stats.stalled += 1
        self.active.pop(mig.doc_name, None)
        self.history.append(mig)
        self.stats.log.append(
            (
                self.env.now,
                mig.doc_name,
                None,
                self.catalog.sites_for(mig.doc_name),
                phase,
            )
        )
        if mig.done is not None and not mig.done.triggered:
            mig.done.succeed(mig)

    def _run(self, mig):
        doc = mig.doc_name
        if tuple(self.catalog.sites_for(doc)) == mig.targets:
            self._finish(mig, "done")  # placement already exact: no-op
            return
        yield (0.0)  # detach from the caller's event turn

        # -- JOIN: grow the placement; dual-write window opens -------------
        joiners = [s for s in mig.targets if s not in self.catalog.sites_for(doc)]
        pending = list(joiners)
        for _ in range(self.max_poll_rounds):
            still = []
            for s in pending:
                site = self.sites[s]
                if not site.alive:
                    still.append(s)  # admit once it recovers
                    continue
                site.adopt_placeholder(doc)
                # Same event turn as the placeholder install: a sync can
                # never race between placement extension and hosting.
                existing = self.catalog.sites_for(doc)
                if s not in existing:
                    self.catalog.add(doc, (*existing, s))
                site.nudge_catch_up(doc)
                self.stats.replicas_added += 1
            pending = still
            if not pending:
                break
            yield (self.poll_interval_ms)
        if pending:
            self._finish(mig, "stalled")
            return
        mig.joined = tuple(joiners)

        # -- CATCH-UP: every joiner reaches the live recorded tip ----------
        mig.phase = "catchup"
        caught_up = yield from self._await_caught_up(doc, joiners)
        if not caught_up:
            self._finish(mig, "stalled")
            return

        # -- CUTOVER: move the primary under an epoch bump -----------------
        mig.phase = "cutover"
        new_primary = mig.targets[0]
        if not (yield from self._cutover(mig, new_primary)):
            self._finish(mig, "stalled")
            return

        # -- DRAIN + RETIRE: shrink the placement, then drop the copies ----
        mig.phase = "drain"
        leavers = [s for s in self.catalog.sites_for(doc) if s not in mig.targets]
        if not self._current_primary_in(doc, mig.targets):
            # A failover raced the move and re-pointed the primary outside
            # the target set: leave the superset placement (safe) rather
            # than shrink it out from under the new regime.
            self._finish(mig, "stalled")
            return
        self.catalog.add(doc, mig.targets)  # new operations stop routing out
        yield (self.drain_ms)
        mig.phase = "retire"
        retired, inert = yield from self._retire(doc, leavers)
        mig.retired = tuple(retired)
        mig.kept_inert = tuple(inert)
        self._finish(mig, "done")

    # -- helpers -----------------------------------------------------------

    def _live_recorded_tip(self, doc: str) -> int:
        """The highest LSN durably recorded at any live replica — every
        committed write is at or below it (a committed batch is recorded
        at the primary, and at W-1 further replicas under quorum)."""
        tip = 0
        for s in self.catalog.sites_for(doc):
            site = self.sites[s]
            if site.alive and site.data_manager.is_loaded(doc):
                tip = max(tip, site.log_for(doc).max_recorded_lsn)
        return tip

    def _await_caught_up(self, doc: str, joiners: list):
        """Poll (and re-nudge) until every joiner's applied watermark
        reaches the live recorded tip. The goal is recomputed each round:
        traffic keeps flowing, but the joiners ride the sync fan-out, so
        the gap closes once the snapshot lands."""
        for _ in range(self.max_poll_rounds):
            goal = self._live_recorded_tip(doc)
            lagging = []
            for s in joiners:
                site = self.sites[s]
                if (
                    not site.alive
                    or site.holds_placeholder(doc)  # snapshot not landed yet
                    or site.log_for(doc).applied_lsn < goal
                ):
                    lagging.append(s)
            if not lagging:
                return True
            for s in lagging:
                site = self.sites[s]
                if site.alive:
                    site.nudge_catch_up(doc)
            yield (self.poll_interval_ms)
        return False

    def _current_primary_in(self, doc: str, targets: tuple) -> bool:
        if not self._lease:
            return self.catalog.replica_set(doc).primary in targets
        # Lease mode: the authoritative belief is the target primary's own
        # view (the announce it broadcast); the shared catalog only holds
        # the placement.
        return self.sites[targets[0]].catalog.replica_set(doc).primary in targets

    def _cutover(self, mig: Migration, new_primary):
        """Promote ``new_primary`` once it provably holds every committed
        write. Readiness and promotion share one event turn, so no commit
        can land in between."""
        doc = mig.doc_name
        for _ in range(self.max_poll_rounds):
            target = self.sites[new_primary]
            if self._lease:
                if target.alive:
                    # The target re-checks readiness itself (atomically, in
                    # its own event) and runs the election winner's path:
                    # claim a unique epoch, announce, fence the old primary.
                    promoted = yield target.request_primacy(
                        doc, self._live_recorded_tip(doc)
                    )
                    if promoted:
                        mig.cutover_epoch = target.catalog.epoch(doc)
                        self.stats.cutovers += 1
                        return True
            else:
                rset = self.catalog.replica_set(doc)
                if rset.primary == new_primary:
                    return True  # already leads (no-op or failover got there)
                log = target.log_for(doc)
                goal = self._live_recorded_tip(doc)
                if (
                    target.alive
                    and target.data_manager.is_loaded(doc)
                    and not target.holds_placeholder(doc)
                    and log.applied_lsn == log.max_recorded_lsn
                    and log.applied_lsn >= goal
                ):
                    # Atomic with the check above: same event turn, no yield.
                    old = rset.primary
                    self.catalog.set_primary(doc, new_primary)  # bumps epoch
                    self.catalog.reset_lsn(doc, log.max_recorded_lsn)
                    epoch = self.catalog.epoch(doc)
                    mig.cutover_epoch = epoch
                    self.stats.cutovers += 1
                    if self.cluster.faults is not None:
                        self.cluster.faults.record_promotion(
                            doc, old, new_primary, epoch
                        )
                    # Anti-entropy: survivors of the old regime may trail
                    # the new primary; nudge them like failover does.
                    for s in self.catalog.sites_for(doc):
                        other = self.sites[s]
                        if s != new_primary and other.alive:
                            other.nudge_catch_up(doc)
                    return True
            if self.sites[new_primary].alive:
                self.sites[new_primary].nudge_catch_up(doc)
            yield (self.poll_interval_ms)
        return False

    def _retire(self, doc: str, leavers: list):
        """Drop each leaver's copy once it is quiescent; keep it inert
        (placement already excludes it) when it never quiesces."""
        retired, inert = [], []
        for s in leavers:
            site = self.sites[s]
            dropped = False
            for _ in range(self.max_poll_rounds):
                if site.alive and not site.has_active_work_on(doc):
                    site.drop_document(doc)
                    self.stats.replicas_retired += 1
                    retired.append(s)
                    dropped = True
                    break
                yield (self.poll_interval_ms)
            if not dropped:
                inert.append(s)
        return retired, inert
