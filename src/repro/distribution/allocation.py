"""Allocation of documents/fragments to sites (paper Fig. 8).

Two replication regimes, matching §3.2:

* **total replication** — every document is copied to every site;
* **partial replication** — the database is fragmented (one fragment per
  site by default) and each fragment lives on its primary site, optionally
  with ``replicas - 1`` extra copies on the following sites (the bold
  entries in Fig. 8).

.. deprecated::
    The ``allocate_*`` helpers below are thin aliases kept for backward
    compatibility. New code should use the policy classes in
    :mod:`repro.distribution.placement` — ``TotalPlacement`` /
    ``ReplicatedPlacement`` / ``PartialPlacement`` / ``ExplicitPlacement``
    / ``HashRingPlacement`` — through the single
    ``place(documents, sites) -> Allocation`` entry point.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..xml.model import Document
from .catalog import Catalog
from .fragmentation import FragmentationPlan


@dataclass
class Allocation:
    """A catalog plus the concrete documents each site must load."""

    catalog: Catalog
    site_documents: dict[Hashable, list[Document]] = field(default_factory=dict)
    # Filled by PartialPlacement: one plan per fragmented source document.
    fragment_plans: list[FragmentationPlan] = field(default_factory=list)

    def documents_for(self, site_id: Hashable) -> list[Document]:
        return self.site_documents.get(site_id, [])

    def total_bytes_per_site(self) -> dict[Hashable, int]:
        return {
            site: sum(d.size_bytes() for d in docs)
            for site, docs in self.site_documents.items()
        }


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old}() is deprecated; use repro.distribution.placement.{new}"
        f".place(documents, sites) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def allocate_total(documents: Sequence[Document], site_ids: Sequence[Hashable]) -> Allocation:
    """Deprecated alias for :class:`~repro.distribution.placement.TotalPlacement`."""
    from .placement import TotalPlacement

    _deprecated("allocate_total", "TotalPlacement()")
    return TotalPlacement().place(documents, site_ids)


def allocate_replicated(
    documents: Sequence[Document],
    site_ids: Sequence[Hashable],
    factor: int,
) -> Allocation:
    """Deprecated alias for :class:`~repro.distribution.placement.ReplicatedPlacement`."""
    from .placement import ReplicatedPlacement

    _deprecated("allocate_replicated", "ReplicatedPlacement(factor)")
    return ReplicatedPlacement(factor=factor).place(documents, site_ids)


def allocate_partial(
    documents: Sequence[Document],
    site_ids: Sequence[Hashable],
    replicas: int = 1,
    fragments_per_doc: int | None = None,
) -> tuple[Allocation, list[FragmentationPlan]]:
    """Deprecated alias for :class:`~repro.distribution.placement.PartialPlacement`.

    The plans the old signature returned separately now also live on
    ``Allocation.fragment_plans``.
    """
    from .placement import PartialPlacement

    _deprecated("allocate_partial", "PartialPlacement(replicas, fragments_per_doc)")
    alloc = PartialPlacement(
        replicas=replicas, fragments_per_doc=fragments_per_doc
    ).place(documents, site_ids)
    return alloc, alloc.fragment_plans


def allocate_explicit(
    placements: dict[str, Sequence[Hashable]],
    documents: dict[str, Document],
) -> Allocation:
    """Deprecated alias for :class:`~repro.distribution.placement.ExplicitPlacement`."""
    from .placement import ExplicitPlacement

    _deprecated("allocate_explicit", "ExplicitPlacement(placements)")
    return ExplicitPlacement(placements=placements).place(list(documents.values()))
