"""Allocation of documents/fragments to sites (paper Fig. 8).

Two replication regimes, matching §3.2:

* **total replication** — every document is copied to every site;
* **partial replication** — the database is fragmented (one fragment per
  site by default) and each fragment lives on its primary site, optionally
  with ``replicas - 1`` extra copies on the following sites (the bold
  entries in Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..errors import DistributionError
from ..xml.model import Document
from .catalog import Catalog
from .fragmentation import FragmentationPlan, fragment_document
from .replication import replica_placement


@dataclass
class Allocation:
    """A catalog plus the concrete documents each site must load."""

    catalog: Catalog
    site_documents: dict[Hashable, list[Document]] = field(default_factory=dict)

    def documents_for(self, site_id: Hashable) -> list[Document]:
        return self.site_documents.get(site_id, [])

    def total_bytes_per_site(self) -> dict[Hashable, int]:
        return {
            site: sum(d.size_bytes() for d in docs)
            for site, docs in self.site_documents.items()
        }


def allocate_total(documents: Sequence[Document], site_ids: Sequence[Hashable]) -> Allocation:
    """Every document replicated on every site."""
    if not site_ids:
        raise DistributionError("need at least one site")
    catalog = Catalog()
    alloc = Allocation(catalog, {s: [] for s in site_ids})
    for doc in documents:
        catalog.add(doc.name, site_ids)
        for site in site_ids:
            alloc.site_documents[site].append(doc.clone())
    return alloc


def allocate_replicated(
    documents: Sequence[Document],
    site_ids: Sequence[Hashable],
    factor: int,
) -> Allocation:
    """Whole-document replication at ``factor`` sites each.

    Primaries rotate round-robin so no single site coordinates every
    document; each document's ``factor - 1`` secondaries sit on the
    following sites. ``factor == len(site_ids)`` is total replication.
    """
    if not site_ids:
        raise DistributionError("need at least one site")
    catalog = Catalog()
    alloc = Allocation(catalog, {s: [] for s in site_ids})
    for i, doc in enumerate(documents):
        placement = replica_placement(i, site_ids, factor)
        catalog.add(doc.name, placement)
        for site in placement:
            alloc.site_documents[site].append(doc.clone())
    return alloc


def allocate_partial(
    documents: Sequence[Document],
    site_ids: Sequence[Hashable],
    replicas: int = 1,
    fragments_per_doc: int | None = None,
) -> tuple[Allocation, list[FragmentationPlan]]:
    """Fragment each document and spread the fragments round-robin.

    ``fragments_per_doc`` defaults to the number of sites (the paper's
    setup: similar data volume everywhere). ``replicas`` > 1 places each
    fragment on that many consecutive sites.
    """
    if not site_ids:
        raise DistributionError("need at least one site")
    if replicas < 1 or replicas > len(site_ids):
        raise DistributionError(
            f"replicas must be in [1, {len(site_ids)}], got {replicas}"
        )
    k = fragments_per_doc if fragments_per_doc is not None else len(site_ids)
    catalog = Catalog()
    alloc = Allocation(catalog, {s: [] for s in site_ids})
    plans: list[FragmentationPlan] = []
    for doc in documents:
        plan = fragment_document(doc, k)
        plans.append(plan)
        for frag in plan.fragments:
            home = frag.index % len(site_ids)
            placement = [
                site_ids[(home + r) % len(site_ids)] for r in range(replicas)
            ]
            catalog.add(frag.name, placement)
            for site in placement:
                alloc.site_documents[site].append(frag.document.clone())
    return alloc, plans


def allocate_explicit(
    placements: dict[str, Sequence[Hashable]],
    documents: dict[str, Document],
) -> Allocation:
    """Fully explicit placement (used by the paper's §2.4 scenario: d1 on
    s1+s2, d2 only on s2)."""
    catalog = Catalog()
    sites: set = set()
    for placement in placements.values():
        sites.update(placement)
    alloc = Allocation(catalog, {s: [] for s in sorted(sites)})
    for name, placement in placements.items():
        if name not in documents:
            raise DistributionError(f"no document supplied for placement {name!r}")
        catalog.add(name, placement)
        for site in placement:
            alloc.site_documents[site].append(documents[name].clone())
    return alloc
