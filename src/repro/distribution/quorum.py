"""Quorum replication (R+W > N): the regime between eager and lazy.

The paper's scheduler relies on every copy of a document exposing a single
update timeline; PR 1-4 achieved that either by paying the slowest replica
on every commit (eager primary-copy: the commit waits for *all* live
secondaries) or by giving up commit-time freshness altogether (lazy
propagation). Quorum intersection buys back most of both: a write is
committed once it is durable at **W** replicas (the primary included), a
read consults the version state of **R** replicas and executes at one that
provably holds every committed write, and ``R + W > N`` guarantees the two
sets overlap — the availability/consistency middle ground studied for
distributed XML placement (Abiteboul et al., *Distributed XML Design*) and
the run-time consistency knob of adaptive concurrency control schemes
(*O|R|P|E*).

Concretely, with ``replica_write_policy="quorum"``:

* writes still lock and execute at the **primary** only (the primary's
  lock table keeps ordering conflicting writers — quorums replace the
  *ack barrier*, not the serialization point);
* at commit the update batch is shipped to every live secondary exactly
  like the eager regime, but the commit point fires as soon as ``W``
  replicas (primary's durable log record + ``W - 1`` sync acks) have it —
  stragglers apply the batch late or converge through the existing
  catch-up / heartbeat-watermark anti-entropy paths;
* ``W > N/2`` keeps any two write quorums (and every lease-mode election
  majority) overlapping, so the epoch fencing of PR 2-4 carries over
  unchanged.

With ``replica_read_policy="quorum"`` a query fans a version probe
(per-document applied LSN + election epoch) to ``R`` replicas, executes at
the freshest responder that provably covers every committed write, and
nudges the laggards it discovered into catch-up (**read repair**).

The freshness rule needs care because replicas apply *commuting* batches
out of order (see :class:`~repro.distribution.replication.UpdateLog`): a
replica may have **recorded** LSN 7 while a hole at 5 keeps its contiguous
**applied** watermark at 4. Every committed write is recorded at some
probed replica (quorum intersection), so ``M = max(max_recorded_lsn)``
over the probes bounds every committed LSN — and a responder is a safe
execution target iff its *applied* watermark has reached ``M``. When no
responder qualifies (racing batches still in flight), the primary is the
universal fallback: primary-copy writes execute there before they commit
anywhere, so its live tree covers every committed write by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from ..errors import ConfigError


def majority(n: int) -> int:
    """Smallest integer strictly greater than ``n / 2``."""
    return n // 2 + 1


@dataclass(frozen=True)
class QuorumSpec:
    """Resolved (N, R, W) for one replica set, with the intersection laws.

    ``read_quorum + write_quorum > n`` makes every read quorum overlap
    every write quorum (a quorum read cannot miss a committed write);
    ``2 * write_quorum > n`` makes write quorums overlap *each other* (two
    concurrent regimes cannot both assemble one, which is what lets the
    election/epoch machinery fence a deposed primary's writers).
    """

    n: int
    read_quorum: int
    write_quorum: int

    def validate(self) -> None:
        if self.n < 2:
            raise ConfigError(
                f"quorum replication needs at least 2 replicas, got n={self.n}"
            )
        for name, value in (
            ("read_quorum", self.read_quorum),
            ("write_quorum", self.write_quorum),
        ):
            if not 1 <= value <= self.n:
                raise ConfigError(
                    f"{name} must be in [1, {self.n}], got {value}"
                )
        if self.read_quorum + self.write_quorum <= self.n:
            raise ConfigError(
                f"quorums must intersect: R + W > N required, got "
                f"R={self.read_quorum} + W={self.write_quorum} <= N={self.n}"
            )
        if 2 * self.write_quorum <= self.n:
            raise ConfigError(
                f"write quorums must intersect each other: W > N/2 required, "
                f"got W={self.write_quorum}, N={self.n}"
            )

    @classmethod
    def resolve(cls, n: int, r: int = 0, w: int = 0) -> "QuorumSpec":
        """Effective quorums for a replica set of degree ``n``.

        ``0`` means "majority" for either knob. Explicitly configured
        values are honoured when they are lawful for this degree; a value
        that is not (a document replicated at fewer sites than the
        configured ``replication_factor`` can shrink N below a configured
        R or W) falls back to the majority, which satisfies both
        intersection laws for every N >= 2.
        """
        w_eff = w if (0 < w <= n and 2 * w > n) else majority(n)
        r_eff = r if 0 < r <= n else majority(n)
        if r_eff + w_eff <= n:
            r_eff = n - w_eff + 1
        spec = cls(n=n, read_quorum=r_eff, write_quorum=w_eff)
        spec.validate()
        return spec


@dataclass(frozen=True)
class VersionVector:
    """One replica's answer to a version probe: its durable log position."""

    site: Hashable
    epoch: int
    applied_lsn: int  # highest gapless LSN (every earlier batch applied)
    max_recorded_lsn: int  # highest LSN recorded at all (holes allowed)

    @property
    def order_key(self) -> tuple:
        return (self.epoch, self.applied_lsn)


def version_frontier(reports: dict) -> tuple:
    """``(top_epoch, frontier)`` of a probe round's reports.

    The newest log-tip epoch any responder reported, and the highest
    recorded LSN among *those* responders — the current timeline's known
    extent. This is the read-repair target and the primary-fallback gate;
    :func:`choose_read_replica` uses the same numbers for its laggard
    listing so the two views of "behind" cannot drift apart.
    """
    top_epoch = max(v.epoch for v in reports.values())
    frontier = max(
        v.max_recorded_lsn for v in reports.values() if v.epoch == top_epoch
    )
    return top_epoch, frontier


def choose_read_replica(
    reports: dict,
    primary: Hashable,
    preferred: Optional[Hashable] = None,
    placement: tuple = (),
) -> tuple:
    """Pick the execution site for a quorum read; returns (winner, laggards).

    ``reports`` maps site -> :class:`VersionVector` (one per probe
    response). The winner is the freshest responder that provably covers
    every write committed before the probe round: it reports the newest
    election epoch seen, and its *applied* watermark has reached ``M``,
    the highest *recorded* LSN across **all** reports. Quorum
    intersection puts every committed write's LSN at or below ``M`` —
    and the report carrying that evidence may well be from a *deposed*
    epoch (a healed ex-primary still holds the committed prefix under the
    old number); restricting the frontier to max-epoch reports would
    throw the evidence away and hand the read to a new-timeline replica
    that has not caught up past it yet. A deposed tail can also alias
    LSNs the new timeline reused, which only ever *inflates* ``M`` —
    conservative: the read falls back to the primary rather than trusting
    an unprovable responder. The believed ``primary`` qualifies
    regardless of its watermark — primary-copy writes execute there
    before committing anywhere, so its live tree is always complete. Ties
    prefer ``preferred`` (the coordinator's own replica: zero network
    hops), then ``placement`` order. Returns ``winner=None`` when no
    responder qualifies (racing in-flight commits, or only stale-epoch
    evidence): the caller falls back to the primary or retries.

    ``laggards`` lists the responding sites that are provably behind —
    on a stale epoch, or with an applied watermark below the *top-epoch*
    frontier (the all-reports frontier gates eligibility only: a fenced
    tail's aliased LSNs must not flag caught-up current-timeline replicas
    for repair they don't need).
    """
    if not reports:
        return None, []
    top_epoch, top_frontier = version_frontier(reports)
    frontier = max(v.max_recorded_lsn for v in reports.values())
    order = list(placement)

    def rank(site: Hashable) -> tuple:
        v = reports[site]
        return (
            -v.applied_lsn,
            0 if site == preferred else 1,
            order.index(site) if site in order else len(order),
        )

    eligible = [
        site
        for site, v in reports.items()
        if v.epoch == top_epoch
        and (v.applied_lsn >= frontier or site == primary)
    ]
    winner = min(eligible, key=rank) if eligible else None
    laggards = [
        site
        for site, v in sorted(reports.items(), key=lambda kv: str(kv[0]))
        if site != winner
        and (v.epoch < top_epoch or v.applied_lsn < top_frontier)
    ]
    return winner, laggards
