"""The placement catalog: which sites hold a copy of which document.

DTX routes every operation to *all* sites holding the target document
(paper Alg. 1: "it will be sent and executed in all the participants that
contain the data involved in this operation") — replicas are kept
synchronously identical, which is why total replication pays a
synchronization cost even for read-only workloads (Fig. 9).
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..errors import DistributionError
from .replication import ReplicaSet


class Catalog:
    def __init__(self) -> None:
        self._placement: dict[str, tuple[Hashable, ...]] = {}

    def add(self, doc_name: str, site_ids: Iterable[Hashable]) -> None:
        sites = tuple(site_ids)
        if not sites:
            raise DistributionError(f"document {doc_name!r} must live somewhere")
        if len(set(sites)) != len(sites):
            raise DistributionError(f"duplicate sites in placement of {doc_name!r}")
        self._placement[doc_name] = sites

    def sites_for(self, doc_name: str) -> tuple[Hashable, ...]:
        try:
            return self._placement[doc_name]
        except KeyError:
            raise DistributionError(f"document {doc_name!r} not in catalog") from None

    def has_document(self, doc_name: str) -> bool:
        return doc_name in self._placement

    def documents_at(self, site_id: Hashable) -> list[str]:
        return sorted(d for d, sites in self._placement.items() if site_id in sites)

    def all_documents(self) -> list[str]:
        return sorted(self._placement)

    def all_sites(self) -> list:
        sites: set = set()
        for placement in self._placement.values():
            sites.update(placement)
        return sorted(sites)

    def primary_site(self, doc_name: str) -> Hashable:
        """First site in the placement (deterministic coordinator choice)."""
        return self.sites_for(doc_name)[0]

    def replica_set(self, doc_name: str) -> ReplicaSet:
        """The placement as a :class:`ReplicaSet` (primary = first site)."""
        sites = self.sites_for(doc_name)
        return ReplicaSet(doc_name=doc_name, primary=sites[0], secondaries=sites[1:])

    def set_primary(self, doc_name: str, site_id: Hashable) -> None:
        """Promote ``site_id`` to primary by reordering the placement."""
        sites = self.sites_for(doc_name)
        if site_id not in sites:
            raise DistributionError(
                f"site {site_id!r} holds no replica of {doc_name!r}"
            )
        self._placement[doc_name] = (
            site_id,
            *[s for s in sites if s != site_id],
        )

    def replication_degree(self, doc_name: str) -> int:
        return len(self.sites_for(doc_name))

    def __len__(self) -> int:
        return len(self._placement)

    def describe(self) -> str:
        """Fig. 8-style table: one row per site listing its documents."""
        lines = []
        for site in self.all_sites():
            docs = self.documents_at(site)
            marked = []
            for d in docs:
                # Bold-in-the-paper = replicated on other sites too.
                marked.append(f"*{d}*" if self.replication_degree(d) > 1 else d)
            lines.append(f"site {site}: {', '.join(marked)}")
        return "\n".join(lines)
