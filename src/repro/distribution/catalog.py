"""The placement catalog: which sites hold a copy of which document.

DTX routes every operation to *all* sites holding the target document
(paper Alg. 1: "it will be sent and executed in all the participants that
contain the data involved in this operation") — replicas are kept
synchronously identical, which is why total replication pays a
synchronization cost even for read-only workloads (Fig. 9).
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..errors import DistributionError
from .replication import ReplicaSet


class Catalog:
    def __init__(self) -> None:
        self._placement: dict[str, tuple[Hashable, ...]] = {}
        # Primary-election epoch per document: bumped on every primary
        # change, carried by replica-sync traffic, and used to fence
        # deposed primaries (a sync stamped with an older epoch is refused).
        self._epochs: dict[str, int] = {}
        # Per-document LSN allocator. Allocation happens while the
        # document's primary-copy write locks are held, so LSN order equals
        # commit order and per-document LSNs are gapless.
        self._next_lsn: dict[str, int] = {}

    def add(self, doc_name: str, site_ids: Iterable[Hashable]) -> None:
        sites = tuple(site_ids)
        if not sites:
            raise DistributionError(f"document {doc_name!r} must live somewhere")
        if len(set(sites)) != len(sites):
            raise DistributionError(f"duplicate sites in placement of {doc_name!r}")
        self._placement[doc_name] = sites

    def sites_for(self, doc_name: str) -> tuple[Hashable, ...]:
        try:
            return self._placement[doc_name]
        except KeyError:
            raise DistributionError(f"document {doc_name!r} not in catalog") from None

    def has_document(self, doc_name: str) -> bool:
        return doc_name in self._placement

    def documents_at(self, site_id: Hashable) -> list[str]:
        return sorted(d for d, sites in self._placement.items() if site_id in sites)

    def all_documents(self) -> list[str]:
        return sorted(self._placement)

    def all_sites(self) -> list:
        sites: set = set()
        for placement in self._placement.values():
            sites.update(placement)
        return sorted(sites)

    def primary_site(self, doc_name: str) -> Hashable:
        """First site in the placement (deterministic coordinator choice)."""
        return self.sites_for(doc_name)[0]

    def replica_set(self, doc_name: str) -> ReplicaSet:
        """The placement as a :class:`ReplicaSet` (primary = first site)."""
        sites = self.sites_for(doc_name)
        return ReplicaSet(doc_name=doc_name, primary=sites[0], secondaries=sites[1:])

    def set_primary(self, doc_name: str, site_id: Hashable) -> None:
        """Promote ``site_id`` to primary by reordering the placement.

        Every primary change increments the document's epoch — the
        deterministic fencing rule replica-sync traffic is checked against.
        """
        sites = self.sites_for(doc_name)
        if site_id not in sites:
            raise DistributionError(
                f"site {site_id!r} holds no replica of {doc_name!r}"
            )
        self._placement[doc_name] = (
            site_id,
            *[s for s in sites if s != site_id],
        )
        self._epochs[doc_name] = self.epoch(doc_name) + 1

    # -- epochs and log sequence numbers -----------------------------------

    def epoch(self, doc_name: str) -> int:
        """Current primary-election epoch of ``doc_name`` (0 = never elected)."""
        return self._epochs.get(doc_name, 0)

    def allocate_lsn(self, doc_name: str) -> int:
        """Hand out the next log sequence number for ``doc_name``.

        Called only while the document's primary-copy write locks are held,
        which serializes allocations with commits (in a real deployment this
        counter lives at the primary; the shared catalog stands in for that
        RPC the same way it stands in for placement lookups).
        """
        lsn = self._next_lsn.get(doc_name, 0) + 1
        self._next_lsn[doc_name] = lsn
        return lsn

    def reset_lsn(self, doc_name: str, from_lsn: int) -> None:
        """Restart the LSN sequence after a promotion.

        The new primary may not have seen the deposed primary's tail; the
        next allocation continues above everything the new primary has
        *recorded* (its compacted log tip), so no slot it already holds is
        re-allocated at the serving primary — orphaned tail entries
        elsewhere are fenced by the epoch bump that accompanied the
        promotion and healed by snapshot transfer on contact.
        """
        self._next_lsn[doc_name] = from_lsn

    def replication_degree(self, doc_name: str) -> int:
        return len(self.sites_for(doc_name))

    def __len__(self) -> int:
        return len(self._placement)

    def describe(self) -> str:
        """Fig. 8-style table: one row per site listing its documents."""
        lines = []
        for site in self.all_sites():
            docs = self.documents_at(site)
            marked = []
            for d in docs:
                # Bold-in-the-paper = replicated on other sites too.
                marked.append(f"*{d}*" if self.replication_degree(d) > 1 else d)
            lines.append(f"site {site}: {', '.join(marked)}")
        return "\n".join(lines)
