"""The placement catalog: which sites hold a copy of which document.

DTX routes every operation to *all* sites holding the target document
(paper Alg. 1: "it will be sent and executed in all the participants that
contain the data involved in this operation") — replicas are kept
synchronously identical, which is why total replication pays a
synchronization cost even for read-only workloads (Fig. 9).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from ..errors import DistributionError
from .replication import ReplicaSet


class Catalog:
    def __init__(self) -> None:
        self._placement: dict[str, tuple[Hashable, ...]] = {}
        # Primary-election epoch per document: bumped on every primary
        # change, carried by replica-sync traffic, and used to fence
        # deposed primaries (a sync stamped with an older epoch is refused).
        self._epochs: dict[str, int] = {}
        # Per-document LSN allocator. Allocation happens while the
        # document's primary-copy write locks are held, so LSN order equals
        # commit order and per-document LSNs are gapless.
        self._next_lsn: dict[str, int] = {}
        # Lease-mode allocator: one counter per (document, epoch). Views
        # at different epochs (a deposed primary vs the re-elected one)
        # allocate independently, so a fenced stale primary cannot punch
        # holes into the new timeline's LSN sequence.
        self._epoch_lsn: dict[tuple[str, int], int] = {}
        # Highest election epoch ever *claimed* per document (lease mode).
        # Claiming is the uniqueness RPC: no two election winners can be
        # handed the same epoch, so equal-epoch split-brain (two primaries
        # whose batches both pass the `epoch < current` fence) is
        # structurally impossible.
        self._claimed_epochs: dict[str, int] = {}
        # Materialized views (repro.views): definition registry plus a
        # doc -> views index for the O(1) routing check. Static during a
        # run, like placement; empty unless views are registered, so
        # default schedules never touch it.
        self._views: dict[str, object] = {}
        self._views_by_doc: dict[str, tuple] = {}

    def add(self, doc_name: str, site_ids: Iterable[Hashable]) -> None:
        sites = tuple(site_ids)
        if not sites:
            raise DistributionError(f"document {doc_name!r} must live somewhere")
        if len(set(sites)) != len(sites):
            raise DistributionError(f"duplicate sites in placement of {doc_name!r}")
        self._placement[doc_name] = sites

    def sites_for(self, doc_name: str) -> tuple[Hashable, ...]:
        try:
            return self._placement[doc_name]
        except KeyError:
            raise DistributionError(f"document {doc_name!r} not in catalog") from None

    def has_document(self, doc_name: str) -> bool:
        return doc_name in self._placement

    def documents_at(self, site_id: Hashable) -> list[str]:
        return sorted(d for d, sites in self._placement.items() if site_id in sites)

    def all_documents(self) -> list[str]:
        return sorted(self._placement)

    def all_sites(self) -> list:
        sites: set = set()
        for placement in self._placement.values():
            sites.update(placement)
        return sorted(sites)

    def primary_site(self, doc_name: str) -> Hashable:
        """First site in the placement (deterministic coordinator choice)."""
        return self.sites_for(doc_name)[0]

    def replica_set(self, doc_name: str) -> ReplicaSet:
        """The placement as a :class:`ReplicaSet` (primary = first site)."""
        sites = self.sites_for(doc_name)
        return ReplicaSet(doc_name=doc_name, primary=sites[0], secondaries=sites[1:])

    def set_primary(self, doc_name: str, site_id: Hashable) -> None:
        """Promote ``site_id`` to primary by reordering the placement.

        Every primary change increments the document's epoch — the
        deterministic fencing rule replica-sync traffic is checked against.
        """
        sites = self.sites_for(doc_name)
        if site_id not in sites:
            raise DistributionError(
                f"site {site_id!r} holds no replica of {doc_name!r}"
            )
        self._placement[doc_name] = (
            site_id,
            *[s for s in sites if s != site_id],
        )
        self._epochs[doc_name] = self.epoch(doc_name) + 1

    # -- epochs and log sequence numbers -----------------------------------

    def epoch(self, doc_name: str) -> int:
        """Current primary-election epoch of ``doc_name`` (0 = never elected)."""
        return self._epochs.get(doc_name, 0)

    def claim_epoch(self, doc_name: str, at_least: int = 0) -> int:
        """Hand out the next election epoch — unique across all claimants.

        The lease-mode election winner's "epoch RPC" (a stand-in for an
        epoch CAS at a coordination service, the same way ``allocate_lsn``
        stands in for the primary's LSN counter). Two concurrent electors
        that both reach a majority — possible under asymmetric message
        loss with replica degree >= 5 — receive *different* epochs, so
        the lower one is fenced on first contact with any site that
        learned the higher one, instead of both serving an identical
        epoch the `epoch < current` fence cannot tell apart.
        """
        epoch = (
            max(
                self._claimed_epochs.get(doc_name, 0),
                self.epoch(doc_name),
                at_least,
            )
            + 1
        )
        self._claimed_epochs[doc_name] = epoch
        return epoch

    def allocate_lsn(self, doc_name: str, epoch: Optional[int] = None) -> int:
        """Hand out the next log sequence number for ``doc_name``.

        Called only while the document's primary-copy write locks are held,
        which serializes allocations with commits (in a real deployment this
        counter lives at the primary; the shared catalog stands in for that
        RPC the same way it stands in for placement lookups). With
        ``epoch`` (lease mode, via :class:`CatalogView`) the sequence is
        per (document, epoch): the RPC goes to whoever the caller's view
        *believes* is the primary, and a deposed view's allocations stay
        on its own fenced timeline.
        """
        if epoch is None:
            lsn = self._next_lsn.get(doc_name, 0) + 1
            self._next_lsn[doc_name] = lsn
            return lsn
        key = (doc_name, epoch)
        lsn = self._epoch_lsn.get(key, self._next_lsn.get(doc_name, 0)) + 1
        self._epoch_lsn[key] = lsn
        return lsn

    def reset_lsn(
        self, doc_name: str, from_lsn: int, epoch: Optional[int] = None
    ) -> None:
        """Restart the LSN sequence after a promotion.

        The new primary may not have seen the deposed primary's tail; the
        next allocation continues above everything the new primary has
        *recorded* (its compacted log tip), so no slot it already holds is
        re-allocated at the serving primary — orphaned tail entries
        elsewhere are fenced by the epoch bump that accompanied the
        promotion and healed by snapshot transfer on contact. ``epoch``
        seeds the per-(document, epoch) counter of the *new* regime
        (lease mode).
        """
        if epoch is None:
            self._next_lsn[doc_name] = from_lsn
        else:
            self._epoch_lsn[(doc_name, epoch)] = from_lsn

    def replication_degree(self, doc_name: str) -> int:
        return len(self.sites_for(doc_name))

    # -- materialized views (repro.views) ------------------------------------

    def register_view(self, view) -> None:
        """Register a :class:`~repro.views.ViewDefinition` (static, like
        placement). Every document the view spans must already be placed."""
        if view.name in self._views:
            raise DistributionError(f"view {view.name!r} already registered")
        for doc_name in view.doc_names:
            if doc_name not in self._placement:
                raise DistributionError(
                    f"view {view.name!r} spans unplaced document {doc_name!r}"
                )
        self._views[view.name] = view
        for doc_name in view.doc_names:
            self._views_by_doc[doc_name] = (
                *self._views_by_doc.get(doc_name, ()),
                view,
            )

    def has_views(self, doc_name: str) -> bool:
        return doc_name in self._views_by_doc

    def views_for(self, doc_name: str) -> tuple:
        """Views spanning ``doc_name``, in registration order."""
        return self._views_by_doc.get(doc_name, ())

    def all_views(self) -> list:
        return list(self._views.values())

    def __len__(self) -> int:
        return len(self._placement)

    def describe(self) -> str:
        """Fig. 8-style table: one row per site listing its documents."""
        lines = []
        for site in self.all_sites():
            docs = self.documents_at(site)
            marked = []
            for d in docs:
                # Bold-in-the-paper = replicated on other sites too.
                marked.append(f"*{d}*" if self.replication_degree(d) > 1 else d)
            lines.append(f"site {site}: {', '.join(marked)}")
        return "\n".join(lines)


class CatalogView:
    """One site's *own* view of the catalog (``failure_detector="lease"``).

    Under the perfect detector the shared :class:`Catalog` object stands in
    for the placement/election RPCs: a promotion mutates it and every site
    sees the change instantly. Lease mode removes that oracle — each site
    holds a view whose **primary/epoch facts advance only by messages**
    (:class:`~repro.core.messages.PrimaryAnnounce`, or the view summaries
    heartbeats carry). Placement (which sites hold a copy) and the LSN
    allocator stay delegated to the shared catalog: placement is static
    during a run, and the allocator already stands in for an RPC to the
    believed primary (mis-directed allocations are fenced by epochs).

    Views at different sites can disagree — that is the point: a deposed
    primary that has not heard the announce still believes it leads, and
    must be stopped by epoch fencing and the sync quorum, not by this
    object.
    """

    def __init__(self, shared: Catalog) -> None:
        self._shared = shared
        self._overrides: dict[str, tuple[Hashable, int]] = {}  # doc -> (primary, epoch)

    # -- membership facts: view-local ---------------------------------------

    def replica_set(self, doc_name: str) -> ReplicaSet:
        sites = self._shared.sites_for(doc_name)
        override = self._overrides.get(doc_name)
        if override is None or override[1] <= self._shared.epoch(doc_name):
            return self._shared.replica_set(doc_name)
        primary = override[0]
        return ReplicaSet(
            doc_name=doc_name,
            primary=primary,
            secondaries=tuple(s for s in sites if s != primary),
        )

    def epoch(self, doc_name: str) -> int:
        override = self._overrides.get(doc_name)
        shared = self._shared.epoch(doc_name)
        return shared if override is None else max(shared, override[1])

    def apply_primary(self, doc_name: str, primary: Hashable, epoch: int) -> bool:
        """Adopt an announced election result; False when it is stale."""
        if epoch <= self.epoch(doc_name):
            return False
        if primary not in self._shared.sites_for(doc_name):
            raise DistributionError(
                f"announced primary {primary!r} holds no replica of {doc_name!r}"
            )
        self._overrides[doc_name] = (primary, epoch)
        return True

    def view_of(self, doc_name: str) -> tuple[int, Hashable]:
        """The ``(epoch, primary)`` fact heartbeats disseminate."""
        return self.epoch(doc_name), self.replica_set(doc_name).primary

    def claim_epoch(self, doc_name: str) -> int:
        """Claim a unique election epoch, newer than this view's."""
        return self._shared.claim_epoch(doc_name, at_least=self.epoch(doc_name))

    # -- everything else: delegated -----------------------------------------

    def sites_for(self, doc_name: str) -> tuple[Hashable, ...]:
        return self._shared.sites_for(doc_name)

    def has_document(self, doc_name: str) -> bool:
        return self._shared.has_document(doc_name)

    def documents_at(self, site_id: Hashable) -> list[str]:
        return self._shared.documents_at(site_id)

    def all_documents(self) -> list[str]:
        return self._shared.all_documents()

    def all_sites(self) -> list:
        return self._shared.all_sites()

    def allocate_lsn(self, doc_name: str) -> int:
        # The allocation RPC goes to the primary *this view believes in*:
        # keyed by the view's epoch, so a deposed view's allocations stay
        # on its own fenced timeline.
        return self._shared.allocate_lsn(doc_name, self.epoch(doc_name))

    def reset_lsn(self, doc_name: str, from_lsn: int) -> None:
        self._shared.reset_lsn(doc_name, from_lsn, self.epoch(doc_name))

    def replication_degree(self, doc_name: str) -> int:
        return self._shared.replication_degree(doc_name)

    def register_view(self, view) -> None:
        self._shared.register_view(view)

    def has_views(self, doc_name: str) -> bool:
        return self._shared.has_views(doc_name)

    def views_for(self, doc_name: str) -> tuple:
        return self._shared.views_for(doc_name)

    def all_views(self) -> list:
        return self._shared.all_views()
