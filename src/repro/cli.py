"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro figures                 # all figures, quick sweep
    python -m repro figures --only fig9 fig12
    python -m repro figures --full          # paper-density sweeps
    python -m repro scenario                # the §2.4 worked example
    python -m repro protocols               # list registered protocols
    python -m repro replication             # ROWA factor x read-ratio sweep
    python -m repro availability            # eager vs lazy under crashes
    python -m repro partitions              # lease-timeout sweep under a network split
    python -m repro quorum                  # (R, W) grid vs eager/lazy under faults
    python -m repro scale                   # hash-ring elasticity: join + decommission
    python -m repro views                   # materialized views vs the locked read path
    python -m repro bench                   # trajectory harness -> BENCH_<n>.json
    python -m repro bench --check           # wall-clock regression gate (CI)
    python -m repro trace                   # traced replay -> trace.json + critical path
    python -m repro trace --diff A.json B.json  # compare two traces' breakdowns

The sweep subcommands (replication, availability, partitions, quorum,
scale, views) share one flag surface: ``--full`` (denser grid), ``--sites`` /
``--clients`` (workload size), ``--seed`` (override the SystemConfig
seed) and ``--json`` (machine-readable cells instead of tables), plus
per-sweep extras.  ``scale`` sweeps a *grid* of sites x clients, so its
``--sites``/``--clients`` accept several values; the scalar sweeps take
exactly one.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from . import available_protocols
from .experiments import (
    Fig12Result,
    FigureParams,
    fig8,
    fig9,
    fig10,
    fig11a,
    fig11b,
    fig12,
)
from .experiments import report as report_mod

_FIGURES = {
    "fig8": (fig8, None, None),
    "fig9": (fig9, report_mod.check_fig9, "response_ms"),
    "fig10": (fig10, report_mod.check_fig10, "response_ms"),
    "fig11a": (fig11a, report_mod.check_fig11a, "response_ms"),
    "fig11b": (fig11b, report_mod.check_fig11b, "response_ms"),
    "fig12": (fig12, report_mod.check_fig12, None),
}


def _run_figures(names: list[str], full: bool, out=sys.stdout) -> int:
    params = FigureParams.paper() if full else FigureParams.quick()
    failures = 0
    for name in names:
        fn, check, metric = _FIGURES[name]
        print(f"== {name} ==", file=out)
        result = fn(params) if name != "fig8" else fn()
        if hasattr(result, "render") and metric:
            print(result.render(metric), file=out)
            if name in ("fig10", "fig11a"):
                print(result.render("deadlocks", fmt="{:.0f}"), file=out)
        elif hasattr(result, "render"):
            print(result.render(), file=out)
        if check is not None:
            try:
                for note in check(result):
                    print(f"  {note}", file=out)
            except AssertionError as exc:
                failures += 1
                print(f"  SHAPE CHECK FAILED: {exc}", file=out)
        print(file=out)
    return failures


def _run_scenario(out=sys.stdout) -> int:
    # Import lazily: the example module is self-contained and printable.
    import contextlib
    import importlib.util
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "..", "examples", "paper_scenario.py")
    path = os.path.normpath(path)
    if not os.path.exists(path):  # installed without examples: inline fallback
        from .config import SystemConfig
        from .core import DTXCluster, Operation, Transaction
        from .update import InsertOp
        from .xml import E, doc

        cfg = SystemConfig().with_(client_think_ms=0.0, detector_interval_ms=50.0,
                                   detector_initial_delay_ms=10.0)
        cluster = DTXCluster(protocol="xdgl", config=cfg)
        d1 = doc("d1", E("people", E("person", E("id", text="4"), E("name", text="Maria"))))
        d2 = doc("d2", E("products", E("product", E("id", text="14"))))
        cluster.add_site("s1", [d1])
        cluster.add_site("s2", [d1, d2])
        t1 = Transaction([Operation.query("d1", "/people/person[id=4]"),
                          Operation.update("d2", InsertOp("<product><id>13</id></product>", "/products"))],
                         label="t1")
        t2 = Transaction([Operation.query("d2", "/products/product"),
                          Operation.update("d1", InsertOp("<person><id>22</id></person>", "/people"))],
                         label="t2")
        cluster.add_client("c1", "s1", [t1])
        cluster.add_client("c2", "s2", [t2])
        res = cluster.run()
        print(res.summary(), file=out)
        return 0
    spec = importlib.util.spec_from_file_location("paper_scenario", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    with contextlib.redirect_stdout(out):
        mod.main()
    return 0


# --------------------------------------------------------------------------
# Shared sweep plumbing: one flag surface, one override path, one emitter.

def _sweep_flags() -> argparse.ArgumentParser:
    """The parent parser every sweep subcommand inherits from."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--full", action="store_true", help="denser sweep")
    common.add_argument(
        "--sites", nargs="+", type=int, default=None, metavar="N",
        help="number of sites (scale: several values form the grid axis)",
    )
    common.add_argument(
        "--clients", nargs="+", type=int, default=None, metavar="N",
        help="number of clients (scale: several values form the grid axis)",
    )
    common.add_argument(
        "--seed", type=int, default=None,
        help="override the simulation seed (default: SystemConfig's)",
    )
    common.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit params, cells and check notes as JSON instead of tables",
    )
    return common


def _fold_common(params, args, grid: bool, out):
    """Apply the shared flags to a sweep's Params; returns (params, error_rc)."""
    overrides: dict = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    for flag, value in (("sites", args.sites), ("clients", args.clients)):
        if value is None:
            continue
        if grid:
            overrides[f"{flag}_grid"] = tuple(value)
        elif len(value) == 1:
            overrides[f"n_{flag}"] = value[0]
        else:
            print(
                f"error: --{flag} takes one value here (only the scale "
                f"sweep grids over it), got {value}",
                file=out,
            )
            return params, 2
    return (replace(params, **overrides) if overrides else params), None


def _emit_sweep(name, result, check, renders, as_json: bool, out) -> int:
    """Print a sweep result: rendered tables + notes, or one JSON document."""
    if as_json:
        import json
        from dataclasses import asdict

        payload = {
            "sweep": name,
            "params": asdict(result.params),
            "cells": [
                {"cell": list(key) if isinstance(key, tuple) else [key], **metrics}
                for key, metrics in result.cells.items()
            ],
        }
        failed = None
        try:
            payload["check_notes"] = list(check(result))
        except AssertionError as exc:
            failed = str(exc)
            payload["check_notes"] = []
        payload["ok"] = failed is None
        if failed is not None:
            payload["check_error"] = failed
        print(json.dumps(payload, indent=2, default=str), file=out)
        return 0 if failed is None else 1
    print(f"== {name} ==", file=out)
    for metric, fmt in renders:
        print(result.render(metric, fmt), file=out)
        print(file=out)
    try:
        for note in check(result):
            print(f"  {note}", file=out)
    except AssertionError as exc:
        print(f"  SHAPE CHECK FAILED: {exc}", file=out)
        return 1
    return 0


def _run_replication(args, out=sys.stdout) -> int:
    from .experiments.replication import (
        ReplicationSweepParams,
        check_replication_sweep,
        replication_sweep,
    )

    params = ReplicationSweepParams.dense() if args.full else ReplicationSweepParams.from_env()
    params, rc = _fold_common(params, args, grid=False, out=out)
    if rc is not None:
        return rc
    if args.read_policy != params.read_policy:
        params = replace(params, read_policy=args.read_policy)
    return _emit_sweep(
        "replication", replication_sweep(params), check_replication_sweep,
        (("tx_per_s", "{:8.2f}"), ("response_ms", "{:8.2f}"), ("messages", "{:8.0f}")),
        args.as_json, out,
    )


def _run_availability(args, out=sys.stdout) -> int:
    from .experiments.availability import (
        AvailabilitySweepParams,
        availability_sweep,
        check_availability_sweep,
    )

    params = AvailabilitySweepParams.dense() if args.full else AvailabilitySweepParams.from_env()
    params, rc = _fold_common(params, args, grid=False, out=out)
    if rc is not None:
        return rc
    if args.crashes is not None:
        params = replace(params, crash_counts=tuple(args.crashes))
    return _emit_sweep(
        "availability", availability_sweep(params), check_availability_sweep,
        (
            ("tx_per_s", "{:9.2f}"),
            ("committed", "{:9.0f}"),
            ("aborted", "{:9.0f}"),
            ("failed", "{:9.0f}"),
            ("promotions", "{:9.0f}"),
            ("divergent_replicas", "{:9.0f}"),
        ),
        args.as_json, out,
    )


def _run_partitions(args, out=sys.stdout) -> int:
    from .experiments.partitions import (
        PartitionSweepParams,
        check_partition_sweep,
        partition_sweep,
    )

    params = PartitionSweepParams.dense() if args.full else PartitionSweepParams.from_env()
    params, rc = _fold_common(params, args, grid=False, out=out)
    if rc is not None:
        return rc
    if args.lease_timeouts is not None:
        params = replace(params, lease_timeouts=tuple(args.lease_timeouts))
    return _emit_sweep(
        "partitions", partition_sweep(params), check_partition_sweep,
        (
            ("committed", "{:9.0f}"),
            ("aborted", "{:9.0f}"),
            ("failed", "{:9.0f}"),
            ("suspicions", "{:9.0f}"),
            ("false_suspicions", "{:9.0f}"),
            ("elections_won", "{:9.0f}"),
            ("lease_refusals", "{:9.0f}"),
            ("divergent_replicas", "{:9.0f}"),
        ),
        args.as_json, out,
    )


def _run_quorum(args, out=sys.stdout) -> int:
    from .experiments.quorum import (
        QuorumSweepParams,
        check_quorum_sweep,
        quorum_sweep,
    )

    params = QuorumSweepParams.dense() if args.full else QuorumSweepParams.from_env()
    params, rc = _fold_common(params, args, grid=False, out=out)
    if rc is not None:
        return rc
    overrides = {}
    if args.faults is not None:
        overrides["faults"] = tuple(args.faults)
    if args.rw is not None:
        grid = []
        for cell in args.rw:
            try:
                r, w = cell.split(":")
                grid.append((int(r), int(w)))
            except ValueError:
                print(
                    f"error: --rw cells must look like R:W (two integers), "
                    f"got {cell!r}",
                    file=out,
                )
                return 2
        overrides["rw_grid"] = tuple(grid)
    if overrides:
        params = replace(params, **overrides)
    return _emit_sweep(
        "quorum", quorum_sweep(params), check_quorum_sweep,
        (
            ("committed", "{:10.0f}"),
            ("update_response_ms", "{:10.2f}"),
            ("window_update_committed", "{:10.0f}"),
            ("sync_acks_per_commit", "{:10.2f}"),
            ("read_repair_rate", "{:10.2f}"),
            ("divergent_replicas", "{:10.0f}"),
        ),
        args.as_json, out,
    )


def _run_scale(args, out=sys.stdout) -> int:
    from .experiments.scale import (
        ScaleSweepParams,
        check_scale_sweep,
        scale_sweep,
    )

    params = ScaleSweepParams.dense() if args.full else ScaleSweepParams.from_env()
    params, rc = _fold_common(params, args, grid=True, out=out)
    if rc is not None:
        return rc
    overrides = {}
    if args.join_at is not None:
        overrides["join_at_ms"] = args.join_at
    if args.leave_at is not None:
        overrides["leave_at_ms"] = args.leave_at
    if overrides:
        params = replace(params, **overrides)
    return _emit_sweep(
        "scale", scale_sweep(params), check_scale_sweep,
        (
            ("committed", "{:10.0f}"),
            ("response_ms", "{:10.2f}"),
            ("moved_join", "{:10.0f}"),
            ("moved_leave", "{:10.0f}"),
            ("migrations_completed", "{:10.0f}"),
            ("spare_docs", "{:10.0f}"),
            ("divergent_replicas", "{:10.0f}"),
        ),
        args.as_json, out,
    )


def _run_views(args, out=sys.stdout) -> int:
    from .experiments.views import (
        ViewsSweepParams,
        check_views_sweep,
        views_sweep,
    )

    params = ViewsSweepParams.dense() if args.full else ViewsSweepParams.from_env()
    params, rc = _fold_common(params, args, grid=False, out=out)
    if rc is not None:
        return rc
    if args.staleness is not None:
        params = replace(params, staleness_grid=tuple(args.staleness))
    return _emit_sweep(
        "views", views_sweep(params), check_views_sweep,
        (
            ("committed", "{:10.0f}"),
            ("response_ms", "{:10.2f}"),
            ("view_hit_rate", "{:10.2f}"),
            ("staleness_ms", "{:10.2f}"),
            ("lock_ops", "{:10.0f}"),
            ("commit_requests", "{:10.0f}"),
        ),
        args.as_json, out,
    )


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DTX reproduction: run the paper's experiments (Figs. 8-12).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="reproduce the evaluation figures")
    p_fig.add_argument(
        "--only", nargs="+", choices=sorted(_FIGURES), default=sorted(_FIGURES),
        help="subset of figures to run",
    )
    p_fig.add_argument("--full", action="store_true", help="paper-density sweeps")

    sub.add_parser("scenario", help="run the paper's §2.4 worked scenario")
    sub.add_parser("protocols", help="list registered concurrency protocols")

    common = _sweep_flags()

    p_rep = sub.add_parser(
        "replication", parents=[common],
        help="sweep replication factor vs update ratio (ROWA)",
    )
    p_rep.add_argument(
        "--read-policy", choices=("primary", "random", "nearest"),
        default="nearest", help="replica chosen for each read",
    )

    p_avail = sub.add_parser(
        "availability", parents=[common],
        help="eager vs lazy replication under site crashes: throughput, "
        "abort rate, failover and catch-up activity",
    )
    p_avail.add_argument(
        "--crashes", nargs="+", type=int, default=None, metavar="N",
        help="crash counts to sweep (default: 0 1 2)",
    )

    p_part = sub.add_parser(
        "partitions", parents=[common],
        help="lease-based membership under a network split: availability "
        "and consistency across lease timeouts",
    )
    p_part.add_argument(
        "--lease-timeouts", nargs="+", type=float, default=None, metavar="MS",
        help="lease timeouts (ms) to sweep (default: 2 4 8 16)",
    )

    p_quorum = sub.add_parser(
        "quorum", parents=[common],
        help="quorum (R, W) grid vs eager/lazy baselines under partition "
        "and crash schedules: latency, in-window commits, read repair, "
        "divergence",
    )
    p_quorum.add_argument(
        "--faults", nargs="+", choices=("none", "partition", "crash"),
        default=None, help="fault schedules to run (default: partition crash)",
    )
    p_quorum.add_argument(
        "--rw", nargs="+", default=None, metavar="R:W",
        help="quorum cells as R:W pairs (default: 1:3 2:2 3:2)",
    )

    p_scale = sub.add_parser(
        "scale", parents=[common],
        help="hash-ring elasticity: a site joins and another is "
        "decommissioned mid-workload; documents migrate online "
        "(ring-minimal moves, zero divergence)",
    )
    p_scale.add_argument(
        "--join-at", type=float, default=None, metavar="MS",
        help="when the spare site joins the ring (default: 8)",
    )
    p_scale.add_argument(
        "--leave-at", type=float, default=None, metavar="MS",
        help="when the decommissioned site leaves (default: 60)",
    )

    p_views = sub.add_parser(
        "views", parents=[common],
        help="materialized XPath views vs the locked read path: a two-phase "
        "read-heavy scenario per staleness bound; the readonly phase must "
        "serve every read from the view host with zero lock-table "
        "operations and zero 2PC rounds",
    )
    p_views.add_argument(
        "--staleness", nargs="+", type=float, default=None, metavar="MS",
        help="view staleness bounds (ms) to sweep (default: 2 20)",
    )

    # The bench harness owns its own argparse surface (it is also runnable
    # as benchmarks/trajectory.py); register a stub for --help discovery
    # but dispatch before parsing so its flags are defined exactly once.
    sub.add_parser(
        "bench",
        add_help=False,
        help="run the benchmark trajectory harness (writes BENCH_<n>.json) "
        "or, with --check, the wall-clock regression gate",
    )

    # Same pattern for the tracer: repro.obs.cli owns the trace flags.
    sub.add_parser(
        "trace",
        add_help=False,
        help="replay a workload with causal tracing on; writes a "
        "Chrome-trace JSON and prints the critical-path breakdown "
        "(--diff compares two trace files)",
    )

    args_list = list(argv) if argv is not None else sys.argv[1:]
    if args_list[:1] == ["bench"]:
        from .experiments.trajectory import main as bench_main

        return bench_main(args_list[1:], out=out)
    if args_list[:1] == ["trace"]:
        from .obs.cli import trace_main

        return trace_main(args_list[1:], out=out)

    args = parser.parse_args(argv)
    if args.command == "figures":
        return _run_figures(list(args.only), args.full, out)
    if args.command == "scenario":
        return _run_scenario(out)
    if args.command == "protocols":
        for name in available_protocols():
            print(name, file=out)
        return 0
    sweeps = {
        "replication": _run_replication,
        "availability": _run_availability,
        "partitions": _run_partitions,
        "quorum": _run_quorum,
        "scale": _run_scale,
        "views": _run_views,
    }
    if args.command in sweeps:
        from .errors import ConfigError

        try:
            return sweeps[args.command](args, out)
        except ConfigError as exc:
            print(f"error: {exc}", file=out)
            return 2
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
