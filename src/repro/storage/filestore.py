"""Filesystem storage backend.

The paper's Fig. 2 shows DTX instances backed either by a DBMS or by a plain
file system; this backend is the latter. One ``<name>.xml`` file per
document inside a base directory. Document names are sanitized into file
names (fragment names like ``xmark#2`` are legal document names).
"""

from __future__ import annotations

import os
import re

from ..errors import StorageError
from ..xml.model import Document
from ..xml.parser import parse_document
from ..xml.serializer import serialize_document
from .base import StorageBackend

_SAFE = re.compile(r"[^A-Za-z0-9._-]")


class FileStore(StorageBackend):
    def __init__(self, base_dir: str):
        self.base_dir = base_dir
        os.makedirs(base_dir, exist_ok=True)
        self._names: dict[str, str] = {}  # doc name -> file path

    def _path(self, name: str) -> str:
        safe = _SAFE.sub("_", name)
        return os.path.join(self.base_dir, f"{safe}.xml")

    def store(self, doc: Document) -> int:
        text = serialize_document(doc, declaration=True)
        path = self._path(doc.name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        self._names[doc.name] = path
        return len(text.encode("utf-8"))

    def load(self, name: str) -> Document:
        path = self._names.get(name, self._path(name))
        if not os.path.exists(path):
            raise StorageError(f"document {name!r} not in file store {self.base_dir!r}")
        with open(path, "r", encoding="utf-8") as fh:
            return parse_document(fh.read(), name=name)

    def exists(self, name: str) -> bool:
        return os.path.exists(self._names.get(name, self._path(name)))

    def delete(self, name: str) -> None:
        path = self._names.pop(name, self._path(name))
        if not os.path.exists(path):
            raise StorageError(f"document {name!r} not in file store")
        os.remove(path)

    def list_documents(self) -> list[str]:
        known = {name for name, path in self._names.items() if os.path.exists(path)}
        # Also surface files written by other processes/sessions.
        for fn in os.listdir(self.base_dir):
            if fn.endswith(".xml"):
                stem = fn[:-4]
                if not any(_SAFE.sub("_", n) == stem for n in known):
                    known.add(stem)
        return sorted(known)

    def size_bytes(self, name: str) -> int:
        path = self._names.get(name, self._path(name))
        if not os.path.exists(path):
            raise StorageError(f"document {name!r} not in file store")
        return os.path.getsize(path)
