"""In-memory native XML store — the reproduction's stand-in for Sedna.

Documents are kept *serialized* (as Sedna keeps them paged on disk), so every
load really parses and every persist really serializes; the DataManager
charges simulated time proportional to the byte counts this backend reports.
Write statistics are tracked per document for the experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import StorageError
from ..xml.model import Document
from ..xml.parser import parse_document
from ..xml.serializer import serialize_document
from .base import StorageBackend


@dataclass
class StoreStats:
    loads: int = 0
    stores: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    per_document_stores: dict[str, int] = field(default_factory=dict)


class InMemoryStore(StorageBackend):
    def __init__(self) -> None:
        self._data: dict[str, str] = {}
        self.stats = StoreStats()

    def store(self, doc: Document) -> int:
        text = serialize_document(doc)
        self._data[doc.name] = text
        size = len(text.encode("utf-8"))
        self.stats.stores += 1
        self.stats.bytes_written += size
        self.stats.per_document_stores[doc.name] = (
            self.stats.per_document_stores.get(doc.name, 0) + 1
        )
        return size

    def load(self, name: str) -> Document:
        try:
            text = self._data[name]
        except KeyError:
            raise StorageError(f"document {name!r} not in store") from None
        self.stats.loads += 1
        self.stats.bytes_read += len(text.encode("utf-8"))
        return parse_document(text, name=name)

    def exists(self, name: str) -> bool:
        return name in self._data

    def delete(self, name: str) -> None:
        if name not in self._data:
            raise StorageError(f"document {name!r} not in store")
        del self._data[name]

    def list_documents(self) -> list[str]:
        return sorted(self._data)

    def size_bytes(self, name: str) -> int:
        try:
            return len(self._data[name].encode("utf-8"))
        except KeyError:
            raise StorageError(f"document {name!r} not in store") from None

    def raw(self, name: str) -> str:
        """Serialized text as stored (tests compare persisted states)."""
        try:
            return self._data[name]
        except KeyError:
            raise StorageError(f"document {name!r} not in store") from None
