"""Storage backend interface.

DTX "recovers the XML documents from a storage structure, carries out the
necessary processing, and then updates the modifications in the storage
structure. The storage structures of these documents are independent" (paper
§2). A backend stores *serialized* documents — parsing/serialization costs on
load/persist are part of the simulation's cost model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..xml.model import Document


class StorageBackend(ABC):
    """Named, serialized XML document store (the Sedna role)."""

    @abstractmethod
    def store(self, doc: Document) -> int:
        """Persist ``doc`` under its name; returns the serialized size in bytes."""

    @abstractmethod
    def load(self, name: str) -> Document:
        """Load and parse the document called ``name``."""

    @abstractmethod
    def exists(self, name: str) -> bool: ...

    @abstractmethod
    def delete(self, name: str) -> None: ...

    @abstractmethod
    def list_documents(self) -> list[str]: ...

    @abstractmethod
    def size_bytes(self, name: str) -> int:
        """Serialized size of a stored document."""
