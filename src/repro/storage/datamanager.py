"""The DataManager component (paper §2.1).

"The DataManager is the component used by DTX to interact with the XML data
storage structure. It is responsible for recovering XML data from the storage
structure, converting it into a proper representation structure, and
providing means for updating the data in the storage structure."

Each site has one DataManager holding the *live* in-memory documents the
TransactionManager works on. ``load``/``persist`` return byte counts so the
site can charge parse/persist time in the cost model.
"""

from __future__ import annotations

from ..errors import StorageError
from ..xml.model import Document
from .base import StorageBackend


class DataManager:
    def __init__(self, backend: StorageBackend):
        self.backend = backend
        self._live: dict[str, Document] = {}

    # -- loading -----------------------------------------------------------

    def load(self, name: str) -> tuple[Document, int]:
        """Materialize ``name`` from storage (or return the live instance).

        Returns ``(document, bytes_parsed)``; the byte count is zero when the
        document was already live (no parse happened).
        """
        if name in self._live:
            return self._live[name], 0
        size = self.backend.size_bytes(name)
        doc = self.backend.load(name)
        self._live[name] = doc
        return doc, size

    def document(self, name: str) -> Document:
        """The live document (must have been loaded)."""
        try:
            return self._live[name]
        except KeyError:
            raise StorageError(f"document {name!r} is not loaded") from None

    def is_loaded(self, name: str) -> bool:
        return name in self._live

    def live_documents(self) -> list[str]:
        return sorted(self._live)

    # -- persistence ----------------------------------------------------------

    def persist(self, name: str) -> int:
        """Write the live document back to storage; returns bytes written."""
        doc = self.document(name)
        return self.backend.store(doc)

    def persist_many(self, names: list[str]) -> int:
        return sum(self.persist(n) for n in names)

    # -- lifecycle ---------------------------------------------------------------

    def install(self, doc: Document) -> int:
        """Adopt a new document: register live and persist it."""
        if doc.name in self._live:
            raise StorageError(f"document {doc.name!r} already loaded")
        self._live[doc.name] = doc
        return self.backend.store(doc)

    def evict(self, name: str) -> None:
        """Drop the live copy (storage keeps the last persisted state)."""
        self._live.pop(name, None)

    def reload(self, name: str) -> tuple[Document, int]:
        """Discard the live copy and re-materialize from storage.

        Crash recovery: whatever was in memory is gone; the last persisted
        state is what the site restarts from.
        """
        self._live.pop(name, None)
        return self.load(name)

    def replace(self, doc: Document) -> None:
        """Swap in a new live instance for an already-hosted document
        (snapshot transfer during catch-up)."""
        if doc.name not in self._live:
            raise StorageError(f"document {doc.name!r} is not hosted here")
        self._live[doc.name] = doc
