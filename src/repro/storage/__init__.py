"""Storage backends and the per-site DataManager."""

from .base import StorageBackend
from .datamanager import DataManager
from .filestore import FileStore
from .memory import InMemoryStore

__all__ = ["DataManager", "FileStore", "InMemoryStore", "StorageBackend"]
