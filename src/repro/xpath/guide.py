"""Structural path matching for lock-target computation.

XDGL does not lock document nodes: it locks nodes of the DataGuide, the
structural summary in which every label path occurs exactly once. Computing
the lock set for an operation therefore needs *structural* matching only —
value and positional predicates are ignored for target selection, but the
nodes named by predicate paths become additional (shared) lock targets, per
the paper: "On the target nodes of the path-expression predicate are used ST,
and IS on its ancestors."

The functions here are generic over any tree whose nodes expose ``tag`` and
``children`` (both :class:`repro.dataguide.DataGuideNode` and plain
:class:`repro.xml.model.Element` qualify, which the tests exploit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .ast import (
    Axis,
    BoolExpr,
    Comparison,
    Exists,
    LocationPath,
    NodeTestKind,
    PathOperand,
    Predicate,
)
from .parser import parse_xpath


@dataclass
class GuideMatch:
    """Result of matching a path against a structural summary.

    Attributes
    ----------
    targets:
        Guide nodes selected by the path itself (the nodes to lock in the
        operation's primary mode).
    predicate_targets:
        Guide nodes named by predicate sub-paths (locked in shared mode).
    """

    targets: list = field(default_factory=list)
    predicate_targets: list = field(default_factory=list)


def match_structure(path: Union[str, LocationPath], root, stats=None) -> GuideMatch:
    """Match ``path`` against the tree rooted at ``root``.

    ``root`` is treated as the single child of a virtual document node, so an
    absolute path ``/people`` matches a root tagged ``people``. Relative paths
    are matched as if rooted at ``root`` directly. ``stats`` (an object with a
    ``visit(n)`` method, e.g. :class:`repro.xpath.evaluator.EvalStats`) meters
    how many structure nodes the match examined.
    """
    if isinstance(path, str):
        path = parse_xpath(path)
    match = GuideMatch()
    if root is None or not path.steps:
        return match

    current = _initial(path, root)
    for i, step in enumerate(path.steps):
        is_last = i == len(path.steps) - 1
        nxt: list = []
        seen: set[int] = set()
        for ctx, from_doc in current:
            if step.test.kind in (NodeTestKind.ATTRIBUTE, NodeTestKind.TEXT):
                # Attribute/text steps resolve to their owning element node.
                candidates = [ctx] if not from_doc else []
            else:
                candidates = _axis_nodes(ctx, step.axis, from_doc)
                if stats is not None:
                    stats.visit(len(candidates))
                name = step.test.name
                if name != "*":
                    candidates = [c for c in candidates if c.tag == name]
            for c in candidates:
                for pred in step.predicates:
                    _collect_predicate_targets(pred, c, match, stats)
                if id(c) not in seen:
                    seen.add(id(c))
                    nxt.append((c, False))
        current = nxt
        if not current:
            break
        if is_last:
            match.targets = [c for c, _ in current]
    return match


def _initial(path: LocationPath, root) -> list[tuple[object, bool]]:
    if path.absolute:
        return [(root, True)]
    return [(root, False)]


def _axis_nodes(ctx, axis: Axis, from_doc: bool) -> list:
    if from_doc:
        if axis is Axis.CHILD:
            return [ctx]
        return _subtree(ctx)
    if axis is Axis.CHILD:
        return list(ctx.children)
    out = _subtree(ctx)
    return out[1:]  # strict descendants


def _subtree(node) -> list:
    out = []
    stack = [node]
    while stack:
        n = stack.pop()
        out.append(n)
        stack.extend(reversed(list(n.children)))
    return out


def _collect_predicate_targets(pred: Predicate, ctx, match: GuideMatch, stats=None) -> None:
    """Record the guide nodes named by predicate sub-paths under ``ctx``."""
    paths: list[LocationPath] = []
    _walk_predicate(pred, paths)
    for p in paths:
        if p.absolute:
            continue  # absolute predicate paths are resolved at top level by callers
        sub = match_structure(p, ctx, stats)
        # match_structure treats ctx as a relative root; predicate paths start
        # *below* ctx, so re-run per child semantics by matching relative path.
        for t in sub.targets:
            if t is not ctx:
                match.predicate_targets.append(t)
        match.predicate_targets.extend(sub.predicate_targets)


def _walk_predicate(pred: Predicate, out: list[LocationPath]) -> None:
    if isinstance(pred, Comparison):
        for side in (pred.left, pred.right):
            if isinstance(side, PathOperand):
                out.append(side.path)
    elif isinstance(pred, Exists):
        out.append(pred.path)
    elif isinstance(pred, BoolExpr):
        for sub in pred.operands:
            _walk_predicate(sub, out)
    # Position predicates contribute no extra lock targets.
