"""XPath subset: lexer, parser, evaluator and structural matcher.

This is the query language of DTX (paper §2: the XDGL protocol "uses a subset
of the XPath language to recover information from XML documents").
"""

from .ast import Axis, CompareOp, LocationPath, NodeTest, NodeTestKind, Step
from .evaluator import EvalStats, evaluate, evaluate_values
from .guide import GuideMatch, match_structure
from .parser import parse_xpath
from .tokens import Token, TokenType, tokenize

__all__ = [
    "Axis",
    "CompareOp",
    "EvalStats",
    "GuideMatch",
    "LocationPath",
    "NodeTest",
    "NodeTestKind",
    "Step",
    "Token",
    "TokenType",
    "evaluate",
    "evaluate_values",
    "match_structure",
    "parse_xpath",
    "tokenize",
]
