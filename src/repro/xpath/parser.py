"""Recursive-descent parser for the XPath subset.

Grammar (EBNF)::

    path        := ('/' | '//')? rel_path
    rel_path    := step (('/' | '//') step)*
    step        := node_test predicate*
    node_test   := NAME | '*' | '@' NAME | 'text' '(' ')'
    predicate   := '[' or_expr ']'
    or_expr     := and_expr ('or' and_expr)*
    and_expr    := atom ('and' atom)*
    atom        := NUMBER                       -- positional index
                 | operand (cmp_op operand)?    -- comparison or existence
    operand     := literal | rel_path
    literal     := STRING | NUMBER
"""

from __future__ import annotations

from ..errors import XPathSyntaxError
from .ast import (
    Axis,
    BoolExpr,
    Comparison,
    CompareOp,
    Exists,
    Literal,
    LocationPath,
    NodeTest,
    NodeTestKind,
    Operand,
    PathOperand,
    Position,
    Predicate,
    Step,
)
from .tokens import Token, TokenType, tokenize

_CMP_OPS = {
    TokenType.EQ: CompareOp.EQ,
    TokenType.NEQ: CompareOp.NEQ,
    TokenType.LT: CompareOp.LT,
    TokenType.LE: CompareOp.LE,
    TokenType.GT: CompareOp.GT,
    TokenType.GE: CompareOp.GE,
}


class _Parser:
    def __init__(self, tokens: list[Token], source: str):
        self.tokens = tokens
        self.pos = 0
        self.source = source

    # -- token plumbing --------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, ttype: TokenType) -> Token:
        tok = self.peek()
        if tok.type is not ttype:
            raise XPathSyntaxError(
                f"expected {ttype.name} but found {tok.type.name} in {self.source!r}",
                position=tok.position,
            )
        return self.next()

    def accept(self, ttype: TokenType) -> Token | None:
        if self.peek().type is ttype:
            return self.next()
        return None

    # -- grammar ----------------------------------------------------------

    def parse_path(self) -> LocationPath:
        absolute = False
        first_axis = Axis.CHILD
        if self.accept(TokenType.SLASH):
            absolute = True
        elif self.accept(TokenType.DSLASH):
            absolute = True
            first_axis = Axis.DESCENDANT
        path = self._rel_path(first_axis, absolute)
        tok = self.peek()
        if tok.type is not TokenType.EOF:
            raise XPathSyntaxError(
                f"trailing input at {tok.value!r} in {self.source!r}", position=tok.position
            )
        return path

    def _rel_path(self, first_axis: Axis, absolute: bool) -> LocationPath:
        steps = [self._step(first_axis)]
        while True:
            if self.accept(TokenType.SLASH):
                steps.append(self._step(Axis.CHILD))
            elif self.accept(TokenType.DSLASH):
                steps.append(self._step(Axis.DESCENDANT))
            else:
                break
        return LocationPath(absolute=absolute, steps=tuple(steps))

    def _step(self, axis: Axis) -> Step:
        tok = self.peek()
        if tok.type is TokenType.STAR:
            self.next()
            test = NodeTest(NodeTestKind.NAME, "*")
        elif tok.type is TokenType.AT:
            self.next()
            name = self.expect(TokenType.NAME)
            test = NodeTest(NodeTestKind.ATTRIBUTE, name.value)
        elif tok.type is TokenType.NAME:
            self.next()
            if tok.value == "text" and self.peek().type is TokenType.LPAREN:
                self.next()
                self.expect(TokenType.RPAREN)
                test = NodeTest(NodeTestKind.TEXT, "")
            else:
                test = NodeTest(NodeTestKind.NAME, tok.value)
        else:
            raise XPathSyntaxError(
                f"expected a step but found {tok.type.name} in {self.source!r}",
                position=tok.position,
            )
        predicates: list[Predicate] = []
        while self.accept(TokenType.LBRACKET):
            predicates.append(self._or_expr())
            self.expect(TokenType.RBRACKET)
        if test.kind in (NodeTestKind.ATTRIBUTE, NodeTestKind.TEXT) and predicates:
            raise XPathSyntaxError(
                f"predicates are not supported on {test} steps", position=tok.position
            )
        return Step(axis=axis, test=test, predicates=tuple(predicates))

    def _or_expr(self) -> Predicate:
        parts = [self._and_expr()]
        while self.accept(TokenType.OR):
            parts.append(self._and_expr())
        if len(parts) == 1:
            return parts[0]
        return BoolExpr("or", tuple(parts))

    def _and_expr(self) -> Predicate:
        parts = [self._atom()]
        while self.accept(TokenType.AND):
            parts.append(self._atom())
        if len(parts) == 1:
            return parts[0]
        return BoolExpr("and", tuple(parts))

    def _atom(self) -> Predicate:
        tok = self.peek()
        # A bare number predicate is positional: person[2]
        if tok.type is TokenType.NUMBER:
            nxt = self.tokens[self.pos + 1]
            if nxt.type in (TokenType.RBRACKET, TokenType.AND, TokenType.OR):
                self.next()
                if "." in tok.value:
                    raise XPathSyntaxError(
                        f"positional index must be an integer: [{tok.value}]",
                        position=tok.position,
                    )
                index = int(tok.value)
                if index < 1:
                    raise XPathSyntaxError(
                        f"positional index must be >= 1: [{tok.value}]", position=tok.position
                    )
                return Position(index)
        left = self._operand()
        op_tok = self.peek()
        if op_tok.type in _CMP_OPS:
            self.next()
            right = self._operand()
            return Comparison(left, _CMP_OPS[op_tok.type], right)
        if isinstance(left, PathOperand):
            return Exists(left.path)
        raise XPathSyntaxError(
            f"a bare literal is not a predicate in {self.source!r}", position=op_tok.position
        )

    def _operand(self) -> Operand:
        tok = self.peek()
        if tok.type is TokenType.STRING:
            self.next()
            return Literal(tok.value)
        if tok.type is TokenType.NUMBER:
            self.next()
            return Literal(float(tok.value))
        if tok.type in (TokenType.NAME, TokenType.AT, TokenType.STAR):
            path = self._rel_path(Axis.CHILD, absolute=False)
            return PathOperand(path)
        raise XPathSyntaxError(
            f"expected an operand but found {tok.type.name} in {self.source!r}",
            position=tok.position,
        )


# Parsed-expression memo. Workloads re-submit the same path strings over
# and over (templates, and every wait/retry attempt of a blocked operation
# re-parses its payload), and a LocationPath is a tree of frozen dataclasses
# — safe to share between arbitrarily many evaluations. LRU: a hit moves
# the entry to the back of the (insertion-ordered) dict, a miss at capacity
# evicts the front, so a stream of distinct expressions sheds the coldest
# entry instead of dumping the whole working set.
_PARSE_CACHE: dict[str, LocationPath] = {}
_PARSE_CACHE_MAX = 4096
_parse_cache_hits = 0
_parse_cache_misses = 0


def parse_cache_stats() -> tuple[int, int]:
    """(hits, misses) of the process-wide parse memo (benchmark telemetry)."""
    return _parse_cache_hits, _parse_cache_misses


def clear_parse_cache() -> None:
    global _parse_cache_hits, _parse_cache_misses
    _PARSE_CACHE.clear()
    _parse_cache_hits = 0
    _parse_cache_misses = 0


def parse_xpath(expr: str) -> LocationPath:
    """Parse ``expr`` into a :class:`LocationPath`.

    Raises :class:`repro.errors.XPathSyntaxError` for anything outside the
    supported subset.
    """
    global _parse_cache_hits, _parse_cache_misses
    cached = _PARSE_CACHE.pop(expr, None)
    if cached is not None:
        _PARSE_CACHE[expr] = cached  # re-insert at the back: most recent
        _parse_cache_hits += 1
        return cached
    if not expr or not expr.strip():
        raise XPathSyntaxError("empty XPath expression")
    path = _Parser(tokenize(expr), expr).parse_path()
    _parse_cache_misses += 1
    if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
        del _PARSE_CACHE[next(iter(_PARSE_CACHE))]  # evict least recent
    _PARSE_CACHE[expr] = path
    return path
