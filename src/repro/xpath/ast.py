"""AST for the XPath subset.

A :class:`LocationPath` is a sequence of :class:`Step`\\ s; each step has an
axis (``child`` or ``descendant``), a node test and zero or more predicates.
Predicates form a tiny boolean expression tree over comparisons, existence
tests and positional indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Union


class Axis(Enum):
    CHILD = "child"
    DESCENDANT = "descendant"  # descendant-or-self step introduced by '//'


class NodeTestKind(Enum):
    NAME = "name"  # element name test (possibly '*')
    ATTRIBUTE = "attribute"  # @name
    TEXT = "text"  # text()


@dataclass(frozen=True)
class NodeTest:
    kind: NodeTestKind
    name: str  # '*' for wildcard; attribute name for ATTRIBUTE; '' for TEXT

    def __str__(self) -> str:
        if self.kind is NodeTestKind.ATTRIBUTE:
            return f"@{self.name}"
        if self.kind is NodeTestKind.TEXT:
            return "text()"
        return self.name


class CompareOp(Enum):
    EQ = "="
    NEQ = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True)
class Literal:
    """A string or numeric literal operand."""

    value: Union[str, float]


@dataclass(frozen=True)
class PathOperand:
    """A relative path operand inside a predicate (e.g. ``id``, ``@id``)."""

    path: "LocationPath"


Operand = Union[Literal, PathOperand]


@dataclass(frozen=True)
class Comparison:
    left: Operand
    op: CompareOp
    right: Operand


@dataclass(frozen=True)
class Exists:
    """Existence test: ``[child]`` is true when the relative path is non-empty."""

    path: "LocationPath"


@dataclass(frozen=True)
class Position:
    """Positional predicate ``[n]`` (1-based, per XPath)."""

    index: int


@dataclass(frozen=True)
class BoolExpr:
    """``and`` / ``or`` over sub-predicates."""

    op: str  # 'and' | 'or'
    operands: tuple["Predicate", ...]


Predicate = Union[Comparison, Exists, Position, BoolExpr]


@dataclass(frozen=True)
class Step:
    axis: Axis
    test: NodeTest
    predicates: tuple[Predicate, ...] = ()

    def __str__(self) -> str:
        preds = "".join(f"[{_pred_str(p)}]" for p in self.predicates)
        return f"{self.test}{preds}"


@dataclass(frozen=True)
class LocationPath:
    """A parsed location path.

    ``absolute`` paths start at the document root; relative paths start at a
    context node (only used inside predicates and by the update language).
    """

    absolute: bool
    steps: tuple[Step, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        parts: list[str] = []
        for i, step in enumerate(self.steps):
            if i == 0:
                if self.absolute:
                    parts.append("//" if step.axis is Axis.DESCENDANT else "/")
                elif step.axis is Axis.DESCENDANT:
                    parts.append(".//")
            else:
                parts.append("//" if step.axis is Axis.DESCENDANT else "/")
            parts.append(str(step))
        return "".join(parts)


def _operand_str(o: Operand) -> str:
    if isinstance(o, Literal):
        if isinstance(o.value, str):
            return f'"{o.value}"'
        v = o.value
        return str(int(v)) if float(v).is_integer() else str(v)
    return str(o.path)


def _pred_str(p: Predicate) -> str:
    if isinstance(p, Comparison):
        return f"{_operand_str(p.left)}{p.op.value}{_operand_str(p.right)}"
    if isinstance(p, Exists):
        return str(p.path)
    if isinstance(p, Position):
        return str(p.index)
    return f" {p.op} ".join(_pred_str(sp) for sp in p.operands)
