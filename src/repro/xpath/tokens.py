"""Lexer for the XPath subset used by DTX/XDGL.

The subset (paper §2: "XDGL uses a subset of the XPath language") covers
absolute/relative location paths with ``/`` and ``//`` steps, name tests,
``*`` wildcards, attribute tests (``@name``), ``text()``, and predicates with
comparisons, ``and``/``or`` and positional indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from ..errors import XPathSyntaxError


class TokenType(Enum):
    SLASH = auto()  # /
    DSLASH = auto()  # //
    STAR = auto()  # *
    NAME = auto()  # element name
    AT = auto()  # @
    LBRACKET = auto()  # [
    RBRACKET = auto()  # ]
    LPAREN = auto()  # (
    RPAREN = auto()  # )
    EQ = auto()  # =
    NEQ = auto()  # !=
    LT = auto()  # <
    LE = auto()  # <=
    GT = auto()  # >
    GE = auto()  # >=
    STRING = auto()  # 'x' or "x"
    NUMBER = auto()  # 42 or 10.30
    AND = auto()  # and
    OR = auto()  # or
    EOF = auto()


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}@{self.position})"


_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789.-:")
_PUNCT = {
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "@": TokenType.AT,
    "*": TokenType.STAR,
    "=": TokenType.EQ,
}


def tokenize(expr: str) -> list[Token]:
    """Convert ``expr`` to a token list ending with an EOF token."""
    tokens: list[Token] = []
    i, n = 0, len(expr)
    while i < n:
        c = expr[i]
        if c in " \t\r\n":
            i += 1
            continue
        if c == "/":
            if expr.startswith("//", i):
                tokens.append(Token(TokenType.DSLASH, "//", i))
                i += 2
            else:
                tokens.append(Token(TokenType.SLASH, "/", i))
                i += 1
        elif c == "!":
            if expr.startswith("!=", i):
                tokens.append(Token(TokenType.NEQ, "!=", i))
                i += 2
            else:
                raise XPathSyntaxError("expected '!=' ", position=i)
        elif c == "<":
            if expr.startswith("<=", i):
                tokens.append(Token(TokenType.LE, "<=", i))
                i += 2
            else:
                tokens.append(Token(TokenType.LT, "<", i))
                i += 1
        elif c == ">":
            if expr.startswith(">=", i):
                tokens.append(Token(TokenType.GE, ">=", i))
                i += 2
            else:
                tokens.append(Token(TokenType.GT, ">", i))
                i += 1
        elif c in _PUNCT:
            tokens.append(Token(_PUNCT[c], c, i))
            i += 1
        elif c in ("'", '"'):
            end = expr.find(c, i + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", position=i)
            tokens.append(Token(TokenType.STRING, expr[i + 1 : end], i))
            i = end + 1
        elif c.isdigit():
            start = i
            while i < n and (expr[i].isdigit() or expr[i] == "."):
                i += 1
            lit = expr[start:i]
            if lit.count(".") > 1:
                raise XPathSyntaxError(f"bad number literal {lit!r}", position=start)
            tokens.append(Token(TokenType.NUMBER, lit, start))
        elif c in _NAME_START:
            start = i
            while i < n and expr[i] in _NAME_CHARS:
                i += 1
            name = expr[start:i]
            if name == "and":
                tokens.append(Token(TokenType.AND, name, start))
            elif name == "or":
                tokens.append(Token(TokenType.OR, name, start))
            else:
                tokens.append(Token(TokenType.NAME, name, start))
        else:
            raise XPathSyntaxError(f"unexpected character {c!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
