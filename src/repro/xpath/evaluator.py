"""Evaluation of the XPath subset over XML trees.

The evaluator is written against a minimal node protocol (``tag``,
``children``, ``attrib``, ``text``) so the same machinery evaluates both
document trees (:class:`repro.xml.model.Element`) and, via
:mod:`repro.xpath.guide`, DataGuide summaries.

Node-set semantics follow XPath 1.0: results are in document order without
duplicates, predicates filter per-context candidate lists in order, and
comparisons are existential over the operand node-sets.

An :class:`EvalStats` counter can be threaded through to meter how many nodes
an evaluation touched — the simulation's CPU cost model charges per node
visited, which is how tree traversal overhead enters the response times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from ..errors import XPathEvalError
from ..xml.model import Document, Element
from .ast import (
    Axis,
    BoolExpr,
    Comparison,
    CompareOp,
    Exists,
    Literal,
    LocationPath,
    NodeTestKind,
    Operand,
    PathOperand,
    Position,
    Predicate,
)
from .parser import parse_xpath

Scalar = Union[str, float]


@dataclass
class EvalStats:
    """Work meter: number of nodes touched during an evaluation.

    With ``collect=True`` the stats also record *which* nodes were examined —
    navigational lock protocols (Node2PL) lock everything a query traverses,
    so they need the visited set, not just its size.
    """

    nodes_visited: int = 0
    collect: bool = False
    visited: list = field(default_factory=list)

    def visit(self, count: int = 1) -> None:
        self.nodes_visited += count

    def visit_nodes(self, nodes: list) -> None:
        self.nodes_visited += len(nodes)
        if self.collect:
            self.visited.extend(nodes)


def evaluate(
    path: Union[str, LocationPath],
    context: Union[Document, Element],
    stats: Optional[EvalStats] = None,
) -> list[Element]:
    """Evaluate ``path`` and return the matching elements in document order.

    For paths ending in ``@attr`` or ``text()``, the *owning elements* are
    returned (the lock targets); use :func:`evaluate_values` to extract the
    scalar values instead.
    """
    if isinstance(path, str):
        path = parse_xpath(path)
    stats = stats if stats is not None else EvalStats()

    if isinstance(context, Document):
        if context.root is None:
            return []
        root = context.root
        from_document = True
    else:
        root = context
        from_document = False

    if path.absolute:
        if not from_document:
            if root.document is None or root.document.root is None:
                raise XPathEvalError("absolute path evaluated on a detached element")
            root = root.document.root
        current: list[Element] = [root]
        from_document = True
    else:
        if from_document:
            raise XPathEvalError("relative path evaluated on a document; pass an element")
        current = [root]

    for i, step in enumerate(path.steps):
        if step.test.kind is not NodeTestKind.NAME and i != len(path.steps) - 1:
            raise XPathEvalError(f"{step.test} step must be the last step")
        result: list[Element] = []
        seen: set[int] = set()
        for ctx in current:
            if step.test.kind is NodeTestKind.NAME:
                candidates = _step_candidates(ctx, step.axis, from_document and i == 0, stats)
                name = step.test.name
                candidates = [c for c in candidates if name == "*" or c.tag == name]
            else:
                # @attr / text() select content *of* the context node itself
                # (attribute::/text() axes); `//@attr` widens to descendants.
                if step.axis is Axis.DESCENDANT or (from_document and i == 0):
                    candidates = list(ctx.iter_subtree())
                    stats.visit_nodes(candidates)
                else:
                    candidates = [ctx]
                    stats.visit_nodes(candidates)
                if step.test.kind is NodeTestKind.ATTRIBUTE:
                    candidates = [c for c in candidates if step.test.name in c.attrib]
                else:  # TEXT
                    candidates = [c for c in candidates if c.text is not None]
            candidates = _apply_predicates(candidates, step.predicates, stats)
            for c in candidates:
                if id(c) not in seen:
                    seen.add(id(c))
                    result.append(c)
        current = result
        if not current:
            break
    return current


def evaluate_values(
    path: Union[str, LocationPath],
    context: Union[Document, Element],
    stats: Optional[EvalStats] = None,
) -> list[Optional[Scalar]]:
    """Evaluate ``path`` and extract scalar values from the matches.

    ``@attr`` paths yield attribute values, ``text()`` paths yield text, and
    element paths yield each element's typed text content.
    """
    if isinstance(path, str):
        path = parse_xpath(path)
    nodes = evaluate(path, context, stats)
    if not path.steps:
        return []
    last = path.steps[-1].test
    if last.kind is NodeTestKind.ATTRIBUTE:
        return [_typed(n.attrib[last.name]) for n in nodes]
    return [n.typed_value() for n in nodes]


# ---------------------------------------------------------------------------


def _step_candidates(
    ctx: Element, axis: Axis, at_document: bool, stats: EvalStats
) -> list[Element]:
    """Nodes reachable from ``ctx`` along ``axis``.

    ``at_document`` marks the first step of an absolute path: the context is
    then the (virtual) document node whose only child is the root, so a child
    step yields the root itself and a descendant step yields every element.
    """
    if at_document:
        if axis is Axis.CHILD:
            stats.visit_nodes([ctx])
            return [ctx]
        out = list(ctx.iter_subtree())
        stats.visit_nodes(out)
        return out
    if axis is Axis.CHILD:
        out = list(ctx.children)
        stats.visit_nodes(out)
        return out
    out = list(ctx.descendants())
    stats.visit_nodes(out)
    return out


def _apply_predicates(
    candidates: list[Element], predicates: Iterable[Predicate], stats: EvalStats
) -> list[Element]:
    result = candidates
    for pred in predicates:
        if isinstance(pred, Position):
            result = [result[pred.index - 1]] if len(result) >= pred.index else []
        else:
            result = [c for c in result if _pred_true(pred, c, stats)]
    return result


def _pred_true(pred: Predicate, ctx: Element, stats: EvalStats) -> bool:
    if isinstance(pred, Comparison):
        lvals = _operand_values(pred.left, ctx, stats)
        rvals = _operand_values(pred.right, ctx, stats)
        return any(
            a is not None and b is not None and _compare(a, pred.op, b)
            for a in lvals
            for b in rvals
        )
    if isinstance(pred, Exists):
        return bool(evaluate(pred.path, ctx, stats))
    if isinstance(pred, BoolExpr):
        if pred.op == "and":
            return all(_pred_true(p, ctx, stats) for p in pred.operands)
        return any(_pred_true(p, ctx, stats) for p in pred.operands)
    if isinstance(pred, Position):  # nested positional (inside and/or): unsupported
        raise XPathEvalError("positional predicates cannot appear inside and/or")
    raise XPathEvalError(f"unknown predicate {pred!r}")  # pragma: no cover


def _operand_values(op: Operand, ctx: Element, stats: EvalStats) -> list[Optional[Scalar]]:
    if isinstance(op, Literal):
        return [op.value]
    if isinstance(op, PathOperand):
        return evaluate_values(op.path, ctx, stats)
    raise XPathEvalError(f"unknown operand {op!r}")  # pragma: no cover


def _typed(raw: str) -> Scalar:
    try:
        return float(raw)
    except ValueError:
        return raw


def _compare(a: Scalar, op: CompareOp, b: Scalar) -> bool:
    """Existential comparison with XPath-flavoured coercion.

    If either side is numeric, try to compare numerically (coercing the other
    side); fall back to string comparison when coercion fails.
    """
    if isinstance(a, float) or isinstance(b, float):
        try:
            fa = float(a)
            fb = float(b)
        except (TypeError, ValueError):
            fa, fb = None, None
        if fa is not None:
            return _cmp(fa, op, fb)
    return _cmp(str(a), op, str(b))


def _cmp(a, op: CompareOp, b) -> bool:
    if op is CompareOp.EQ:
        return a == b
    if op is CompareOp.NEQ:
        return a != b
    if op is CompareOp.LT:
        return a < b
    if op is CompareOp.LE:
        return a <= b
    if op is CompareOp.GT:
        return a > b
    return a >= b
