"""Deadlock handling: wait-for graphs and the distributed detector."""

from .wfg import WaitForGraph, newest_transaction

__all__ = ["WaitForGraph", "newest_transaction"]
