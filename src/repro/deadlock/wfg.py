"""Wait-for graphs: local conflict tracking and distributed union.

An edge ``a -> b`` means transaction ``a`` waits for a lock held by ``b``.
Each DTX site maintains its own graph (modification (ii) of the paper:
"the lock manager was distributed in each instance"); the distributed
detector unions all sites' graphs and looks for a cycle (Algorithm 4).

Nodes may be any hashable, ordered values — DTX uses transaction ids ordered
by start timestamp, so ``max(cycle)`` is the *most recent* transaction, the
paper's victim rule.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional


class WaitForGraph:
    def __init__(self) -> None:
        self._out: dict[Hashable, set[Hashable]] = {}

    # -- mutation -----------------------------------------------------------

    def add_edge(self, waiter: Hashable, holder: Hashable) -> None:
        if waiter == holder:
            return  # a transaction never waits for itself
        self._out.setdefault(waiter, set()).add(holder)
        self._out.setdefault(holder, set())

    def clear_waits(self, waiter: Hashable) -> None:
        """Drop ``waiter``'s outgoing edges (it acquired its locks)."""
        if waiter in self._out:
            self._out[waiter] = set()
            self._gc(waiter)

    def remove_node(self, node: Hashable) -> None:
        """Forget a finished transaction entirely (in- and out-edges)."""
        self._out.pop(node, None)
        for src in list(self._out):
            self._out[src].discard(node)
            self._gc(src)

    def _gc(self, node: Hashable) -> None:
        if node in self._out and not self._out[node] and not self._has_incoming(node):
            del self._out[node]

    def _has_incoming(self, node: Hashable) -> bool:
        return any(node in dsts for src, dsts in self._out.items() if src != node)

    # -- inspection -----------------------------------------------------------

    def edges(self) -> list[tuple[Hashable, Hashable]]:
        return [(a, b) for a, dsts in self._out.items() for b in dsts]

    def successors(self, node: Hashable) -> frozenset:
        return frozenset(self._out.get(node, ()))

    def nodes(self) -> set:
        out = set(self._out)
        for dsts in self._out.values():
            out |= dsts
        return out

    @property
    def edge_count(self) -> int:
        return sum(len(d) for d in self._out.values())

    def waits(self, waiter: Hashable) -> bool:
        return bool(self._out.get(waiter))

    # -- cycle detection --------------------------------------------------------

    def find_cycle_from(self, start: Hashable) -> Optional[list]:
        """A cycle through ``start``, as a node list, or ``None``.

        Used at lock-acquisition time (Algorithm 3 line 9): adding the new
        wait edges may have closed a cycle through the requesting
        transaction.
        """
        path: list = [start]
        on_path = {start}
        visited: set = set()

        def dfs(node) -> Optional[list]:
            for nxt in self._out.get(node, ()):
                if nxt == start:
                    return list(path)
                if nxt in on_path or nxt in visited:
                    continue
                path.append(nxt)
                on_path.add(nxt)
                found = dfs(nxt)
                if found is not None:
                    return found
                on_path.discard(path.pop())
            visited.add(node)
            return None

        return dfs(start)

    def find_any_cycle(self) -> Optional[list]:
        """Any cycle in the graph (iterative DFS with colouring), or ``None``."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {n: WHITE for n in self._out}
        parent: dict = {}
        # Deterministic iteration keeps victim selection reproducible.
        for root in sorted(self._out, key=repr):
            if colour.get(root, WHITE) is not WHITE:
                continue
            stack: list[tuple] = [(root, iter(sorted(self._out.get(root, ()), key=repr)))]
            colour[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    c = colour.get(nxt, WHITE)
                    if c is GREY:
                        # back edge: recover the cycle from the grey stack
                        cycle = [nxt]
                        cur = node
                        while cur != nxt:
                            cycle.append(cur)
                            cur = parent[cur]
                        cycle.reverse()
                        return cycle
                    if c is WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(sorted(self._out.get(nxt, ()), key=repr))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    # -- distribution -------------------------------------------------------------

    def union(self, *others: "WaitForGraph") -> "WaitForGraph":
        """A new graph containing this graph's and all ``others``' edges."""
        merged = WaitForGraph()
        for g in (self, *others):
            for a, b in g.edges():
                merged.add_edge(a, b)
        return merged

    def snapshot(self) -> list[tuple[Hashable, Hashable]]:
        """Serializable edge list (what a site ships to the detector)."""
        return self.edges()

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Hashable, Hashable]]) -> "WaitForGraph":
        g = cls()
        for a, b in edges:
            g.add_edge(a, b)
        return g


def newest_transaction(cycle: Iterable) -> Hashable:
    """The paper's victim rule: abort the most recently started transaction."""
    return max(cycle)
