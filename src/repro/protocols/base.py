"""Pluggable concurrency-protocol interface.

The paper stresses that DTX "was conceived in a flexible fashion, so that
other concurrency control protocols can be employed" and that, for the
evaluation, "the only modifications made to DTX were: the lock/document
representation structure and the lock application/release rules by
operation". This interface captures exactly those two degrees of freedom:

* a protocol owns a *representation structure* per document (XDGL: the
  DataGuide; Node2PL: the document tree itself; DocLock2PL: nothing), kept in
  sync after updates;
* a protocol translates each operation (query or update) into a
  :class:`~repro.locking.requests.LockSpec` over its own key space and mode
  vocabulary.

Everything else — scheduling, distribution, commit/abort, deadlock handling —
is protocol-independent DTX machinery.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Union

from ..locking.modes import CompatibilityMatrix
from ..locking.requests import LockSpec
from ..update.operations import AppliedChange, UpdateOperation
from ..xml.model import Document
from ..xpath.ast import LocationPath


class ConcurrencyProtocol(ABC):
    """Strategy object: lock rules + lock representation structure."""

    #: Short identifier used in reports and experiment tables.
    name: str = "abstract"

    @property
    @abstractmethod
    def matrix(self) -> CompatibilityMatrix:
        """The compatibility matrix for this protocol's lock modes."""

    @abstractmethod
    def register_document(self, doc: Document) -> None:
        """Build/refresh the representation structure for ``doc``."""

    @abstractmethod
    def drop_document(self, doc_name: str) -> None:
        """Forget a document's representation structure."""

    @abstractmethod
    def lock_spec_for_query(self, doc_name: str, path: Union[str, LocationPath]) -> LockSpec:
        """Locks needed to evaluate a read-only path expression."""

    @abstractmethod
    def lock_spec_for_update(self, doc_name: str, op: UpdateOperation) -> LockSpec:
        """Locks needed to execute one update operation."""

    def after_apply(self, doc_name: str, changes: list[AppliedChange]) -> None:
        """Sync the representation structure after changes were applied."""

    def after_undo(self, doc_name: str, changes: list[AppliedChange]) -> None:
        """Sync the representation structure after changes were rolled back."""

    def structure_node_count(self, doc_name: str) -> int:
        """Size of the lock representation structure (0 if none)."""
        return 0

    def structure_version(self, doc_name: str) -> "int | None":
        """Cheap monotonic version of the representation structure.

        ``None`` (the default) means the protocol has no inexpensive way to
        detect structure change, and callers must not cache anything derived
        from it. A protocol that returns an int guarantees: same version =>
        ``lock_spec_for_*`` would return an identical spec for the same
        operation — which lets a blocked operation's spec be reused across
        wait/retry attempts instead of being recomputed.
        """
        return None
