"""Concurrency-control protocols pluggable into DTX.

``make_protocol`` is the registry used by experiment configurations;
downstream users can subclass :class:`ConcurrencyProtocol` and register their
own (see ``examples/custom_protocol.py``).
"""

from typing import Callable

from ..errors import ConfigError
from .base import ConcurrencyProtocol
from .doclock import DocLock2PLProtocol
from .node2pl import Node2PLProtocol
from .xdgl import XDGLProtocol

_REGISTRY: dict[str, Callable[[], ConcurrencyProtocol]] = {
    "xdgl": XDGLProtocol,
    "node2pl": Node2PLProtocol,
    "doclock2pl": DocLock2PLProtocol,
}


def register_protocol(name: str, factory: Callable[[], ConcurrencyProtocol]) -> None:
    """Register a custom protocol factory under ``name``."""
    _REGISTRY[name] = factory


def make_protocol(name: str) -> ConcurrencyProtocol:
    """Instantiate a registered protocol by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown protocol {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def available_protocols() -> list[str]:
    return sorted(_REGISTRY)


__all__ = [
    "ConcurrencyProtocol",
    "DocLock2PLProtocol",
    "Node2PLProtocol",
    "XDGLProtocol",
    "available_protocols",
    "make_protocol",
    "register_protocol",
]
