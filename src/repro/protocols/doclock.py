"""DocLock2PL: the "traditional technique" baseline.

One S/X lock per document (paper §3.2: "a traditional technique which makes
use a complete lock on the document and uses the 2PC protocol"). Trivially
cheap to manage but serializes all writers — and any writer against all
readers — of a document.
"""

from __future__ import annotations

from typing import Union

from ..locking.modes import DOC_MATRIX, CompatibilityMatrix, DocLockMode
from ..locking.requests import LockSpec
from ..update.operations import UpdateOperation
from ..xml.model import Document
from ..xpath.ast import LocationPath
from .base import ConcurrencyProtocol


class DocLock2PLProtocol(ConcurrencyProtocol):
    name = "doclock2pl"

    def __init__(self) -> None:
        self._known: set[str] = set()

    @property
    def matrix(self) -> CompatibilityMatrix:
        return DOC_MATRIX

    def register_document(self, doc: Document) -> None:
        self._known.add(doc.name)

    def drop_document(self, doc_name: str) -> None:
        self._known.discard(doc_name)

    def lock_spec_for_query(
        self, doc_name: str, path: Union[str, LocationPath]
    ) -> LockSpec:
        spec = LockSpec(nodes_visited=1)
        spec.add((doc_name,), DocLockMode.S)
        return spec

    def lock_spec_for_update(self, doc_name: str, op: UpdateOperation) -> LockSpec:
        spec = LockSpec(nodes_visited=1)
        spec.add((doc_name,), DocLockMode.X)
        return spec

    def structure_node_count(self, doc_name: str) -> int:
        return 1
