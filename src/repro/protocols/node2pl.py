"""Node2PL: strict 2PL with navigational tree locks on *document* nodes.

The paper's stand-in for related work (§3: "we opted for adapting DTX and
using a locking protocol in trees (Node2PL), since the majority of related
works uses protocols with this characteristic"). Node2PL descends from
DOM-API locking (Haustein, Härder & Luttenberger, VLDB '06): a transaction
locks the nodes it *navigates*, not just the nodes it answers with.

Interpretation used here (documented in DESIGN.md):

* every node the evaluation *navigates* (all candidate nodes of every step,
  including nodes examined only to fail a predicate) costs a short-lived S
  lock: acquired and released within the operation, as DOM protocols do for
  navigation under DTX's read-committed isolation. These are charged as
  lock-manager work (``LockSpec.transient_ops``) but not retained;
* **query p** — S held to end-of-transaction on every node of every answer
  subtree; IS on the targets' ancestors.
* **insert** — X on the connecting node, IX on its ancestors.
* **remove / rename** — X on every node of the target subtree, IX ancestors.
* **change** — X on the target node, IX on ancestors.
* **transpose** — X on the source subtree and the destination node, IX on
  both ancestor chains.

Lock keys are ``(doc_name, node_id)``. The tree-lock pathologies the paper
measures follow: lock-manager work grows with document size (navigation +
subtree enumeration, Fig. 11a), every operation pays a per-node toll
(Figs. 9, 12), while node-granular retention blocks less finely than XDGL's
schema-level locks and so produces *fewer* deadlocks (Fig. 10).
"""

from __future__ import annotations

from itertools import count
from typing import Union

from ..errors import StorageError
from ..locking.modes import TREE_MATRIX, CompatibilityMatrix, TreeLockMode
from ..locking.requests import LockSpec
from ..update.operations import (
    ChangeOp,
    InsertOp,
    InsertPosition,
    RemoveOp,
    RenameOp,
    TransposeOp,
    UpdateOperation,
)
from ..xml.model import Document, Element
from ..xpath.ast import LocationPath
from ..xpath.evaluator import EvalStats, evaluate
from .base import ConcurrencyProtocol


# Process-wide version clock shared by all Node2PL instances, mirroring the
# DataGuide's: a re-registered document (snapshot install, recovery reload)
# can never report a version an older registration already reported, so a
# LockSpec cached against a version stays invalid across rebuilds — not
# just across edits.
_VERSION_CLOCK = count(1)


class Node2PLProtocol(ConcurrencyProtocol):
    name = "node2pl"

    def __init__(self) -> None:
        self._docs: dict[str, Document] = {}
        self._versions: dict[str, int] = {}

    @property
    def matrix(self) -> CompatibilityMatrix:
        return TREE_MATRIX

    # -- structure management ------------------------------------------------

    def register_document(self, doc: Document) -> None:
        # The "representation structure" of Node2PL *is* the document tree.
        self._docs[doc.name] = doc
        self._versions[doc.name] = next(_VERSION_CLOCK)

    def drop_document(self, doc_name: str) -> None:
        self._docs.pop(doc_name, None)
        self._versions.pop(doc_name, None)

    def after_apply(self, doc_name: str, changes) -> None:
        # Node2PL locks name document *nodes*: any applied change can add,
        # remove or move nodes, so every cached spec for the document is
        # stale. (XDGL's guide can skip bumps for structure-preserving
        # changes; the tree itself cannot.)
        if changes:
            self._versions[doc_name] = next(_VERSION_CLOCK)

    def after_undo(self, doc_name: str, changes) -> None:
        if changes:
            self._versions[doc_name] = next(_VERSION_CLOCK)

    def structure_version(self, doc_name: str) -> "int | None":
        """Same version => the tree is unchanged => ``lock_spec_for_*``
        would recompute the identical spec — retries may reuse it (the
        retry-time LockSpec cache, extended here from XDGL to Node2PL)."""
        return self._versions.get(doc_name)

    def _doc(self, doc_name: str) -> Document:
        try:
            return self._docs[doc_name]
        except KeyError:
            raise StorageError(f"document {doc_name!r} not registered") from None

    def structure_node_count(self, doc_name: str) -> int:
        return len(self._doc(doc_name))

    # -- lock rules -------------------------------------------------------------

    def _navigate(
        self, spec: LockSpec, doc_name: str, doc: Document, path
    ) -> tuple[list[Element], EvalStats]:
        """Evaluate ``path``, charging a short navigation lock per node."""
        stats = EvalStats()
        targets = evaluate(path, doc, stats)
        spec.transient_ops += stats.nodes_visited
        return targets, stats

    def lock_spec_for_query(
        self, doc_name: str, path: Union[str, LocationPath]
    ) -> LockSpec:
        doc = self._doc(doc_name)
        spec = LockSpec()
        targets, stats = self._navigate(spec, doc_name, doc, path)
        answer_nodes = 0
        for target in targets:
            for node in target.iter_subtree():
                spec.add((doc_name, node.node_id), TreeLockMode.S)
            answer_nodes += target.subtree_size()
            self._intention_locks(spec, doc_name, target, TreeLockMode.IS)
        spec.nodes_visited = stats.nodes_visited + answer_nodes
        return spec.deduplicated()

    def lock_spec_for_update(self, doc_name: str, op: UpdateOperation) -> LockSpec:
        doc = self._doc(doc_name)
        spec = LockSpec()
        extra_nodes = 0
        if isinstance(op, InsertOp):
            targets, stats = self._navigate(spec, doc_name, doc, op.target)
            for ref in targets:
                connecting = ref if op.position is InsertPosition.INTO else ref.parent
                if connecting is None:
                    continue
                spec.add((doc_name, connecting.node_id), TreeLockMode.X)
                self._intention_locks(spec, doc_name, connecting, TreeLockMode.IX)
        elif isinstance(op, (RemoveOp, RenameOp)):
            targets, stats = self._navigate(spec, doc_name, doc, op.target)
            for target in targets:
                for node in target.iter_subtree():
                    spec.add((doc_name, node.node_id), TreeLockMode.X)
                self._intention_locks(spec, doc_name, target, TreeLockMode.IX)
                extra_nodes += target.subtree_size()
        elif isinstance(op, ChangeOp):
            targets, stats = self._navigate(spec, doc_name, doc, op.target)
            for target in targets:
                spec.add((doc_name, target.node_id), TreeLockMode.X)
                self._intention_locks(spec, doc_name, target, TreeLockMode.IX)
        elif isinstance(op, TransposeOp):
            sources, stats = self._navigate(spec, doc_name, doc, op.source)
            destinations, dstats = self._navigate(spec, doc_name, doc, op.destination)
            for source in sources:
                for node in source.iter_subtree():
                    spec.add((doc_name, node.node_id), TreeLockMode.X)
                self._intention_locks(spec, doc_name, source, TreeLockMode.IX)
                extra_nodes += source.subtree_size()
            for dest in destinations:
                spec.add((doc_name, dest.node_id), TreeLockMode.X)
                self._intention_locks(spec, doc_name, dest, TreeLockMode.IX)
            extra_nodes += dstats.nodes_visited
        else:
            raise TypeError(f"unknown update operation {op!r}")
        spec.nodes_visited = stats.nodes_visited + extra_nodes
        return spec.deduplicated()

    def _intention_locks(
        self, spec: LockSpec, doc_name: str, node: Element, mode: TreeLockMode
    ) -> None:
        for anc in node.ancestors():
            spec.add((doc_name, anc.node_id), mode)
