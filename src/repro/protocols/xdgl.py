"""XDGL: multi-granularity locking over DataGuides (the DTX protocol).

Lock rules (paper §2, reconstructed details in DESIGN.md):

* **query p** — ST on each target guide node, IS on its ancestors; predicate
  nodes get ST + IS-ancestors.
* **insert f INTO p** — SI on the connecting node + IS ancestors; X on the
  inserted node's (possibly brand-new) guide path + IX ancestors; predicate
  nodes ST + IS. ``BEFORE``/``AFTER`` variants add SB/SA on the reference
  sibling's guide node (the parent is then the connecting node).
* **remove p** — XT on each target (the whole subtree is protected) + IX
  ancestors; predicate nodes ST + IS.
* **rename p TO n** — XT on the target (all subtree label paths change) + IX
  ancestors, plus X + IX-ancestors on the new label path.
* **change p** — X on the target + IX ancestors.
* **transpose p INTO q** — XT on the source + IX ancestors; SI on the
  destination + IS ancestors; X + IX-ancestors on the relocated path.

Lock keys are ``(doc_name, label_path)`` — stable across guide-node pruning
and re-creation, so a lock can name a path that does not exist yet (inserts).
"""

from __future__ import annotations

from typing import Union

from ..dataguide.guide import DataGuide, DataGuideNode
from ..errors import StorageError
from ..locking.modes import XDGL_MATRIX, CompatibilityMatrix, LockMode
from ..locking.requests import LockSpec
from ..update.operations import (
    AppliedChange,
    ChangeOp,
    InsertOp,
    InsertPosition,
    RemoveOp,
    RenameOp,
    TransposeOp,
    UpdateOperation,
)
from ..xml.model import Document
from ..xpath.ast import LocationPath
from ..xpath.evaluator import EvalStats
from ..xpath.guide import GuideMatch, match_structure
from .base import ConcurrencyProtocol


class XDGLProtocol(ConcurrencyProtocol):
    name = "xdgl"

    def __init__(self) -> None:
        self._guides: dict[str, DataGuide] = {}

    @property
    def matrix(self) -> CompatibilityMatrix:
        return XDGL_MATRIX

    # -- structure management ------------------------------------------------

    def register_document(self, doc: Document) -> None:
        self._guides[doc.name] = DataGuide.build(doc)

    def drop_document(self, doc_name: str) -> None:
        self._guides.pop(doc_name, None)

    def guide(self, doc_name: str) -> DataGuide:
        try:
            return self._guides[doc_name]
        except KeyError:
            raise StorageError(f"no DataGuide registered for document {doc_name!r}") from None

    def after_apply(self, doc_name: str, changes: list[AppliedChange]) -> None:
        guide = self.guide(doc_name)
        for change in changes:
            guide.apply_change(change)

    def after_undo(self, doc_name: str, changes: list[AppliedChange]) -> None:
        guide = self.guide(doc_name)
        for change in reversed(changes):
            guide.undo_change(change)

    def structure_node_count(self, doc_name: str) -> int:
        return self.guide(doc_name).node_count()

    def structure_version(self, doc_name: str) -> "int | None":
        guide = self._guides.get(doc_name)
        return None if guide is None else guide.version

    # -- lock rules -------------------------------------------------------------

    def lock_spec_for_query(
        self, doc_name: str, path: Union[str, LocationPath]
    ) -> LockSpec:
        guide = self.guide(doc_name)
        stats = EvalStats()
        match = match_structure(path, guide.root, stats)
        spec = LockSpec(nodes_visited=stats.nodes_visited)
        self._shared_tree_locks(spec, doc_name, match.targets)
        self._shared_tree_locks(spec, doc_name, match.predicate_targets)
        return spec.deduplicated()

    def lock_spec_for_update(self, doc_name: str, op: UpdateOperation) -> LockSpec:
        guide = self.guide(doc_name)
        stats = EvalStats()
        spec = LockSpec()
        if isinstance(op, InsertOp):
            self._insert_locks(spec, doc_name, guide, op, stats)
        elif isinstance(op, RemoveOp):
            match = match_structure(op.target, guide.root, stats)
            self._exclusive_tree_locks(spec, doc_name, match.targets)
            self._shared_tree_locks(spec, doc_name, match.predicate_targets)
        elif isinstance(op, RenameOp):
            match = match_structure(op.target, guide.root, stats)
            self._exclusive_tree_locks(spec, doc_name, match.targets)
            for t in match.targets:
                parent_path = t.label_path()[:-1]
                new_path = parent_path + (op.new_name,)
                self._exclusive_node_lock(spec, doc_name, new_path)
            self._shared_tree_locks(spec, doc_name, match.predicate_targets)
        elif isinstance(op, ChangeOp):
            match = match_structure(op.target, guide.root, stats)
            for t in match.targets:
                self._exclusive_node_lock(spec, doc_name, t.label_path())
            self._shared_tree_locks(spec, doc_name, match.predicate_targets)
        elif isinstance(op, TransposeOp):
            src = match_structure(op.source, guide.root, stats)
            dst = match_structure(op.destination, guide.root, stats)
            self._exclusive_tree_locks(spec, doc_name, src.targets)
            for d in dst.targets:
                spec.add((doc_name, d.label_path()), LockMode.SI)
                self._intention_locks(spec, doc_name, d, LockMode.IS)
                for s in src.targets:
                    new_path = d.label_path() + (s.tag,)
                    self._exclusive_node_lock(spec, doc_name, new_path)
            self._shared_tree_locks(spec, doc_name, src.predicate_targets)
            self._shared_tree_locks(spec, doc_name, dst.predicate_targets)
        else:
            raise TypeError(f"unknown update operation {op!r}")
        spec.nodes_visited = stats.nodes_visited
        return spec.deduplicated()

    # -- helpers -------------------------------------------------------------------

    def _shared_tree_locks(self, spec: LockSpec, doc: str, nodes: list[DataGuideNode]) -> None:
        """ST on each node, IS on each ancestor (query-side rule)."""
        for node in nodes:
            spec.add((doc, node.label_path()), LockMode.ST)
            self._intention_locks(spec, doc, node, LockMode.IS)

    def _exclusive_tree_locks(self, spec: LockSpec, doc: str, nodes: list[DataGuideNode]) -> None:
        """XT on each node, IX on each ancestor (remove/rename/transpose)."""
        for node in nodes:
            spec.add((doc, node.label_path()), LockMode.XT)
            self._intention_locks(spec, doc, node, LockMode.IX)

    def _exclusive_node_lock(self, spec: LockSpec, doc: str, path: tuple[str, ...]) -> None:
        """X on a label path (which may not exist yet) + IX on its prefixes."""
        spec.add((doc, path), LockMode.X)
        for depth in range(len(path) - 1, 0, -1):
            spec.add((doc, path[:depth]), LockMode.IX)

    def _intention_locks(
        self, spec: LockSpec, doc: str, node: DataGuideNode, mode: LockMode
    ) -> None:
        for anc in node.ancestors():
            spec.add((doc, anc.label_path()), mode)

    def _insert_locks(
        self,
        spec: LockSpec,
        doc_name: str,
        guide: DataGuide,
        op: InsertOp,
        stats: EvalStats,
    ) -> None:
        match = match_structure(op.target, guide.root, stats)
        for ref in match.targets:
            if op.position is InsertPosition.INTO:
                connecting = ref
            else:
                connecting = ref.parent
                # SB/SA protect the insertion position relative to the
                # reference sibling.
                side = LockMode.SB if op.position is InsertPosition.BEFORE else LockMode.SA
                spec.add((doc_name, ref.label_path()), side)
                self._intention_locks(spec, doc_name, ref, LockMode.IS)
            if connecting is None:
                continue  # inserting beside the root: rejected at apply time
            spec.add((doc_name, connecting.label_path()), LockMode.SI)
            self._intention_locks(spec, doc_name, connecting, LockMode.IS)
            new_path = connecting.label_path() + (op.fragment.tag,)
            self._exclusive_node_lock(spec, doc_name, new_path)
        self._shared_tree_locks(spec, doc_name, match.predicate_targets)
