"""Strong DataGuide (Goldman & Widom, VLDB '97) with incremental maintenance.

A strong DataGuide of a tree-shaped XML document is a label-path trie: every
root-to-node tag path that occurs in the document occurs **exactly once** in
the guide, and each guide node is annotated with its *target set* — the ids
of the document nodes reachable by that path.

XDGL locks guide nodes instead of document nodes: because the guide
summarizes arbitrarily many document nodes per label path, its size tracks
schema complexity rather than data volume, which is the source of DTX's low
lock-management overhead (paper §3: "it uses a summarized data structure ...
keeps a better size structure than the original XML document").

The guide is maintained incrementally from the
:class:`~repro.update.operations.AppliedChange` records produced by the
update applier, including pruning of guide nodes whose target set drains
(strong-DataGuide minimality).
"""

from __future__ import annotations

from itertools import count
from typing import Iterator, Optional

from ..errors import ReproError
from ..update.operations import AppliedChange
from ..xml.model import Document, Element

LabelPath = tuple[str, ...]

# Process-wide version clock shared by all guides: a freshly (re)built guide
# can never report a version some older guide of the same document already
# reported, so a LockSpec cached against a version stays invalid across
# rebuilds (snapshot installs, re-registration) — not just across edits.
_VERSION_CLOCK = count(1)


class DataGuideNode:
    """One label path of the document; annotated with its target set."""

    __slots__ = ("tag", "parent", "_children", "targets", "guide")

    def __init__(self, tag: str, parent: Optional["DataGuideNode"] = None):
        self.tag = tag
        self.parent = parent
        self._children: dict[str, DataGuideNode] = {}
        self.targets: set[int] = set()
        self.guide: Optional["DataGuide"] = None

    @property
    def children(self) -> tuple["DataGuideNode", ...]:
        """Child guide nodes (order = first-seen order, deterministic)."""
        return tuple(self._children.values())

    def child(self, tag: str) -> Optional["DataGuideNode"]:
        return self._children.get(tag)

    def label_path(self) -> LabelPath:
        parts = [self.tag]
        cur = self.parent
        while cur is not None:
            parts.append(cur.tag)
            cur = cur.parent
        parts.reverse()
        return tuple(parts)

    def ancestors(self) -> Iterator["DataGuideNode"]:
        cur = self.parent
        while cur is not None:
            yield cur
            cur = cur.parent

    def iter_subtree(self) -> Iterator["DataGuideNode"]:
        stack: list[DataGuideNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(list(node._children.values())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DataGuideNode {'/'.join(self.label_path())} targets={len(self.targets)}>"


class DataGuide:
    """Strong DataGuide of one document."""

    def __init__(self, doc_name: str):
        self.doc_name = doc_name
        self.root: Optional[DataGuideNode] = None
        self._by_path: dict[LabelPath, DataGuideNode] = {}
        # Bumped on every structural mutation (_add_path/_remove_path, which
        # apply_change/undo_change funnel through). Cached lock specs are
        # keyed against it: unchanged version => unchanged guide => the
        # spec a blocked operation computed is still exact on retry.
        self.version = next(_VERSION_CLOCK)

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, document: Document) -> "DataGuide":
        """Build the guide of ``document`` in one pass."""
        guide = cls(document.name)
        if document.root is not None:
            for node in document.iter():
                guide.add_document_node(node)
        return guide

    # -- lookups -----------------------------------------------------------

    def node_for_path(self, path: LabelPath) -> Optional[DataGuideNode]:
        """Guide node for a label path, or ``None`` if the path never occurs."""
        return self._by_path.get(tuple(path))

    def node_for_element(self, element: Element) -> Optional[DataGuideNode]:
        return self._by_path.get(element.label_path())

    def paths(self) -> list[LabelPath]:
        """All label paths, sorted (stable for reporting and tests)."""
        return sorted(self._by_path)

    def node_count(self) -> int:
        return len(self._by_path)

    def __len__(self) -> int:
        return len(self._by_path)

    def __contains__(self, path: LabelPath) -> bool:
        return tuple(path) in self._by_path

    # -- incremental maintenance -------------------------------------------

    def add_document_node(self, element: Element) -> DataGuideNode:
        """Record one document node (creating its guide path if needed)."""
        return self._add_path(element.label_path(), element.node_id)

    def _add_path(self, path: LabelPath, target_id: int) -> DataGuideNode:
        if not path:
            raise ReproError("empty label path")
        self.version = next(_VERSION_CLOCK)
        if self.root is None:
            self.root = DataGuideNode(path[0])
            self.root.guide = self
            self._by_path[(path[0],)] = self.root
        if self.root.tag != path[0]:
            raise ReproError(
                f"document {self.doc_name!r} root mismatch: "
                f"guide has {self.root.tag!r}, path starts with {path[0]!r}"
            )
        node = self.root
        for depth in range(1, len(path)):
            tag = path[depth]
            nxt = node._children.get(tag)
            if nxt is None:
                nxt = DataGuideNode(tag, parent=node)
                nxt.guide = self
                node._children[tag] = nxt
                self._by_path[path[: depth + 1]] = nxt
            node = nxt
        node.targets.add(target_id)
        return node

    def remove_document_node(self, element: Element) -> None:
        """Forget one document node; prunes drained guide branches."""
        self._remove_path(element.label_path(), element.node_id)

    def _remove_path(self, path: LabelPath, target_id: int) -> None:
        node = self._by_path.get(tuple(path))
        if node is None:
            raise ReproError(f"label path {'/'.join(path)} not in guide")
        self.version = next(_VERSION_CLOCK)
        node.targets.discard(target_id)
        self._prune(node)

    def _prune(self, node: DataGuideNode) -> None:
        """Remove ``node`` (and drained ancestors) once nothing targets it."""
        while node is not None and not node.targets and not node._children:
            parent = node.parent
            if parent is None:
                self.root = None
            else:
                del parent._children[node.tag]
            del self._by_path[node.label_path()]
            node.guide = None
            if parent is None:
                break
            node = parent

    def apply_change(self, change: AppliedChange) -> None:
        """Sync the guide with one applied (or undone) document mutation.

        For structural changes the applier records the affected subtree's old
        and new label paths; the guide re-registers target ids accordingly.
        ``change.node`` and its descendants are *live* for inserts/renames/
        transposes and *detached* for removes, so the node walk used here
        relies only on the recorded paths plus the subtree's current ids.
        """
        kind = change.kind
        if kind == "change":
            return  # text-only: no structural effect
        subtree = list(change.node.iter_subtree())
        if kind == "insert":
            for el in subtree:
                self.add_document_node(el)
            return
        if kind == "remove":
            if len(change.old_label_paths) != len(subtree):
                raise ReproError("remove change record is inconsistent")
            for path, el in zip(change.old_label_paths, subtree):
                self._remove_path(path, el.node_id)
            return
        if kind in ("rename", "transpose"):
            if len(change.old_label_paths) != len(subtree) or len(
                change.new_label_paths
            ) != len(subtree):
                raise ReproError(f"{kind} change record is inconsistent")
            for path, el in zip(change.old_label_paths, subtree):
                self._remove_path(path, el.node_id)
            for path, el in zip(change.new_label_paths, subtree):
                self._add_path(path, el.node_id)
            return
        raise ReproError(f"unknown change kind {kind!r}")

    def undo_change(self, change: AppliedChange) -> None:
        """Sync the guide with the rollback of ``change``.

        Contract: call this immediately after the *data* rollback of the same
        operation, unwinding operations newest-first — the method reads the
        live subtree under ``change.node``, so guide and document must be
        unwound in lockstep (this is what ``DTXSite._abort_at_site`` does).
        """
        kind = change.kind
        if kind == "change":
            return
        subtree = list(change.node.iter_subtree())
        if kind == "insert":
            for path, el in zip(change.new_label_paths, subtree):
                self._remove_path(path, el.node_id)
            return
        if kind == "remove":
            for el in subtree:
                self.add_document_node(el)
            return
        if kind in ("rename", "transpose"):
            for path, el in zip(change.new_label_paths, subtree):
                self._remove_path(path, el.node_id)
            for path, el in zip(change.old_label_paths, subtree):
                self._add_path(path, el.node_id)
            return
        raise ReproError(f"unknown change kind {kind!r}")

    # -- validation ----------------------------------------------------------

    def validate_against(self, document: Document) -> None:
        """Assert the strong-DataGuide invariants w.r.t. ``document``.

        1. Every label path in the document has exactly one guide node.
        2. Every guide node's target set equals the ids of the document nodes
           with that label path (completeness + minimality: no stale nodes).
        """
        expected: dict[LabelPath, set[int]] = {}
        for el in document.iter():
            expected.setdefault(el.label_path(), set()).add(el.node_id)
        actual = {path: set(node.targets) for path, node in self._by_path.items()}
        if expected != actual:
            missing = sorted(set(expected) - set(actual))
            stale = sorted(set(actual) - set(expected))
            diffs = [
                path
                for path in set(expected) & set(actual)
                if expected[path] != actual[path]
            ]
            raise ReproError(
                f"DataGuide out of sync with {document.name!r}: "
                f"missing={missing} stale={stale} target-mismatch={sorted(diffs)}"
            )

    def pretty(self) -> str:
        """Indented rendering of the guide (for docs, debugging, examples)."""
        if self.root is None:
            return "(empty guide)"
        lines: list[str] = []

        def walk(node: DataGuideNode, depth: int) -> None:
            lines.append(f"{'  ' * depth}{node.tag} [{len(node.targets)}]")
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)
