"""Strong DataGuide structural summaries (lock representation of XDGL)."""

from .guide import DataGuide, DataGuideNode, LabelPath

__all__ = ["DataGuide", "DataGuideNode", "LabelPath"]
