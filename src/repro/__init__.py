"""DTX — a distributed concurrency control mechanism for XML data.

Reproduction of Moreira, Sousa & Machado (ICPP Workshops 2009; extended in
J. Comput. Syst. Sci. 77, 2011). See README.md for a tour and DESIGN.md for
the system inventory.

Public API highlights
---------------------
* :class:`DTXCluster` — assemble sites, documents and clients; run.
* :class:`Transaction` / :class:`Operation` — the workload unit.
* :func:`make_protocol` / :func:`register_protocol` — concurrency protocols
  (``xdgl``, ``node2pl``, ``doclock2pl`` built in).
* :mod:`repro.xml`, :mod:`repro.xpath`, :mod:`repro.update` — the XML
  substrate (tree model, XPath subset, update language).
* :mod:`repro.workload` — XMark-style generator and the DTXTester simulator.
* :mod:`repro.experiments` — the paper's evaluation (Figs. 8-12).
"""

from .config import CostConfig, NetworkConfig, SystemConfig
from .distribution import ReplicaSet, ReplicationPolicy
from .core import (
    Client,
    ClientTxRecord,
    DTXCluster,
    DTXSite,
    Operation,
    OpKind,
    RunResult,
    Transaction,
    TxId,
    TxOutcome,
    TxState,
)
from .protocols import (
    ConcurrencyProtocol,
    available_protocols,
    make_protocol,
    register_protocol,
)

__version__ = "1.0.0"

__all__ = [
    "Client",
    "ClientTxRecord",
    "ConcurrencyProtocol",
    "CostConfig",
    "DTXCluster",
    "DTXSite",
    "NetworkConfig",
    "OpKind",
    "Operation",
    "ReplicaSet",
    "ReplicationPolicy",
    "RunResult",
    "SystemConfig",
    "Transaction",
    "TxId",
    "TxOutcome",
    "TxState",
    "available_protocols",
    "make_protocol",
    "register_protocol",
    "__version__",
]
