"""Event primitives for the discrete-event kernel.

The design follows the classic SimPy architecture: an :class:`Event` carries
callbacks and an outcome (value or exception); processes are generators that
``yield`` events and are resumed when those events fire. The kernel lives in
:mod:`repro.sim.environment`.

Hot-path layout notes: every class here is ``__slots__``-only and the
constructors of the high-volume types (:class:`Event`, :class:`Timeout`,
:class:`Process`) assign their fields flat instead of chaining through
``super().__init__`` — a simulated millisecond dispatches thousands of these.
Besides events, a process may yield a bare nonnegative number: the *flat
timer* path, equivalent to ``yield env.timeout(delay)`` but reusing one
preallocated tick event per process, so a pure timer step allocates nothing.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Iterable, Optional

from ..errors import SimulationError

_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    Life cycle: *pending* → *triggered* (outcome decided, scheduled on the
    event queue) → *processed* (callbacks ran).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env):
        self.env = env
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ---------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event has no outcome yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has no value yet")
        return self._value

    def defuse(self) -> None:
        """Mark a failure as handled so the kernel does not crash the run."""
        self._defused = True

    # -- outcome -----------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env._schedule(self, 0.0)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time in the future."""

    __slots__ = ("delay",)

    def __init__(self, env, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._schedule(self, delay)


class Process(Event):
    """Runs a generator; the Process event fires when the generator returns.

    The generator yields :class:`Event` instances; each resume sends the
    yielded event's value back in (or throws its exception, letting the
    process ``try/except`` failures of sub-events). Yielding a bare
    nonnegative ``int`` or ``float`` is the flat timer form of
    ``yield env.timeout(delay)``: same schedule position (both schedule at
    resume time, before anything else can run), no per-timer allocation —
    the process's one reusable tick event carries it. ``bool`` is
    deliberately not a timer (``yield True`` is a bug, not a zero-delay).
    """

    __slots__ = ("_generator", "_tick", "_tick_cbs", "_inline")

    def __init__(self, env, generator):
        if not hasattr(generator, "send"):
            raise SimulationError(f"process needs a generator, got {generator!r}")
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        # Environments whose queue *is* the stock bucket structure let the
        # flat-timer path below write ticks straight into it (saves a method
        # call per timer); kernels with their own queue (the differential
        # oracle) clear _FLAT_INLINE and ticks route through _schedule.
        self._inline: bool = env._FLAT_INLINE
        # The reusable tick: bootstraps the generator now, then carries every
        # flat-timer yield. Its singleton callback list is restored before
        # each reschedule (dispatch nulls it), so a timer step allocates
        # nothing. The tick never fails and carries no value, exactly like
        # the bootstrap event and a value-less Timeout.
        tick = Event.__new__(Event)
        tick.env = env
        tick.callbacks = cbs = [self._resume]
        tick._value = None
        tick._ok = True
        tick._defused = False
        self._tick = tick
        self._tick_cbs = cbs
        env._schedule(tick, 0.0)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def _resume(self, trigger: Event) -> None:
        generator = self._generator
        while True:
            try:
                if trigger._ok:
                    target = generator.send(trigger._value)
                else:
                    trigger._defused = True
                    target = generator.throw(trigger._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return
            cls = target.__class__
            if cls is float or cls is int:
                # Flat timer: reschedule the reusable tick.
                if target < 0:
                    exc = SimulationError(f"negative timeout delay {target!r}")
                    generator.close()
                    self.fail(exc)
                    return
                tick = self._tick
                tick.callbacks = self._tick_cbs
                env = self.env
                if self._inline:
                    # env._schedule(tick, target), by hand: this is the
                    # hottest line of the whole simulator.
                    t = env._now + target
                    buckets = env._buckets
                    b = buckets.get(t)
                    if b is None:
                        heappush(env._times, t)
                        buckets[t] = [tick]
                    else:
                        b.append(tick)
                else:
                    env._schedule(tick, target)
                return
            try:
                cbs = target.callbacks
            except AttributeError:
                exc = SimulationError(f"process yielded a non-event: {target!r}")
                generator.close()
                self.fail(exc)
                return
            if cbs is None:
                # Already fired: resume immediately with its outcome.
                trigger = target
                continue
            cbs.append(self._resume)
            return


class Condition(Event):
    """Base for AllOf/AnyOf: composite events over a set of children."""

    __slots__ = ("events", "_pending")

    def __init__(self, env, events: Iterable[Event]):
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different environments")
        self._pending = sum(1 for ev in self.events if not ev.processed)
        for ev in self.events:
            if ev.processed:
                if not self.triggered:
                    self._consume(ev)
            else:
                ev.callbacks.append(self._on_child)
        if not self.triggered:
            self._check_initial()

    def _on_child(self, ev: Event) -> None:
        self._pending -= 1
        if self.triggered:
            if not ev._ok:
                ev.defuse()  # outcome already decided; swallow the failure
            return
        self._consume(ev)

    def _consume(self, ev: Event) -> None:
        raise NotImplementedError

    def _check_initial(self) -> None:
        pass

    def results(self) -> dict[Event, Any]:
        """Outcome values of the children that have already *fired*.

        ``processed`` (not ``triggered``) is the right filter: a Timeout is
        triggered at creation — its outcome is pre-decided — but it has not
        happened until the clock reaches it.
        """
        return {ev: ev._value for ev in self.events if ev.processed}


class AllOf(Condition):
    """Fires when every child has fired; fails fast on the first failure."""

    __slots__ = ()

    def _consume(self, ev: Event) -> None:
        if not ev._ok:
            ev.defuse()
            self.fail(ev._value)
            return
        if self._pending == 0 and not self.triggered:
            self.succeed(self.results())

    def _check_initial(self) -> None:
        if self._pending == 0 and not self.triggered:
            self.succeed(self.results())


class AnyOf(Condition):
    """Fires as soon as one child fires (with that child's outcome)."""

    __slots__ = ()

    def _consume(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            ev.defuse()
            self.fail(ev._value)
            return
        self.succeed(self.results())

    def _check_initial(self) -> None:
        if not self.events:
            raise SimulationError("AnyOf needs at least one event")
