"""FIFO message stores for inter-process communication inside the simulation.

A :class:`Store` is the mailbox abstraction DTX sites use: the Listener
process ``get``\\ s from its inbox; the network ``put``\\ s delivered messages
into it. Unbounded, FIFO, with FIFO-ordered waiters.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .environment import Environment
from .events import Event


class Store:
    def __init__(self, env: Environment):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next item (immediately if buffered)."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def clear(self) -> int:
        """Discard all buffered items (a crashed site loses its queues).

        Waiting getters are left registered: the owning process keeps
        blocking until the site receives traffic again. Returns the number
        of items dropped.
        """
        dropped = len(self._items)
        self._items.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)
