"""FIFO message stores and scheduling queues for the simulation substrate.

A :class:`Store` is the mailbox abstraction DTX sites use: the Listener
process ``get``\\ s from its inbox; the network ``put``\\ s delivered messages
into it. Unbounded, FIFO, with FIFO-ordered waiters.

A :class:`SchedulerQueue` is the standalone, handle-based form of the indexed
bucket queue the :class:`~repro.sim.environment.Environment` inlines: items
pop in ``(time, schedule order)`` — exactly a classic ``(time, seq)`` heap's
order — without a heap operation per item, and entries can be cancelled or
rescheduled in O(1) via tombstones.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Iterator, Optional

from .environment import Environment
from .events import Event


class Store:
    def __init__(self, env: Environment):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that fires with the next item (immediately if buffered)."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def clear(self) -> int:
        """Discard all buffered items (a crashed site loses its queues).

        Waiting getters are left registered: the owning process keeps
        blocking until the site receives traffic again. Returns the number
        of items dropped.
        """
        dropped = len(self._items)
        self._items.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)


#: Tombstone left in a bucket slot by :meth:`SchedulerQueue.cancel`.
_CANCELLED = object()


class SchedulerQueue:
    """Indexed bucket priority queue with O(1) cancel and reschedule.

    Structure: a min-heap of distinct times plus ``time -> bucket`` where a
    bucket is the FIFO list of items scheduled for that time and a cursor
    marks how far it has been consumed. ``schedule`` returns an opaque
    handle; ``cancel`` tombstones the slot in place (pop skips tombstones);
    ``reschedule`` is cancel-then-schedule, keeping the item's identity but
    giving it a fresh (younger) position at its new time.

    Pop order is ``(time, schedule order)``: identical to pushing
    ``(time, seq)`` tuples on one big heap, which is what the
    Hypothesis model test in ``tests/test_sim_kernel.py`` checks against.
    """

    __slots__ = ("_times", "_buckets", "_heads", "_size")

    def __init__(self) -> None:
        self._times: list[float] = []  # min-heap of distinct bucket times
        self._buckets: dict[float, list] = {}
        self._heads: dict[float, int] = {}  # per-bucket consume cursor
        self._size = 0

    def __len__(self) -> int:
        """Number of live (scheduled, not yet popped or cancelled) entries."""
        return self._size

    def schedule(self, time: float, item: Any) -> tuple:
        """Queue ``item`` at ``time``; returns a handle for cancel/reschedule."""
        b = self._buckets.get(time)
        if b is None:
            heappush(self._times, time)
            b = self._buckets[time] = []
            self._heads[time] = 0
        b.append(item)
        self._size += 1
        return (time, b, len(b) - 1, item)

    def cancel(self, handle: tuple) -> bool:
        """Tombstone the handle's entry. Returns False if it already left
        the queue (popped, cancelled, or its bucket fully drained)."""
        time, b, idx, _item = handle
        if self._buckets.get(time) is not b:
            return False  # bucket drained and discarded
        if idx < self._heads[time]:
            return False  # already popped
        if b[idx] is _CANCELLED:
            return False  # already cancelled
        b[idx] = _CANCELLED
        self._size -= 1
        return True

    def reschedule(self, handle: tuple, new_time: float) -> Optional[tuple]:
        """Move the handle's item to ``new_time`` (as the youngest entry
        there). Returns the new handle, or ``None`` if the entry had
        already fired or been cancelled."""
        if not self.cancel(handle):
            return None
        return self.schedule(new_time, handle[3])

    def peek(self) -> Optional[tuple]:
        """``(time, item)`` of the next live entry without removing it."""
        entry = self._advance()
        if entry is None:
            return None
        t, b, i = entry
        return (t, b[i])

    def pop(self) -> Optional[tuple]:
        """Remove and return ``(time, item)`` for the earliest live entry,
        or ``None`` when the queue is empty."""
        entry = self._advance()
        if entry is None:
            return None
        t, b, i = entry
        item = b[i]
        self._heads[t] = i + 1
        self._size -= 1
        return (t, item)

    def _advance(self) -> Optional[tuple]:
        """Skip tombstones and exhausted buckets to the next live slot."""
        times = self._times
        buckets = self._buckets
        heads = self._heads
        while times:
            t = times[0]
            b = buckets[t]
            i = heads[t]
            n = len(b)
            while i < n and b[i] is _CANCELLED:
                i += 1
            if i < n:
                heads[t] = i
                return (t, b, i)
            heappop(times)
            del buckets[t]
            del heads[t]
        return None

    def drain(self) -> Iterator[tuple]:
        """Pop everything, yielding ``(time, item)`` pairs in order."""
        while True:
            nxt = self.pop()
            if nxt is None:
                return
            yield nxt
