"""Discrete-event simulation substrate (the paper's cluster, in software)."""

from .environment import Environment, RealtimeEnvironment
from .events import AllOf, AnyOf, Event, Process, Timeout
from .network import Network, NetworkStats
from .queues import SchedulerQueue, Store
from .rng import substream

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Network",
    "NetworkStats",
    "Process",
    "RealtimeEnvironment",
    "SchedulerQueue",
    "Store",
    "Timeout",
    "substream",
]
