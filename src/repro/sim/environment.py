"""The discrete-event simulation kernel.

A minimal, deterministic SimPy-style environment: a time-ordered event queue,
generator-based processes, timeouts and composite conditions. Determinism
matters more here than raw speed — two runs with the same configuration and
seed produce identical schedules, which the reproduction's tests assert on —
but speed matters too: the queue is an *indexed bucket queue*, a min-heap of
distinct event times plus a dict mapping each time to the FIFO list of items
scheduled for it. Scheduling at an already-known time is one dict lookup and
a list append (no heap operation); draining dispatches a whole same-time
bucket in one pass, which batches same-tick message deliveries. FIFO bucket
order is exactly the ``(time, seq)`` order of a classic one-entry-per-item
scheduling heap — that classic kernel is preserved in
:mod:`repro.verify.schedule_digest` as a differential oracle, and
``tests/test_kernel_equivalence.py`` asserts event-by-event trace equality
between the two on full DTX workloads.

Queue items are either :class:`Event` objects or flat ``(fn, arg)`` tuples —
the allocation-free path used for network message delivery (see
:meth:`Environment._schedule_flat`).

A :class:`RealtimeEnvironment` subclass runs the same programs against the
wall clock (scaled), so demos can watch a DTX cluster "live" while every test
and benchmark uses pure virtual time.
"""

from __future__ import annotations

import time as _time
from heapq import heappop, heappush
from math import inf as _INF
from typing import Any, Callable, Iterable, Optional

from ..errors import SimulationError
from .events import AllOf, AnyOf, Event, Process, Timeout


class Environment:
    """Execution environment: virtual clock plus the pending-event queue."""

    #: Subclasses that must dispatch item-at-a-time (realtime pacing) set
    #: this; an attached ``_tracer`` forces the same step-wise driver.
    _STEPWISE = False

    #: The flat-timer path in :meth:`Process._resume` writes tick events
    #: straight into ``_times``/``_buckets`` (one method call saved on the
    #: hottest line of the simulator). A subclass that replaces the queue —
    #: like the differential oracle's classic heap — MUST clear this so
    #: ticks go through its ``_schedule`` override.
    _FLAT_INLINE = True

    __slots__ = ("_now", "_times", "_buckets", "_tracer")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._times: list[float] = []  # min-heap of distinct bucket times
        self._buckets: dict[float, list] = {}  # time -> FIFO list of items
        self._tracer: Optional[Callable[[float, Any], None]] = None

    @property
    def now(self) -> float:
        """Current simulated time (milliseconds, by this project's convention)."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        t = self._now + delay
        buckets = self._buckets
        b = buckets.get(t)
        if b is None:
            heappush(self._times, t)
            buckets[t] = [event]
        else:
            b.append(event)

    def _schedule_flat(self, delay: float, fn: Callable[[Any], None], arg: Any) -> None:
        """Queue a bare ``fn(arg)`` call ``delay`` units from now.

        The flat form of scheduling: no Event is allocated and dispatch is a
        single call. Used on the highest-volume path (message delivery).
        """
        t = self._now + delay
        buckets = self._buckets
        b = buckets.get(t)
        if b is None:
            heappush(self._times, t)
            buckets[t] = [(fn, arg)]
        else:
            b.append((fn, arg))

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def schedule_call(self, delay: float, fn, *args) -> Event:
        """Invoke ``fn(*args)`` after ``delay`` simulated units.

        The kernel-level hook fault schedules are built on: crashing or
        recovering a site at an absolute point of the simulation must not
        depend on any process being runnable at that site.
        """
        if delay < 0:
            raise SimulationError(f"negative schedule_call delay {delay!r}")
        ev = Event(self)
        ev.callbacks.append(lambda _ev: fn(*args))
        ev._ok = True
        ev._value = None
        self._schedule(ev, delay)
        return ev

    # -- execution --------------------------------------------------------------

    def step(self) -> None:
        """Process exactly one queue item."""
        times = self._times
        if not times:
            raise SimulationError("step on an empty event queue")
        t = times[0]
        buckets = self._buckets
        b = buckets[t]
        item = b.pop(0)
        if not b:
            heappop(times)
            del buckets[t]
        self._now = t
        if self._tracer is not None:
            self._tracer(t, item)
        if item.__class__ is tuple:
            item[0](item[1])
            return
        callbacks = item.callbacks
        item.callbacks = None  # mark processed
        for callback in callbacks:
            callback(item)
        if not item._ok and not item._defused:
            raise item._value

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        times = self._times
        return times[0] if times else _INF

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to queue exhaustion), a number (run up
        to that time) or an :class:`Event` (run until it fires; its value is
        returned, or its exception raised).
        """
        if self._tracer is not None or self._STEPWISE:
            return self._run_stepwise(until)
        if until is None:
            self._drain(_INF)
            return None
        if isinstance(until, Event):
            return self._run_until_event(until)
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"cannot run until {horizon} < now {self._now}")
        self._drain(horizon)
        self._now = horizon
        return None

    def _drain(self, horizon: float) -> None:
        """Dispatch every item scheduled at or before ``horizon``."""
        times = self._times
        buckets = self._buckets
        while times and times[0] <= horizon:
            t = heappop(times)
            self._now = t
            b = buckets.pop(t)
            # Items scheduled *for this same time* during dispatch open a
            # fresh bucket (and re-push t, drained next iteration) — they
            # run after everything already queued, exactly like a classic
            # heap where later schedules carry higher sequence numbers.
            # (The popped bucket itself is never mutated mid-iteration, so
            # iterating it directly is safe; ``i`` only feeds _restore.)
            i = 0
            try:
                for item in b:
                    i += 1
                    if item.__class__ is tuple:
                        item[0](item[1])
                        continue
                    callbacks = item.callbacks
                    item.callbacks = None
                    for callback in callbacks:
                        callback(item)
                    if not item._ok and not item._defused:
                        raise item._value
            except BaseException:
                self._restore(t, b[i:])
                raise

    def _run_until_event(self, until: Event) -> Any:
        times = self._times
        buckets = self._buckets
        while until.callbacks is not None:
            if not times:
                raise SimulationError(
                    "simulation ran out of events before the awaited event fired"
                )
            t = heappop(times)
            self._now = t
            b = buckets.pop(t)
            i = 0
            try:
                for item in b:
                    i += 1
                    if item.__class__ is tuple:
                        item[0](item[1])
                        continue
                    callbacks = item.callbacks
                    item.callbacks = None
                    for callback in callbacks:
                        callback(item)
                    if not item._ok and not item._defused:
                        raise item._value
                    if item is until:
                        # Stop mid-bucket: put the unprocessed tail back.
                        self._restore(t, b[i:])
                        break
            except BaseException:
                self._restore(t, b[i:])
                raise
        if until._ok:
            return until._value
        until.defuse()
        raise until._value

    def _restore(self, t: float, rest: list) -> None:
        """Re-queue the unprocessed remainder of a bucket (after an exception
        or an early run-until stop), ahead of any same-time items scheduled
        since — those newcomers are younger and would also sort later by
        sequence number in the classic heap."""
        if not rest:
            return
        buckets = self._buckets
        cur = buckets.get(t)
        if cur is None:
            heappush(self._times, t)
            buckets[t] = rest
        else:
            buckets[t] = rest + cur

    def _run_stepwise(self, until: Optional[Any] = None) -> Any:
        """Item-at-a-time driver used when tracing or pacing in real time.

        Dispatch order is identical to the fast drain loops; only the loop
        granularity differs (every item goes through :meth:`step`).
        """
        if until is None:
            while self._times:
                self.step()
            return None
        if isinstance(until, Event):
            while until.callbacks is not None:
                if not self._times:
                    raise SimulationError(
                        "simulation ran out of events before the awaited event fired"
                    )
                self.step()
            if until._ok:
                return until._value
            until.defuse()
            raise until._value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"cannot run until {horizon} < now {self._now}")
        times = self._times
        while times and times[0] <= horizon:
            self.step()
        self._now = horizon
        return None


class RealtimeEnvironment(Environment):
    """Run the same event programs against the wall clock.

    ``factor`` maps simulated units to wall seconds (``factor=0.001`` runs
    one simulated millisecond per real millisecond). ``strict=False`` lets
    slow callbacks overrun without raising.
    """

    _STEPWISE = True

    __slots__ = ("factor", "strict", "_real_start", "_sim_start")

    def __init__(self, initial_time: float = 0.0, factor: float = 0.001, strict: bool = False):
        super().__init__(initial_time)
        if factor <= 0:
            raise SimulationError("factor must be > 0")
        self.factor = factor
        self.strict = strict
        self._real_start = _time.monotonic()
        self._sim_start = initial_time

    def step(self) -> None:
        if not self._times:
            raise SimulationError("step on an empty event queue")
        sim_due = self._times[0]
        real_due = self._real_start + (sim_due - self._sim_start) * self.factor
        delay = real_due - _time.monotonic()
        if delay > 0:
            _time.sleep(delay)
        elif self.strict and delay < -self.factor:
            raise SimulationError(
                f"real-time simulation fell behind by {-delay:.3f}s"
            )
        super().step()
