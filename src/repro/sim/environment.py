"""The discrete-event simulation kernel.

A minimal, deterministic SimPy-style environment: a time-ordered event queue,
generator-based processes, timeouts and composite conditions. Determinism
matters more here than raw speed — two runs with the same configuration and
seed produce identical schedules, which the reproduction's tests assert on.

A :class:`RealtimeEnvironment` subclass runs the same programs against the
wall clock (scaled), so demos can watch a DTX cluster "live" while every test
and benchmark uses pure virtual time.
"""

from __future__ import annotations

import time as _time
from heapq import heappop, heappush
from typing import Any, Iterable, Optional

from ..errors import SimulationError
from .events import AllOf, AnyOf, Event, Process, Timeout


class Environment:
    """Execution environment: virtual clock plus the pending-event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._eid = 0

    @property
    def now(self) -> float:
        """Current simulated time (milliseconds, by this project's convention)."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        heappush(self._queue, (self._now + delay, self._eid, event))
        self._eid += 1

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def schedule_call(self, delay: float, fn, *args) -> Event:
        """Invoke ``fn(*args)`` after ``delay`` simulated units.

        The kernel-level hook fault schedules are built on: crashing or
        recovering a site at an absolute point of the simulation must not
        depend on any process being runnable at that site.
        """
        if delay < 0:
            raise SimulationError(f"negative schedule_call delay {delay!r}")
        ev = Event(self)
        ev.callbacks.append(lambda _ev: fn(*args))
        ev._ok = True
        ev._value = None
        self._schedule(ev, delay)
        return ev

    # -- execution --------------------------------------------------------------

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step on an empty event queue")
        when, _, event = heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to queue exhaustion), a number (run up
        to that time) or an :class:`Event` (run until it fires; its value is
        returned, or its exception raised).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            while not until.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited event fired"
                    )
                self.step()
            if until._ok:
                return until._value
            until.defuse()
            raise until._value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"cannot run until {horizon} < now {self._now}")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None


class RealtimeEnvironment(Environment):
    """Run the same event programs against the wall clock.

    ``factor`` maps simulated units to wall seconds (``factor=0.001`` runs
    one simulated millisecond per real millisecond). ``strict=False`` lets
    slow callbacks overrun without raising.
    """

    def __init__(self, initial_time: float = 0.0, factor: float = 0.001, strict: bool = False):
        super().__init__(initial_time)
        if factor <= 0:
            raise SimulationError("factor must be > 0")
        self.factor = factor
        self.strict = strict
        self._real_start = _time.monotonic()
        self._sim_start = initial_time

    def step(self) -> None:
        if not self._queue:
            raise SimulationError("step on an empty event queue")
        sim_due = self._queue[0][0]
        real_due = self._real_start + (sim_due - self._sim_start) * self.factor
        delay = real_due - _time.monotonic()
        if delay > 0:
            _time.sleep(delay)
        elif self.strict and delay < -self.factor:
            raise SimulationError(
                f"real-time simulation fell behind by {-delay:.3f}s"
            )
        super().step()
