"""Deterministic random-stream derivation.

Every stochastic component of a simulation (network jitter, client think
times, workload generation per client, ...) draws from its own named
substream derived from the master seed, so adding a component or reordering
draws in one component never perturbs another — runs stay exactly
reproducible and comparable across configurations.
"""

from __future__ import annotations

import hashlib
import random
from functools import lru_cache


@lru_cache(maxsize=4096)
def _derived_seed(material: bytes) -> int:
    """Cached blake2b seed derivation — clusters re-derive the same named
    substreams on every construction, so the hash work is memoized. Only
    the derived *integer* is cached; every :func:`substream` call still
    returns a fresh, independent generator."""
    return int.from_bytes(hashlib.blake2b(material, digest_size=8).digest(), "big")


def substream(seed: int, *names: object) -> random.Random:
    """A :class:`random.Random` derived from ``seed`` and a name path.

    ``substream(7, "client", 3)`` is stable across processes and Python
    versions (blake2b, not ``hash()``).
    """
    material = repr((int(seed),) + tuple(str(n) for n in names)).encode()
    return random.Random(_derived_seed(material))
