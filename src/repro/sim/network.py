"""Simulated LAN connecting DTX sites.

Models the paper's evaluation network (eight PCs on a 100 Mbit/s full-duplex
Ethernet hub): per-message cost = base latency + size/bandwidth + jitter.
Same-site delivery (coordinator sending to itself as a participant) costs a
small constant.

The network owns one inbox :class:`~repro.sim.queues.Store` per registered
site and keeps delivery statistics that the experiment reports surface
(message counts and bytes are how "synchronization overhead in all the
sites" shows up in the numbers).

Besides fail-stop endpoints (``set_down``), the network models the faults a
lease-based failure detector exists for: **partitions** (``partition`` splits
the sites into groups; traffic between groups is dropped until ``heal``) and
**per-link loss** (``set_link_loss`` drops a fraction of one direction's
messages, drawn from a dedicated RNG substream so configurations without
loss consume exactly the same jitter stream as before). Both make *false
suspicion* reachable: a site can be alive yet unheard-from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Optional

from ..config import NetworkConfig
from ..errors import SimulationError
from .environment import Environment
from .queues import Store
from .rng import substream


@dataclass
class NetworkStats:
    messages: int = 0
    bytes: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    local_messages: int = 0
    dropped: int = 0  # messages lost to crashed endpoints
    partition_drops: int = 0  # messages lost to a partition cut
    loss_drops: int = 0  # messages lost to per-link loss

    def record(self, kind: str, size: int, local: bool) -> None:
        self.messages += 1
        self.bytes += size
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        if local:
            self.local_messages += 1


class Network:
    def __init__(self, env: Environment, config: NetworkConfig, seed: int = 0):
        self.env = env
        self.config = config
        self._inboxes: dict[Hashable, Store] = {}
        self._rng = substream(seed, "network")
        self._down: set = set()
        # Partition state: site -> group index. Sites mapped to different
        # groups cannot exchange messages; unmapped sites share one
        # implicit group. Empty dict = fully connected.
        self._partition: dict[Hashable, int] = {}
        # Per-directed-link loss probability, (src, dst) -> p in (0, 1].
        # Drawn from its own substream so runs without configured loss
        # consume exactly the same jitter stream as before.
        self._link_loss: dict[tuple, float] = {}
        self._loss_rng = substream(seed, "network", "loss")
        self.stats = NetworkStats()

    # -- topology -----------------------------------------------------------

    def register(self, site_id: Hashable) -> Store:
        if site_id in self._inboxes:
            raise SimulationError(f"site {site_id!r} already registered")
        inbox = Store(self.env)
        self._inboxes[site_id] = inbox
        return inbox

    def inbox(self, site_id: Hashable) -> Store:
        try:
            return self._inboxes[site_id]
        except KeyError:
            raise SimulationError(f"unknown site {site_id!r}") from None

    @property
    def site_ids(self) -> list:
        return list(self._inboxes)

    # -- liveness -----------------------------------------------------------

    def set_down(self, site_id: Hashable) -> None:
        """Partition ``site_id`` off: its sends and deliveries are dropped."""
        self._down.add(site_id)

    def set_up(self, site_id: Hashable) -> None:
        self._down.discard(site_id)

    def is_up(self, site_id: Hashable) -> bool:
        return site_id not in self._down

    # -- partitions and lossy links ------------------------------------------

    def partition(self, *groups: Iterable[Hashable]) -> None:
        """Split the network: sites in different ``groups`` cannot talk.

        Sites not named in any group form one implicit extra group of
        their own (together). Replaces any previous partition. Messages
        already in flight across the new cut are dropped at delivery time
        — a partition severs the wire, not just future sends.
        """
        self._partition = {}
        for index, group in enumerate(groups):
            for site_id in group:
                if site_id in self._partition:
                    raise SimulationError(
                        f"site {site_id!r} named in two partition groups"
                    )
                self._partition[site_id] = index

    def heal_partition(self) -> None:
        """Reconnect everything (in-flight cross-cut messages stay lost)."""
        self._partition = {}

    def set_link_loss(
        self, src: Hashable, dst: Hashable, probability: float, symmetric: bool = True
    ) -> None:
        """Drop ``probability`` of the messages on ``src -> dst``.

        ``probability`` 0 removes the rule; 1 blackholes the link.
        ``symmetric`` applies the same rule to the reverse direction.
        """
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(f"loss probability {probability!r} not in [0, 1]")
        links = [(src, dst), (dst, src)] if symmetric else [(src, dst)]
        for link in links:
            if probability <= 0.0:
                self._link_loss.pop(link, None)
            else:
                self._link_loss[link] = probability

    def reachable(self, src: Hashable, dst: Hashable) -> bool:
        """Whether the partition map currently lets ``src`` reach ``dst``.

        Liveness (`is_up`) and probabilistic loss are separate concerns;
        this answers only the partition question.
        """
        if src == dst or not self._partition:
            return True
        implicit = max(self._partition.values()) + 1
        return self._partition.get(src, implicit) == self._partition.get(dst, implicit)

    # -- transmission ----------------------------------------------------------

    def delay_for(self, src: Hashable, dst: Hashable, size_bytes: int) -> float:
        if src == dst:
            return self.config.local_ms
        jitter = self._rng.uniform(0.0, self.config.jitter_ms)
        return (
            self.config.latency_ms
            + (size_bytes / 1024.0) * self.config.per_kb_ms
            + jitter
        )

    def send(
        self,
        src: Hashable,
        dst: Hashable,
        payload: Any,
        size_bytes: Optional[int] = None,
    ) -> float:
        """Deliver ``payload`` to ``dst``'s inbox after the modelled delay.

        Returns the delay used (tests assert on it). ``size_bytes`` defaults
        to ``payload.size_bytes()`` when the payload provides it.
        """
        if src in self._down or dst in self._down:
            # A crashed endpoint neither transmits nor receives; the message
            # silently disappears (timeouts / failure notices recover).
            self.stats.dropped += 1
            return 0.0
        if not self.reachable(src, dst):
            self.stats.partition_drops += 1
            return 0.0
        loss = self._link_loss.get((src, dst))
        if loss is not None and self._loss_rng.random() < loss:
            self.stats.loss_drops += 1
            return 0.0
        inbox = self.inbox(dst)
        if size_bytes is None:
            size_bytes = getattr(payload, "size_bytes", lambda: 64)()
        delay = self.delay_for(src, dst, size_bytes)
        kind = payload.__class__.__name__
        self.stats.record(kind, size_bytes, local=(src == dst))
        # Flat scheduling: no Event or closure per message. All deliveries
        # landing on the same tick share one kernel bucket and are drained
        # in a single dispatch pass.
        self.env._schedule_flat(delay, self._deliver, (src, dst, inbox, payload))
        return delay

    def _deliver(self, args: tuple) -> None:
        # Re-check at delivery time: the destination may have crashed —
        # or a partition may have cut the link — while the message was
        # in flight.
        src, dst, inbox, payload = args
        if dst in self._down:
            self.stats.dropped += 1
            return
        if not self.reachable(src, dst):
            self.stats.partition_drops += 1
            return
        inbox.put(payload)
