"""Benchmark trajectory harness: the repo's canonical perf yardstick.

Every performance PR is judged against the ``BENCH_<n>.json`` files at the
repository root. Each file is one run of this harness — a fixed-seed suite
of wall-clock and simulated-metric probes:

* **lock micro** — raw :class:`~repro.locking.table.LockTable`
  acquire/release throughput (wall-clock ops/sec);
* **kernel micro** — simulation-kernel event throughput (wall-clock
  events/sec, flat-timer path) plus the :func:`probe_kernel` breakdown:
  Timeout-object dispatch, scheduler-queue churn, and message allocation
  raw vs pooled;
* **macro** — a standard mixed replicated workload: wall seconds to run
  it, wall transactions/sec (the regression-check headline), and the
  simulated commit latency;
* **contended** — many writer groups hammering disjoint hot keys of one
  document: wake notices + lock-table operations per committed
  transaction (what ``wake_policy="targeted"`` attacks);
* **high-write** — non-conflicting writers on one replicated document:
  replica-sync messages per committed write (what group commit attacks);
* **latency decomposition** — a traced contended run pushed through the
  :mod:`repro.obs` critical-path analyzer: per-phase shares (lock wait,
  network, execution, 2PC, ...) of committed response time. Simulated
  time only, bit-deterministic per feature set.

The simulated metrics are bit-deterministic per feature set; the state
digests let two runs prove their committed replica states byte-identical.
Wall-clock numbers are machine-dependent — compare them only across runs
on the same hardware, which is what the CI regression check does via
``python -m repro bench --check`` (threshold ``REPRO_BENCH_REGRESSION_PCT``,
default 20; skipped when no ``BENCH_*.json`` baseline exists).

``REPRO_BENCH_ROUNDS`` raises the wall-probe repetition count (best-of is
reported); the harness itself never uses fewer than 3 rounds.
"""

from __future__ import annotations

import argparse
import gc
import glob
import hashlib
import json
import os
import platform
import re
import sys
import time

from ..config import SystemConfig
from ..core.cluster import DTXCluster
from ..core.transaction import Operation, Transaction
from ..locking.modes import XDGL_MATRIX, LockMode
from ..locking.table import LockTable
from ..sim.environment import Environment
from ..update.operations import ChangeOp, InsertOp
from ..workload.generator import WorkloadSpec
from ..xml.builder import E, doc
from ..xml.serializer import serialize_document
from .runner import ExperimentConfig, run_experiment

SCHEMA = 1

#: The two canonical feature sets of the hot-path overhaul. ``baseline``
#: is the pre-optimisation configuration (paper-fidelity broadcast wakes,
#: per-transaction sync rounds, no LockSpec reuse); ``optimized`` turns
#: all three config-gated optimisations on. The process-wide XPath parse
#: memo is structural (not config-gated) and active under both, so
#: baseline wall numbers are, if anything, flattered — the deltas are
#: conservative. BENCH_0.json was recorded with ``baseline``,
#: BENCH_1.json with ``optimized``.
FEATURE_SETS = {
    "baseline": {
        "wake_policy": "broadcast",
        "group_commit_window_ms": 0.0,
        "spec_cache": False,
    },
    "optimized": {
        "wake_policy": "targeted",
        "group_commit_window_ms": 0.5,
        "spec_cache": True,
    },
}


def machine_info() -> dict:
    """The hardware/runtime facts wall-clock numbers depend on.

    Recorded into every BENCH_<n>.json so ``--check`` can tell a real
    regression from a cross-machine comparison (which only warrants a
    warning — wall numbers are only comparable on the same hardware).
    """
    return {
        "cpu_count": os.cpu_count() or 0,
        "python": platform.python_version(),
    }


def bench_rounds(minimum: int = 3) -> int:
    """Wall-probe repetitions: ``REPRO_BENCH_ROUNDS``, floored at 3 here."""
    try:
        rounds = int(os.environ.get("REPRO_BENCH_ROUNDS", "0"))
    except ValueError:
        rounds = 0
    return max(minimum, rounds)


def _best_of(fn, rounds: int) -> tuple[float, object]:
    """Run ``fn`` ``rounds`` times; return (best wall seconds, last result).

    GC is paused around the timed region: a collection landing inside one
    round otherwise dominates the microsecond-scale probes (best-of helps,
    but with few rounds every sample can be hit on a busy machine).
    """
    best = float("inf")
    result = None
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return best, result


# ----------------------------------------------------------------------
# micro probes (pure wall clock)
# ----------------------------------------------------------------------

def probe_lock_table(n_ops: int = 40_000, rounds: int = 3) -> float:
    """Raw lock-table throughput in operations per second."""
    keys = [("d", ("a", f"k{i}")) for i in range(64)]
    modes = (LockMode.ST, LockMode.IS, LockMode.IX)

    def run() -> None:
        table = LockTable(XDGL_MATRIX)
        per_cycle = len(keys) * len(modes) + len(keys) // 4 + 1
        for cycle in range(max(1, n_ops // per_cycle)):
            tx = f"t{cycle % 8}"
            for key in keys:
                for mode in modes:
                    table.try_acquire(key, tx, mode)
            if cycle % 4 == 3:
                table.release_transaction(tx)

    seconds, _ = _best_of(run, rounds)
    return n_ops / max(seconds, 1e-9)


def probe_sim_kernel(n_events: int = 120_000, rounds: int = 3) -> float:
    """Simulation-kernel event throughput in events per second.

    Measures the kernel's canonical timer form — the flat numeric yield
    (``yield 0.01``), which is what the site hot paths use. The classic
    Timeout-object path is measured separately by :func:`probe_kernel`.
    """

    def run() -> None:
        env = Environment()

        def ticker(n):
            for _ in range(n):
                yield 0.01

        for lane in range(4):
            env.process(ticker(n_events // 4))
        env.run()

    seconds, _ = _best_of(run, rounds)
    return n_events / max(seconds, 1e-9)


def probe_kernel(rounds: int = 3) -> dict:
    """Kernel micro-probes beyond the headline events/s number.

    * ``event_dispatch_per_s`` — the classic Timeout-object path (one event
      allocation per timer), the pre-flat-timer shape of probe_sim_kernel;
    * ``queue_churn_ops_per_s`` — :class:`~repro.sim.queues.SchedulerQueue`
      schedule/cancel/pop churn (timer-wheel style usage with retractions);
    * ``msg_alloc_per_s`` / ``msg_pool_per_s`` — RemoteOpResult construction
      raw vs recycled through a :class:`~repro.core.messages.MessagePool`.
    """
    from ..core.messages import MessagePool, RemoteOpResult
    from ..sim.queues import SchedulerQueue

    n_events = 60_000

    def dispatch() -> None:
        env = Environment()

        def ticker(n):
            for _ in range(n):
                yield env.timeout(0.01)

        for lane in range(4):
            env.process(ticker(n_events // 4))
        env.run()

    dispatch_s, _ = _best_of(dispatch, rounds)

    n_churn = 60_000

    def churn() -> None:
        q = SchedulerQueue()
        handles = []
        for i in range(n_churn):
            handles.append(q.schedule(float(i % 97), i))
            if i % 3 == 2:
                q.cancel(handles[i - 2])
            if i % 7 == 6:
                q.pop()
        while len(q):
            q.pop()

    churn_s, _ = _best_of(churn, rounds)

    n_msgs = 50_000

    def make(pool: MessagePool | None) -> None:
        for i in range(n_msgs):
            if pool is None:
                msg = RemoteOpResult(
                    tid="t", site="s", op_index=i, attempt=0,
                    acquired=True, executed=True, deadlock=False, failed=False,
                )
            else:
                msg = pool.acquire(
                    RemoteOpResult,
                    tid="t", site="s", op_index=i, attempt=0,
                    acquired=True, executed=True, deadlock=False, failed=False,
                )
                pool.release(msg)

    alloc_s, _ = _best_of(lambda: make(None), rounds)
    pool_s, _ = _best_of(lambda: make(MessagePool()), rounds)

    return {
        "event_dispatch_per_s": n_events / max(dispatch_s, 1e-9),
        "queue_churn_ops_per_s": n_churn / max(churn_s, 1e-9),
        "msg_alloc_per_s": n_msgs / max(alloc_s, 1e-9),
        "msg_pool_per_s": n_msgs / max(pool_s, 1e-9),
    }


# ----------------------------------------------------------------------
# macro probe (standard workload: wall throughput + sim latency)
# ----------------------------------------------------------------------

def macro_params(quick: bool = False) -> dict:
    if quick:
        return {"n_sites": 3, "db_bytes": 16_000, "n_clients": 8,
                "tx_per_client": 3, "ops_per_tx": 3, "update_tx_ratio": 0.3}
    return {"n_sites": 4, "db_bytes": 24_000, "n_clients": 12,
            "tx_per_client": 4, "ops_per_tx": 4, "update_tx_ratio": 0.3}


def probe_macro(features: dict, params: dict, rounds: int = 3) -> dict:
    system = SystemConfig().with_(
        replication_factor=2,
        replica_read_policy="nearest",
        replica_write_policy="primary",
        **features,
    )
    cfg = ExperimentConfig(
        n_sites=params["n_sites"],
        db_bytes=params["db_bytes"],
        workload=WorkloadSpec(
            n_clients=params["n_clients"],
            tx_per_client=params["tx_per_client"],
            ops_per_tx=params["ops_per_tx"],
            update_tx_ratio=params["update_tx_ratio"],
        ),
        system=system,
        label="trajectory/macro",
    )
    seconds, result = _best_of(lambda: run_experiment(cfg), rounds)
    return {
        "wall_seconds": seconds,
        "wall_tx_per_s": len(result.committed) / max(seconds, 1e-9),
        "committed": len(result.committed),
        "aborted": len(result.aborted),
        "mean_response_ms": result.mean_response_ms(),
        "messages": result.network_messages,
    }


# ----------------------------------------------------------------------
# contended-writer probe (what targeted wake-ups attack)
# ----------------------------------------------------------------------

def _build_contended(features: dict, groups: int, clients_per_group: int,
                     tx_per_client: int, ops_per_tx: int) -> DTXCluster:
    cfg = SystemConfig().with_(client_think_ms=0.0, **features)
    cluster = DTXCluster(protocol="xdgl", config=cfg)
    hot = doc("hot", E("hot", *[E(f"v{i}", text="0") for i in range(groups)]))
    cluster.add_site("s1", [hot])
    cluster.add_site("s2", [hot])
    cluster.add_site("s3", [])  # pure coordinator site: every wake is a notice
    n = 0
    for g in range(groups):
        for c in range(clients_per_group):
            txs = [
                Transaction(
                    [
                        Operation.update("hot", ChangeOp(f"/hot/v{g}", "x"))
                        for _ in range(ops_per_tx)
                    ],
                    label=f"g{g}c{c}t{t}",
                )
                for t in range(tx_per_client)
            ]
            cluster.add_client(f"c{n}", "s3", txs)
            n += 1
    return cluster


def probe_contended(features: dict, quick: bool = False) -> dict:
    """Disjoint writer groups on one document, all coordinators remote.

    Writers within a group conflict (same X target); groups are mutually
    compatible, so a broadcast wake on any commit is pure waste for every
    other group. The ChangeOp payload is a constant, making the final
    state independent of commit order — the digest must match across wake
    policies for the same seed.
    """
    if quick:
        shape = dict(groups=8, clients_per_group=4, tx_per_client=2, ops_per_tx=6)
    else:
        shape = dict(groups=16, clients_per_group=8, tx_per_client=2, ops_per_tx=8)
    t0 = time.perf_counter()
    cluster = _build_contended(features, **shape)
    result = cluster.run()
    seconds = time.perf_counter() - t0
    wake_notices = sum(s.wake_notices_sent for s in result.site_stats.values())
    lock_ops = sum(site.lock_manager.table.lock_ops for site in cluster.sites.values())
    spec_hits = sum(s.spec_cache_hits for s in result.site_stats.values())
    committed = max(1, len(result.committed))
    digest = hashlib.sha256()
    for sid in ("s1", "s2"):
        digest.update(serialize_document(cluster.document_at(sid, "hot")).encode())
    return {
        "wall_seconds": seconds,
        "committed": len(result.committed),
        "aborted": len(result.aborted),
        "wake_notices": wake_notices,
        "lock_ops": lock_ops,
        "wake_plus_lock_ops_per_commit": (wake_notices + lock_ops) / committed,
        "spec_cache_hits": spec_hits,
        "state_digest": digest.hexdigest(),
    }


# ----------------------------------------------------------------------
# latency decomposition (repro.obs critical-path analyzer)
# ----------------------------------------------------------------------

def probe_latency_decomposition(features: dict) -> dict:
    """Trace a small contended run and decompose committed latency.

    Purely simulated-time output (phase shares of the critical path), so
    the section is bit-deterministic per feature set like the other sim
    metrics — it answers "where does a committed transaction's response
    time go under this feature set", not "how fast is this machine".
    """
    from ..obs import critical_path_report

    cluster = _build_contended(
        dict(features, tracing=True),
        groups=8, clients_per_group=4, tx_per_client=2, ops_per_tx=6,
    )
    result = cluster.run()
    report = critical_path_report(result.spans, per_tx_limit=0)
    return {
        "transactions": report["transactions"],
        "committed": report["committed"],
        "mean_ms": report["mean_ms"],
        "p50_ms": report["p50_ms"],
        "p95_ms": report["p95_ms"],
        "phase_share": report["phase_share"],
        "p95_phase_share": report["p95_phase_share"],
    }


# ----------------------------------------------------------------------
# high-write-load probe (what group commit attacks)
# ----------------------------------------------------------------------

def probe_high_write(features: dict, quick: bool = False) -> dict:
    """Non-conflicting writers on one replicated document.

    Each client inserts into its own container, so commits overlap and the
    group-commit window can coalesce their sync rounds. The per-container
    insert streams are single-writer, so the final replica state is
    independent of cross-client interleaving — the digest must match with
    the window on or off for the same seed.
    """
    clients, tx_per_client = (8, 4) if quick else (16, 6)
    cfg = SystemConfig().with_(
        client_think_ms=0.0,
        replica_write_policy="primary",
        replica_read_policy="nearest",
        **features,
    )
    cluster = DTXCluster(protocol="xdgl", config=cfg)
    hot = doc("hot", E("hot", *[E(f"c{i}") for i in range(clients)]))
    sites = ["s1", "s2", "s3"]
    for sid in sites:
        cluster.add_site(sid)
    cluster.replicate_document(hot, sites)
    for i in range(clients):
        txs = [
            Transaction(
                [Operation.update("hot", InsertOp(f"<e><t>{t}</t></e>", f"/hot/c{i}"))],
                label=f"c{i}t{t}",
            )
            for t in range(tx_per_client)
        ]
        cluster.add_client(f"cl{i}", "s1", txs)
    t0 = time.perf_counter()
    result = cluster.run()
    seconds = time.perf_counter() - t0
    kinds = cluster.network.stats.by_kind
    sync_messages = kinds.get("ReplicaSyncRequest", 0) + kinds.get("ReplicaSyncBatch", 0)
    committed = max(1, len(result.committed))
    digest = hashlib.sha256()
    for sid in sites:
        digest.update(serialize_document(cluster.document_at(sid, "hot")).encode())
    return {
        "wall_seconds": seconds,
        "committed": len(result.committed),
        "aborted": len(result.aborted),
        "failed": len(result.failed),
        "sync_messages": sync_messages,
        "sync_messages_per_commit": sync_messages / committed,
        "group_batches": sum(s.group_batches_sent for s in result.site_stats.values()),
        "mean_response_ms": result.mean_response_ms(),
        "state_digest": digest.hexdigest(),
    }


# ----------------------------------------------------------------------
# quorum probe (versioned quorum reads/writes + read repair)
# ----------------------------------------------------------------------

def probe_quorum(features: dict, quick: bool = False) -> dict:
    """Quorum regime probe: ack discipline on writes, repair on reads.

    One document replicated at three sites under ``R=3, W=2``. Phase 1 is
    a write burst with one secondary refusing its syncs — every commit
    settles at W=2 durable copies (primary + one ack) and the refusing
    replica falls behind. Phase 2 reads through the version-probe path:
    R=3 reports reveal the straggler, read repair nudges it, and by the
    drain every replica is byte-identical again. Deterministic per seed:
    ``sync_acks_per_commit`` (how many remote acks a quorum commit
    actually waited for) and ``read_repair_rate`` (repairs per quorum
    read) are the trajectory's quorum fingerprint, and the digest proves
    convergence.
    """
    writers, writes_each, reads = (4, 2, 6) if quick else (8, 3, 12)
    cfg = SystemConfig().with_(
        client_think_ms=0.0,
        replication_factor=3,
        replica_read_policy="quorum",
        replica_write_policy="quorum",
        read_quorum_r=3,
        write_quorum_w=2,
        **features,
    )
    cluster = DTXCluster(protocol="xdgl", config=cfg)
    hot = doc("hot", E("hot", *[E(f"c{i}") for i in range(writers)]))
    sites = ["s1", "s2", "s3"]
    for sid in sites:
        cluster.add_site(sid)
    cluster.replicate_document(hot, sites)
    cluster.start()
    t0 = time.perf_counter()
    write_outcomes: list = []
    read_outcomes: list = []
    cluster.sites["s3"].refuse_sync.add("*")
    for i in range(writers):
        for t in range(writes_each):
            tx = Transaction(
                [Operation.update("hot", InsertOp(f"<e><t>{t}</t></e>", f"/hot/c{i}"))],
                label=f"w{i}.{t}",
            )
            cluster.sites["s1"].submit(tx, write_outcomes.append)
    cluster.env.run(until=cluster.env.now + 30.0)
    cluster.sites["s3"].refuse_sync.discard("*")
    for r in range(reads):
        tx = Transaction(
            [Operation.query("hot", f"/hot/c{r % writers}")], label=f"r{r}"
        )
        cluster.sites["s2"].submit(tx, read_outcomes.append)
    cluster.env.run(until=cluster.env.now + 60.0)
    seconds = time.perf_counter() - t0
    committed_writes = sum(1 for o in write_outcomes if o.committed)
    committed = committed_writes + sum(1 for o in read_outcomes if o.committed)
    stats = [site.stats for site in cluster.sites.values()]
    sync_acks = sum(s.sync_acks_awaited for s in stats)
    quorum_reads = sum(s.quorum_reads for s in stats)
    repairs = sum(s.read_repairs_sent for s in stats)
    texts = [serialize_document(cluster.document_at(sid, "hot")) for sid in sites]
    digest = hashlib.sha256()
    for text in texts:
        digest.update(text.encode())
    return {
        "wall_seconds": seconds,
        "committed": committed,
        "wall_tx_per_s": committed / max(seconds, 1e-9),
        "sync_acks_awaited": sync_acks,
        "sync_acks_per_commit": sync_acks / max(1, committed_writes),
        "version_probes": sum(s.version_probes_sent for s in stats),
        "quorum_reads": quorum_reads,
        "read_repairs": repairs,
        "read_repair_rate": repairs / max(1, quorum_reads),
        # Read repair + anti-entropy must have reconciled the refused-sync
        # straggler by the drain: anything nonzero here is a regression.
        "divergent_replicas": sum(1 for text in texts if text != texts[0]),
        "state_digest": digest.hexdigest(),
    }


# ----------------------------------------------------------------------
# materialized-view probe (lock-free reads off asynchronously-fed shadows)
# ----------------------------------------------------------------------

def probe_views(features: dict, quick: bool = False) -> dict:
    """Materialized-view regime probe: write burst, then view-served reads.

    One document replicated at two sites, a ``/hot/*`` view hosted at a
    third. Phase 1 is a write burst off the primary (the shadow is fed by
    ``ViewDeltaBatch`` pushes); phase 2, after a settle window, submits
    read-only transactions at a fourth site that are answered entirely by
    the view host — zero lock-table operations and zero CommitRequests for
    the whole phase, asserted in the returned dict as deltas. The state
    digest covers both replicas *and* the view shadow, proving the
    asynchronous maintenance converged to the primary's bytes.
    """
    writers, writes_each, reads = (4, 2, 8) if quick else (8, 3, 16)
    cfg = SystemConfig().with_(
        client_think_ms=0.0,
        replication_factor=2,
        replica_read_policy="primary",
        replica_write_policy="primary",
        view_staleness_ms=30.0,
        view_refresh_ms=2.0,
        **features,
    )
    cluster = DTXCluster(protocol="xdgl", config=cfg)
    hot = doc("hot", E("hot", *[E(f"c{i}") for i in range(writers)]))
    for sid in ("s1", "s2", "s3", "s4"):
        cluster.add_site(sid)
    cluster.replicate_document(hot, ["s1", "s2"])
    cluster.register_view("hot-view", "/hot/*", ["hot"], host="s3")
    cluster.start()
    t0 = time.perf_counter()
    write_outcomes: list = []
    read_outcomes: list = []
    for i in range(writers):
        for t in range(writes_each):
            tx = Transaction(
                [Operation.update("hot", InsertOp(f"<e><t>{t}</t></e>", f"/hot/c{i}"))],
                label=f"w{i}.{t}",
            )
            cluster.sites["s1"].submit(tx, write_outcomes.append)
    cluster.env.run(until=cluster.env.now + 40.0)  # writes + shadow catch-up
    lock_ops_before = sum(
        site.lock_manager.table.lock_ops for site in cluster.sites.values()
    )
    commits_before = cluster.network.stats.by_kind.get("CommitRequest", 0)
    read_t0 = time.perf_counter()
    sim_t0 = cluster.env.now
    for r in range(reads):
        tx = Transaction(
            [Operation.query("hot", f"/hot/c{r % writers}")], label=f"r{r}"
        )
        cluster.sites["s4"].submit(tx, read_outcomes.append)
    cluster.env.run(until=cluster.env.now + 60.0)
    read_seconds = time.perf_counter() - read_t0
    seconds = time.perf_counter() - t0
    committed_reads = sum(1 for o in read_outcomes if o.committed)
    stats = [site.stats for site in cluster.sites.values()]
    served = sum(s.view_reads_served for s in stats)
    routed = sum(s.view_reads_routed for s in stats)
    fallbacks = sum(s.view_read_fallbacks for s in stats)
    batches = sum(s.view_delta_batches for s in stats)
    coalesced = sum(s.view_deltas_coalesced for s in stats)
    texts = [serialize_document(cluster.document_at(sid, "hot")) for sid in ("s1", "s2")]
    shadow = cluster.sites["s3"].views.states["hot"].doc
    texts.append(serialize_document(shadow) if shadow is not None else "")
    digest = hashlib.sha256()
    for text in texts:
        digest.update(text.encode())
    return {
        "wall_seconds": seconds,
        "wall_read_tx_per_s": committed_reads / max(read_seconds, 1e-9),
        "committed_writes": sum(1 for o in write_outcomes if o.committed),
        "committed_reads": committed_reads,
        "view_reads_served": served,
        "view_hit_rate": routed / max(1, routed + fallbacks),
        "deltas_coalesced_per_batch": coalesced / max(1, batches),
        "mean_staleness_at_serve_ms": (
            sum(s.view_staleness_sum_ms for s in stats) / served if served else 0.0
        ),
        "read_phase_sim_ms": cluster.env.now - sim_t0,
        # The regime's receipt: the read phase must be entirely lock-free
        # and 2PC-free. Anything nonzero here is a regression.
        "read_phase_lock_ops": (
            sum(site.lock_manager.table.lock_ops for site in cluster.sites.values())
            - lock_ops_before
        ),
        "read_phase_commit_requests": (
            cluster.network.stats.by_kind.get("CommitRequest", 0) - commits_before
        ),
        "shadow_matches_primary": texts[2] == texts[0],
        "state_digest": digest.hexdigest(),
    }


# ----------------------------------------------------------------------
# trajectory assembly and canonical files
# ----------------------------------------------------------------------

def run_trajectory(features_name: str = "optimized", quick: bool = False) -> dict:
    """Run every probe under one feature set; return the canonical dict."""
    features = dict(FEATURE_SETS[features_name])
    rounds = bench_rounds()
    params = macro_params(quick)
    macro = probe_macro(features, params, rounds=rounds)
    contended = probe_contended(features, quick=quick)
    high_write = probe_high_write(features, quick=quick)
    quorum = probe_quorum(features, quick=quick)
    views = probe_views(features, quick=quick)
    latency = probe_latency_decomposition(features)
    return {
        "schema": SCHEMA,
        "features": {"name": features_name, **features},
        "quick": quick,
        "rounds": rounds,
        "machine": machine_info(),
        "macro_params": params,
        "wall": {
            "lock_table_ops_per_s": probe_lock_table(rounds=rounds),
            "sim_events_per_s": probe_sim_kernel(rounds=rounds),
            **{f"kernel_{k}": v for k, v in probe_kernel(rounds=rounds).items()},
            "macro_seconds": macro["wall_seconds"],
            "macro_tx_per_s": macro["wall_tx_per_s"],
            "contended_seconds": contended["wall_seconds"],
            "high_write_seconds": high_write["wall_seconds"],
            "quorum_seconds": quorum["wall_seconds"],
            "quorum_tx_per_s": quorum["wall_tx_per_s"],
            "views_seconds": views["wall_seconds"],
            "views_read_tx_per_s": views["wall_read_tx_per_s"],
        },
        "sim": {
            "macro": {k: v for k, v in macro.items() if not k.startswith("wall_")},
            "contended": {k: v for k, v in contended.items() if k != "wall_seconds"},
            "high_write": {k: v for k, v in high_write.items() if k != "wall_seconds"},
            "quorum": {
                k: v
                for k, v in quorum.items()
                if k not in ("wall_seconds", "wall_tx_per_s")
            },
            "views": {
                k: v
                for k, v in views.items()
                if k not in ("wall_seconds", "wall_read_tx_per_s")
            },
            "latency_decomposition": latency,
        },
    }


_BENCH_RE = re.compile(r"BENCH_(\d+)\.json$")


def bench_files(directory: str = ".") -> list[tuple[int, str]]:
    """(n, path) for every canonical BENCH_<n>.json, ascending by n."""
    out = []
    for path in glob.glob(os.path.join(directory, "BENCH_*.json")):
        m = _BENCH_RE.search(os.path.basename(path))
        if m:
            out.append((int(m.group(1)), path))
    return sorted(out)


def next_bench_path(directory: str = ".") -> str:
    existing = bench_files(directory)
    n = existing[-1][0] + 1 if existing else 0
    return os.path.join(directory, f"BENCH_{n}.json")


def latest_bench(directory: str = ".") -> dict | None:
    existing = bench_files(directory)
    if not existing:
        return None
    with open(existing[-1][1]) as fh:
        data = json.load(fh)
    data["_path"] = existing[-1][1]
    return data


def write_bench(data: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def regression_threshold_pct() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_REGRESSION_PCT", "20"))
    except ValueError:
        return 20.0


def check_regression(baseline: dict, out=sys.stdout) -> int:
    """Re-run the wall probes against a committed baseline file.

    Re-uses the baseline's feature set and macro parameters so the
    comparison is apples-to-apples; fails (returns 1) when any wall
    throughput metric regressed by more than the threshold.
    """
    pct = regression_threshold_pct()
    # Cross-machine comparisons only warn: wall numbers are meaningless
    # across hardware, and the gate should say so rather than cry wolf.
    base_machine = baseline.get("machine")
    if isinstance(base_machine, dict):
        here = machine_info()
        drift = [
            f"{key} {base_machine.get(key)!r} -> {here.get(key)!r}"
            for key in sorted(here)
            if base_machine.get(key) != here.get(key)
        ]
        if drift:
            print(
                "  warning: baseline recorded on different machine "
                f"({', '.join(drift)}) — wall comparisons may be noise",
                file=out,
            )
    else:
        print(
            "  note: baseline has no machine metadata (older schema); "
            "cannot tell whether this is the same hardware",
            file=out,
        )
    baseline_wall = baseline.get("wall")
    if not isinstance(baseline_wall, dict):
        print(
            f"bench check failed: {baseline.get('_path', 'baseline')} has no "
            f"'wall' section — not a trajectory file (re-record with "
            f"`python -m repro bench`)",
            file=out,
        )
        return 1
    features = {
        k: v for k, v in baseline.get("features", {}).items() if k != "name"
    } or FEATURE_SETS["optimized"]
    rounds = bench_rounds()
    params = baseline.get("macro_params", macro_params())
    current = {
        "lock_table_ops_per_s": probe_lock_table(rounds=rounds),
        "sim_events_per_s": probe_sim_kernel(rounds=rounds),
        # Kernel micro metrics gate from the first baseline that records
        # them (BENCH_3 on); older baselines without a metric get an
        # explicit "skipped" line below rather than a silent pass.
        **{f"kernel_{k}": v for k, v in probe_kernel(rounds=rounds).items()},
        "macro_tx_per_s": probe_macro(features, params, rounds=rounds)["wall_tx_per_s"],
        # Quorum wall throughput joins the gate from BENCH_2 on, the view
        # read throughput from BENCH_4 on. Each probe re-runs at the
        # baseline's own density so the comparison stays apples-to-apples,
        # like the macro params above.
        "quorum_tx_per_s": probe_quorum(
            features, quick=baseline.get("quick", False)
        )["wall_tx_per_s"],
        "views_read_tx_per_s": probe_views(
            features, quick=baseline.get("quick", False)
        )["wall_read_tx_per_s"],
    }
    failures = []
    for metric, now in current.items():
        base = baseline_wall.get(metric)
        if base is None or base <= 0:
            print(
                f"  {metric}: skipped — not recorded in "
                f"{baseline.get('_path', 'baseline')} (older schema)",
                file=out,
            )
            continue
        change = 100.0 * (now - base) / base
        verdict = "ok"
        if now < base * (1.0 - pct / 100.0):
            verdict = "REGRESSED"
            failures.append(metric)
        print(
            f"  {metric}: baseline {base:,.0f} -> current {now:,.0f} "
            f"({change:+.1f}%) [{verdict}]",
            file=out,
        )
    if failures:
        print(
            f"bench regression: {', '.join(failures)} dropped more than "
            f"{pct:.0f}% below {baseline.get('_path', 'baseline')}",
            file=out,
        )
        return 1
    print(f"bench check passed (threshold {pct:.0f}%)", file=out)
    return 0


def render(data: dict, out=sys.stdout) -> None:
    wall, sim = data["wall"], data["sim"]
    print(f"trajectory [{data['features']['name']}] "
          f"(quick={data['quick']}, rounds={data['rounds']})", file=out)
    print(f"  wall: lock table {wall['lock_table_ops_per_s']:,.0f} ops/s, "
          f"kernel {wall['sim_events_per_s']:,.0f} events/s, "
          f"macro {wall['macro_tx_per_s']:,.1f} tx/s "
          f"({wall['macro_seconds']:.3f}s)", file=out)
    if "kernel_event_dispatch_per_s" in wall:
        print(f"  kernel micro: dispatch {wall['kernel_event_dispatch_per_s']:,.0f} ev/s, "
              f"queue churn {wall['kernel_queue_churn_ops_per_s']:,.0f} ops/s, "
              f"msg alloc {wall['kernel_msg_alloc_per_s']:,.0f}/s "
              f"(pooled {wall['kernel_msg_pool_per_s']:,.0f}/s)", file=out)
    c = sim["contended"]
    print(f"  contended: {c['committed']} committed, "
          f"{c['wake_plus_lock_ops_per_commit']:.1f} wake notices + lock ops "
          f"per commit ({c['wake_notices']} notices, {c['lock_ops']} lock ops, "
          f"{c['spec_cache_hits']} spec-cache hits)", file=out)
    h = sim["high_write"]
    print(f"  high-write: {h['committed']} committed, "
          f"{h['sync_messages_per_commit']:.2f} sync messages per commit "
          f"({h['sync_messages']} messages, {h['group_batches']} batches), "
          f"commit latency {h['mean_response_ms']:.2f} ms", file=out)
    q = sim.get("quorum")
    if q:
        print(f"  quorum: {q['committed']} committed, "
              f"{q['sync_acks_per_commit']:.2f} sync acks awaited per commit, "
              f"{q['quorum_reads']} quorum reads "
              f"({q['read_repair_rate']:.2f} read-repair rate, "
              f"{q['read_repairs']} repairs)", file=out)
    lat = sim.get("latency_decomposition")
    if lat:
        shares = sorted(lat["phase_share"].items(), key=lambda kv: -kv[1])
        parts = "  ".join(
            f"{p} {s * 100.0:.1f}%" for p, s in shares if s >= 0.0005
        )
        print(f"  latency decomposition (contended, committed): "
              f"p95 {lat['p95_ms']:.2f} ms; {parts}", file=out)
    v = sim.get("views")
    if v:
        print(f"  views: {v['committed_reads']} reads committed "
              f"(hit rate {v['view_hit_rate']:.2f}, "
              f"{v['deltas_coalesced_per_batch']:.2f} deltas/batch, "
              f"staleness at serve {v['mean_staleness_at_serve_ms']:.2f} ms), "
              f"read phase: {v['read_phase_lock_ops']} lock ops, "
              f"{v['read_phase_commit_requests']} 2PC rounds", file=out)


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the benchmark trajectory harness (BENCH_<n>.json).",
    )
    parser.add_argument(
        "--features", choices=sorted(FEATURE_SETS), default="optimized",
        help="hot-path feature set to measure (default: optimized)",
    )
    parser.add_argument("--quick", action="store_true", help="smaller probes")
    parser.add_argument(
        "--dir", default=".", help="directory holding BENCH_<n>.json files"
    )
    parser.add_argument("--out", default=None, help="explicit output path")
    parser.add_argument(
        "--no-write", action="store_true", help="run and print, write nothing"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="regression mode: compare wall throughput against the latest "
        "BENCH_<n>.json (skipped when none exists); writes nothing",
    )
    args = parser.parse_args(argv)

    if args.check:
        baseline = latest_bench(args.dir)
        if baseline is None:
            print("bench check skipped: no BENCH_*.json baseline found", file=out)
            return 0
        print(f"bench check against {baseline['_path']}", file=out)
        return check_regression(baseline, out=out)

    data = run_trajectory(args.features, quick=args.quick)
    render(data, out=out)
    if not args.no_write:
        path = args.out or next_bench_path(args.dir)
        write_bench(data, path)
        print(f"wrote {path}", file=out)
    return 0
