"""Availability sweep: eager vs lazy replication under injected crashes.

Not a figure of the paper — this is the experiment its synchronous regime
cannot run at all: sites crash and recover *during* the workload. Under
eager primary-copy ROWA every commit waits for all live secondaries, so a
crash costs commit latency but never freshness; under lazy propagation the
primary commits immediately and ships updates within the staleness bound,
so throughput holds up but a crashed primary can take the committed-but-
unpropagated tail of its log down with it.

The sweep runs an (write regime × crash count) grid over one replicated
workload. Each crash takes down the site leading the most documents (the
worst case for the workload) and recovers it after a fixed outage; the
failure monitor promotes the most-caught-up live secondary, coordinators
re-route, and the recovered site catches up from the primaries' update
logs. Reported per cell: committed throughput, abort/failure counts,
promotions, catch-up activity, and how many replica pairs diverged at the
end of the run (eager: must be zero once the cluster quiesced).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..config import SystemConfig
from ..core.site import aggregate_site_stats
from ..workload.generator import WorkloadSpec
from ..xml.serializer import serialize_document
from .runner import ExperimentConfig, build_cluster

MODES = ("eager", "lazy")
_MODE_TO_POLICY = {"eager": "primary", "lazy": "lazy"}


@dataclass(frozen=True)
class AvailabilitySweepParams:
    modes: tuple = MODES
    crash_counts: tuple = (0, 1, 2)
    n_sites: int = 4
    replication_factor: int = 3
    n_clients: int = 9
    tx_per_client: int = 5
    ops_per_tx: int = 3
    update_ratio: float = 0.4
    protocol: str = "xdgl"
    read_policy: str = "nearest"
    db_bytes: int = 18_000
    first_crash_ms: float = 6.0  # when the first crash fires
    crash_spacing_ms: float = 8.0  # gap between consecutive crashes
    outage_ms: float = 12.0  # how long each crashed site stays down
    lazy_staleness_ms: float = 5.0
    drain_ms: float = 80.0  # post-workload settle time (catch-up, lazy tail)
    seed: int | None = None  # None = the SystemConfig default

    @classmethod
    def dense(cls) -> "AvailabilitySweepParams":
        return cls(
            crash_counts=(0, 1, 2, 3),
            n_clients=15,
            tx_per_client=8,
            ops_per_tx=4,
        )

    @classmethod
    def from_env(cls) -> "AvailabilitySweepParams":
        """``REPRO_FULL=1`` selects the denser sweep."""
        return cls.dense() if os.environ.get("REPRO_FULL") == "1" else cls()


@dataclass
class AvailabilitySweepResult:
    params: AvailabilitySweepParams = field(default_factory=AvailabilitySweepParams)
    # (mode, crash_count) -> dict of metrics
    cells: dict = field(default_factory=dict)

    def metric(self, mode: str, crashes: int, name: str):
        return self.cells[(mode, crashes)][name]

    def render(self, metric: str = "tx_per_s", fmt: str = "{:9.2f}") -> str:
        header = f"availability sweep — {metric} (crashes target the busiest primary)"
        lines = [header, "mode \\ crashes  " + "  ".join(
            f"{c:>9d}" for c in self.params.crash_counts
        )]
        for mode in self.params.modes:
            row = [f"{mode:>6s}        "]
            for c in self.params.crash_counts:
                row.append(fmt.format(self.cells[(mode, c)][metric]))
            lines.append("  ".join(row))
        return "\n".join(lines)


def _crash_targets(cluster, count: int) -> list:
    """The sites to crash, busiest primary first, round-robin thereafter.

    Deterministic: sites are ranked by how many documents they lead (ties
    broken by site id), and crash k hits rank k modulo the ranking.
    """
    catalog = cluster.catalog
    primaries: dict = {}
    for doc_name in catalog.all_documents():
        rset = catalog.replica_set(doc_name)
        if rset.is_replicated:
            primaries[rset.primary] = primaries.get(rset.primary, 0) + 1
    ranked = sorted(primaries, key=lambda s: (-primaries[s], str(s)))
    if not ranked:
        ranked = sorted(cluster.sites, key=str)
    return [ranked[k % len(ranked)] for k in range(count)]


def _divergent_pairs(cluster) -> int:
    """Replica pairs whose serialized document states differ at run end."""
    divergent = 0
    for doc_name in cluster.catalog.all_documents():
        rset = cluster.catalog.replica_set(doc_name)
        if not rset.is_replicated:
            continue
        texts = {
            site: serialize_document(cluster.document_at(site, doc_name))
            for site in rset.all_sites
        }
        reference = texts[rset.primary]
        divergent += sum(1 for site, text in texts.items() if text != reference)
    return divergent


def availability_sweep(
    params: AvailabilitySweepParams | None = None,
) -> AvailabilitySweepResult:
    """Run the (mode x crash count) grid; one cell per configuration."""
    params = params or AvailabilitySweepParams.from_env()
    out = AvailabilitySweepResult(params=params)
    for mode in params.modes:
        system = SystemConfig().with_(
            client_think_ms=1.0,
            replication_factor=params.replication_factor,
            replica_read_policy=params.read_policy,
            replica_write_policy=_MODE_TO_POLICY[mode],
            lazy_staleness_ms=params.lazy_staleness_ms,
            # Safety valve: a transaction stuck behind a crash-orphaned
            # lock times out and retries instead of wedging the run.
            lock_wait_timeout_ms=200.0,
            max_restarts=2,
            **({"seed": params.seed} if params.seed is not None else {}),
        )
        for crashes in params.crash_counts:
            cfg = ExperimentConfig(
                protocol=params.protocol,
                n_sites=params.n_sites,
                replication="partial",
                db_bytes=params.db_bytes,
                workload=WorkloadSpec(
                    n_clients=params.n_clients,
                    tx_per_client=params.tx_per_client,
                    ops_per_tx=params.ops_per_tx,
                    update_tx_ratio=params.update_ratio,
                ),
                system=system,
                label=f"availability/{mode}/c{crashes}",
            )
            cluster, _ = build_cluster(cfg)
            next_free: dict = {}
            for k, site_id in enumerate(_crash_targets(cluster, crashes)):
                at = params.first_crash_ms + k * params.crash_spacing_ms
                # A repeated target (few distinct primaries) must not be
                # scheduled to crash while still down from its previous
                # outage — that crash would no-op and skew the counters.
                at = max(at, next_free.get(site_id, 0.0))
                cluster.schedule_crash(site_id, at, at + params.outage_ms)
                next_free[site_id] = at + params.outage_ms + 1.0
            result = cluster.run(label=cfg.label, drain_ms=params.drain_ms)
            duration_s = max(result.duration_ms, 1e-9) / 1000.0
            # Field-introspected totals (aggregate_site_stats): the named
            # keys below are views into this dict, so new SiteStats
            # counters flow into cells without touching this file.
            totals = aggregate_site_stats(result.site_stats.values())
            out.cells[(mode, crashes)] = {
                "committed": len(result.committed),
                "aborted": len(result.aborted),
                "failed": len(result.failed),
                "tx_per_s": len(result.committed) / duration_s,
                "response_ms": result.mean_response_ms(),
                "messages": result.network_messages,
                "promotions": result.promotions,
                "crashes": result.site_crashes,
                "recoveries": result.site_recoveries,
                "catchups": totals["catchups"],
                "catchup_entries": totals["catchup_entries_replayed"],
                "divergent_replicas": _divergent_pairs(cluster),
                "site_totals": totals,
            }
    return out


def check_availability_sweep(result: AvailabilitySweepResult) -> list[str]:
    """Shape checks: faults fired, failover worked, eager stayed consistent."""
    notes: list[str] = []
    params = result.params
    for (mode, crashes), cell in result.cells.items():
        expected = params.n_clients * params.tx_per_client
        assert cell["committed"] + cell["aborted"] + cell["failed"] <= expected
        assert cell["crashes"] == crashes, (
            f"{mode}/c{crashes}: scheduled {crashes} crashes, saw {cell['crashes']}"
        )
        assert cell["recoveries"] == crashes
        if crashes:
            assert cell["promotions"] >= 1, (
                f"{mode}/c{crashes}: primary crashed but nothing was promoted"
            )
        if mode == "eager":
            assert cell["divergent_replicas"] == 0, (
                f"eager/c{crashes}: {cell['divergent_replicas']} replicas "
                f"diverged after quiesce"
            )
    if "eager" in params.modes and "lazy" in params.modes:
        for crashes in params.crash_counts:
            eager = result.metric("eager", crashes, "committed")
            lazy = result.metric("lazy", crashes, "committed")
            notes.append(
                f"crashes={crashes}: committed eager={eager} lazy={lazy}; "
                f"divergent replicas eager="
                f"{result.metric('eager', crashes, 'divergent_replicas')} "
                f"lazy={result.metric('lazy', crashes, 'divergent_replicas')}"
            )
    notes.append(f"{len(result.cells)} cells, transaction accounting consistent")
    return notes
