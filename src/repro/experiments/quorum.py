"""Quorum sweep: (R, W) cells against eager and lazy baselines under faults.

The experiment behind README § Quorum replication: one replicated workload
runs under every write regime — eager primary-copy (commit waits for *all*
live secondaries), lazy (commit immediately, propagate within the
staleness bound) and quorum cells across an (R, W) grid — while a fault
schedule disturbs the cluster:

* ``partition`` — a minority cut isolates the site that leads the fewest
  documents. Most primaries keep a write quorum reachable, so quorum
  commits keep flowing at normal latency, while the eager regime waits a
  full protocol-round timeout for the unreachable secondary's ack on
  every single commit — the "commit latency tracks the slowest replica"
  failure mode this regime exists to remove. The cut primary's documents
  are re-elected on the majority side either way (lease detector).
* ``crash`` — the busiest primary fail-stops mid-workload and recovers
  after a fixed outage (the availability sweep's schedule).
* ``none`` — undisturbed baseline.

Reported per cell: commit/abort/fail counts, mean response, the same
restricted to transactions finishing inside the fault window, quorum
telemetry (sync acks awaited per commit, version probes, read-repair
activity) and the divergent-replica count after heal + drain — which must
be zero for the eager *and* quorum cells (quorum stragglers converge
through catch-up, heartbeat-watermark anti-entropy and read repair).

Runs under ``failure_detector="lease"`` throughout: partitions without a
message-based detector stall the perfect-mode oracle's rounds forever,
and the lease machinery (elections, bounded rounds, anti-entropy) is the
substrate the quorum regime is built on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..config import SystemConfig
from ..core.site import aggregate_site_stats
from ..workload.generator import WorkloadSpec
from ..xml.serializer import serialize_document
from .runner import ExperimentConfig, build_cluster

FAULTS = ("none", "partition", "crash")


@dataclass(frozen=True)
class QuorumSweepParams:
    rw_grid: tuple = ((1, 3), (2, 2), (3, 2))  # (R, W) cells, N = factor
    baselines: tuple = ("eager", "lazy")
    faults: tuple = ("partition", "crash")
    n_sites: int = 4
    replication_factor: int = 3
    n_clients: int = 9
    tx_per_client: int = 5
    ops_per_tx: int = 3
    update_ratio: float = 0.4
    # Update transactions are write-pure here: the sweep's headline metric
    # is commit latency, and with the generator's default 0.2 a "write"
    # transaction is still 80% reads — drowning the ack-discipline
    # difference under the read-routing cost.
    update_op_ratio: float = 1.0
    protocol: str = "xdgl"
    # Baselines read at the primary: that is the *strongly consistent*
    # read the quorum regime competes with (serializable reads, one RTT
    # for remote coordinators — same consistency class as a quorum read's
    # probe round + freshest-responder execution). "nearest" reads are
    # the weak-read comparison and live in the replication sweep.
    read_policy: str = "primary"
    db_bytes: int = 18_000
    fault_at_ms: float = 6.0  # when the partition / crash fires
    fault_ms: float = 30.0  # cut length / crash outage
    # Deliberately conservative (slow) suspicion: the window between the
    # cut and the lease expiry is where the regimes differ — the eager
    # commit waits a full protocol round for the unreachable (but not yet
    # suspected) secondary's ack, a sub-N write quorum never does. A
    # hair-trigger lease would hide the difference by suspecting the cut
    # site almost immediately (and pay for it in false suspicions under
    # jitter — the partitions sweep measures that trade-off).
    lease_timeout_ms: float = 12.0
    heartbeat_interval_ms: float = 1.0
    election_timeout_ms: float = 4.0
    lazy_staleness_ms: float = 5.0
    drain_ms: float = 200.0  # post-workload settle (elections, anti-entropy)
    seed: int | None = None  # None = the SystemConfig default

    @classmethod
    def dense(cls) -> "QuorumSweepParams":
        return cls(
            rw_grid=((1, 3), (2, 2), (3, 2), (2, 3)),
            faults=("none", "partition", "crash"),
            n_clients=15,
            tx_per_client=8,
            ops_per_tx=4,
        )

    @classmethod
    def from_env(cls) -> "QuorumSweepParams":
        """``REPRO_FULL=1`` selects the denser sweep."""
        return cls.dense() if os.environ.get("REPRO_FULL") == "1" else cls()

    def regimes(self) -> list[str]:
        """Cell labels, baselines first: eager | lazy | quorum-rR.wW."""
        out = list(self.baselines)
        out.extend(f"quorum-r{r}w{w}" for r, w in self.rw_grid)
        return out


@dataclass
class QuorumSweepResult:
    params: QuorumSweepParams = field(default_factory=QuorumSweepParams)
    cells: dict = field(default_factory=dict)  # (regime, fault) -> metrics

    def metric(self, regime: str, fault: str, name: str):
        return self.cells[(regime, fault)][name]

    def render(self, metric: str = "committed", fmt: str = "{:10.2f}") -> str:
        faults = list(self.params.faults)
        lines = [
            f"quorum sweep — {metric} "
            f"(fault window {self.params.fault_ms} ms at "
            f"t={self.params.fault_at_ms} ms)",
            "regime \\ fault  " + "  ".join(f"{f:>10s}" for f in faults),
        ]
        for regime in self.params.regimes():
            row = [f"{regime:>14s}"]
            for fault in faults:
                row.append(fmt.format(self.cells[(regime, fault)][metric]))
            lines.append("  ".join(row))
        return "\n".join(lines)


def _rank_primaries(cluster) -> list:
    """Sites ordered by how many replicated documents they lead (desc)."""
    catalog = cluster.catalog
    counts: dict = {}
    for doc_name in catalog.all_documents():
        rset = catalog.replica_set(doc_name)
        if rset.is_replicated:
            counts[rset.primary] = counts.get(rset.primary, 0) + 1
    ranked = sorted(counts, key=lambda s: (-counts[s], str(s)))
    return ranked or sorted(cluster.sites, key=str)


def _divergent_pairs(cluster) -> int:
    """Replica pairs whose serialized document states differ at run end."""
    divergent = 0
    for doc_name in cluster.catalog.all_documents():
        rset = cluster.catalog.replica_set(doc_name)
        if not rset.is_replicated:
            continue
        texts = {
            site: serialize_document(cluster.document_at(site, doc_name))
            for site in rset.all_sites
        }
        reference = texts[rset.primary]
        divergent += sum(1 for text in texts.values() if text != reference)
    return divergent


def _system_for(params: QuorumSweepParams, regime: str) -> SystemConfig:
    common = dict(
        client_think_ms=1.0,
        replication_factor=params.replication_factor,
        failure_detector="lease",
        heartbeat_interval_ms=params.heartbeat_interval_ms,
        lease_timeout_ms=params.lease_timeout_ms,
        election_timeout_ms=params.election_timeout_ms,
        lazy_staleness_ms=params.lazy_staleness_ms,
        # Safety valve: work stuck behind the fault times out and retries
        # instead of wedging the run.
        lock_wait_timeout_ms=200.0,
        max_restarts=2,
        **({"seed": params.seed} if params.seed is not None else {}),
    )
    if regime.startswith("quorum-"):
        r, w = regime[len("quorum-r"):].split("w")
        return SystemConfig().with_(
            replica_read_policy="quorum",
            replica_write_policy="quorum",
            read_quorum_r=int(r),
            write_quorum_w=int(w),
            **common,
        )
    return SystemConfig().with_(
        replica_read_policy=params.read_policy,
        replica_write_policy="primary" if regime == "eager" else "lazy",
        **common,
    )


def quorum_sweep(params: QuorumSweepParams | None = None) -> QuorumSweepResult:
    """Run the (regime x fault) grid; one cell per configuration."""
    params = params or QuorumSweepParams.from_env()
    out = QuorumSweepResult(params=params)
    for regime in params.regimes():
        for fault in params.faults:
            cfg = ExperimentConfig(
                protocol=params.protocol,
                n_sites=params.n_sites,
                replication="partial",
                db_bytes=params.db_bytes,
                workload=WorkloadSpec(
                    n_clients=params.n_clients,
                    tx_per_client=params.tx_per_client,
                    ops_per_tx=params.ops_per_tx,
                    update_tx_ratio=params.update_ratio,
                    update_op_ratio=params.update_op_ratio,
                ),
                system=_system_for(params, regime),
                label=f"quorum/{regime}/{fault}",
            )
            cluster, tester = build_cluster(cfg)
            update_labels = {
                tx.label
                for txs in tester.all_transactions().values()
                for tx in txs
                if any(op.is_update for op in tx.operations)
            }
            window = (params.fault_at_ms, params.fault_at_ms + params.fault_ms)
            if fault == "partition":
                # Isolate a *pure secondary*: the least-loaded primary is
                # picked and the few documents it leads are re-pointed to
                # another replica before the run starts. Every document
                # then keeps its primary plus a write quorum on the
                # majority side for the whole cut, so the regimes differ
                # in ack discipline alone — eager commits wait on the
                # unreachable secondary until suspicion unsticks them,
                # quorum commits never notice — with no failover downtime
                # muddying the comparison (the crash schedule measures
                # that).
                isolated = _rank_primaries(cluster)[-1]
                for doc_name in cluster.catalog.documents_at(isolated):
                    rset = cluster.catalog.replica_set(doc_name)
                    if rset.is_replicated and rset.primary == isolated:
                        cluster.catalog.set_primary(doc_name, rset.secondaries[0])
                rest = [s for s in sorted(cluster.sites, key=str) if s != isolated]
                cluster.schedule_partition([[isolated], rest], window[0], window[1])
            elif fault == "crash":
                target = _rank_primaries(cluster)[0]
                cluster.schedule_crash(target, window[0], window[1])
            result = cluster.run(label=cfg.label, drain_ms=params.drain_ms)
            duration_s = max(result.duration_ms, 1e-9) / 1000.0
            in_window = [
                r
                for r in result.committed
                if window[0] <= r.finished_ts <= window[1]
            ]
            update_committed = [
                r for r in result.committed if r.label in update_labels
            ]
            # Field-introspected totals (aggregate_site_stats): the named
            # keys below are views into this dict, so new SiteStats
            # counters flow into cells without touching this file.
            totals = aggregate_site_stats(result.site_stats.values())
            committed = max(1, len(result.committed))
            quorum_read_count = totals["quorum_reads"]
            out.cells[(regime, fault)] = {
                "committed": len(result.committed),
                "aborted": len(result.aborted),
                "failed": len(result.failed),
                "tx_per_s": len(result.committed) / duration_s,
                "response_ms": result.mean_response_ms(),
                "messages": result.network_messages,
                "promotions": result.promotions,
                "window_committed": len(in_window),
                "window_response_ms": (
                    sum(r.response_ms for r in in_window) / len(in_window)
                    if in_window
                    else 0.0
                ),
                # Commit-path telemetry: transactions that performed at
                # least one update — the regime's headline is that *their*
                # latency stops tracking the slowest replica.
                "update_committed": len(update_committed),
                "update_response_ms": (
                    sum(r.response_ms for r in update_committed)
                    / len(update_committed)
                    if update_committed
                    else 0.0
                ),
                "window_update_committed": len(
                    [r for r in update_committed if window[0] <= r.finished_ts <= window[1]]
                ),
                "sync_acks_awaited": totals["sync_acks_awaited"],
                "sync_acks_per_commit": totals["sync_acks_awaited"] / committed,
                "version_probes": totals["version_probes_sent"],
                "quorum_reads": quorum_read_count,
                "read_repairs": totals["read_repairs_sent"],
                "read_repair_rate": (
                    totals["read_repairs_sent"] / max(1, quorum_read_count)
                ),
                "lease_refusals": totals["lease_refusals"],
                "divergent_replicas": _divergent_pairs(cluster),
                "site_totals": totals,
            }
    return out


def check_quorum_sweep(result: QuorumSweepResult) -> list[str]:
    """Shape checks: quorums intersect, stragglers converge, eager stalls."""
    notes: list[str] = []
    params = result.params
    expected = params.n_clients * params.tx_per_client
    for (regime, fault), cell in result.cells.items():
        assert cell["committed"] + cell["aborted"] + cell["failed"] <= expected
        if regime != "lazy":
            # Eager and quorum regimes must reconcile to identical bytes
            # once the cluster quiesced (lazy shares the loss-window
            # caveats measured by the availability sweep).
            assert cell["divergent_replicas"] == 0, (
                f"{regime}/{fault}: {cell['divergent_replicas']} replica "
                f"pairs divergent after heal + drain"
            )
        if regime.startswith("quorum-"):
            assert cell["version_probes"] > 0, f"{regime}/{fault}: no reads probed"
            assert cell["sync_acks_awaited"] > 0, (
                f"{regime}/{fault}: no quorum write ever counted an ack"
            )
    if "partition" in params.faults and "eager" in params.baselines:
        eager = result.cells[("eager", "partition")]
        n = params.replication_factor
        for r, w in params.rw_grid:
            cell = result.cells[(f"quorum-r{r}w{w}", "partition")]
            assert cell["window_update_committed"] > 0, (
                f"quorum-r{r}w{w}: no write committed during the cut"
            )
            if r < n and w < n:
                # The regime's headline: with a cut (but not yet
                # suspected) secondary, every eager commit waits on an
                # ack that cannot arrive until suspicion unsticks it,
                # while a sub-N write quorum settles at W acks from the
                # reachable side and never notices. (R=N or W=N cells
                # deliberately give that robustness back — they are the
                # read-everything / write-everything ends of the
                # consistency spectrum.)
                assert cell["update_response_ms"] < eager["update_response_ms"], (
                    f"quorum-r{r}w{w} write-tx response "
                    f"{cell['update_response_ms']:.2f} ms not below eager's "
                    f"{eager['update_response_ms']:.2f} ms under the partition"
                )
        notes.append(
            "partition: eager write-tx response "
            f"{eager['update_response_ms']:.2f} ms "
            f"({eager['window_update_committed']} writes in-window) vs "
            + ", ".join(
                f"r{r}w{w} "
                f"{result.cells[(f'quorum-r{r}w{w}', 'partition')]['update_response_ms']:.2f} ms "
                f"({result.cells[(f'quorum-r{r}w{w}', 'partition')]['window_update_committed']} in-window)"
                for r, w in params.rw_grid
            )
        )
    notes.append(
        f"{len(result.cells)} cells; 0 divergent replica pairs in every "
        f"eager and quorum cell (quorum intersection + anti-entropy held)"
    )
    return notes
