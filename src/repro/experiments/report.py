"""Paper-vs-measured assertions and report rendering.

``check_*`` functions encode the qualitative claims of §3 (who wins, in what
direction curves move); they raise :class:`AssertionError` with a readable
message when a reproduction run contradicts the paper. The benchmark harness
runs them so a regression in the engine's behaviour fails loudly rather than
silently producing wrong tables.
"""

from __future__ import annotations

from ..workload.metrics import FigureData
from .figures import Fig12Result


def check_fig9(fig: FigureData) -> list[str]:
    """Paper: XDGL beats tree locks; partial replication beats total."""
    notes = []
    for repl in ("partial", "total"):
        xdgl = fig.series_values(f"xdgl/{repl}")
        node = fig.series_values(f"node2pl/{repl}")
        assert all(a < b for a, b in zip(xdgl, node)), (
            f"fig9 ({repl}): expected XDGL below Node2PL, got {xdgl} vs {node}"
        )
        notes.append(
            f"fig9/{repl}: xdgl wins at every client count "
            f"(x{node[-1] / xdgl[-1]:.1f} at the largest)"
        )
    for proto in ("xdgl", "node2pl"):
        part = fig.series_values(f"{proto}/partial")
        tot = fig.series_values(f"{proto}/total")
        assert all(p < t for p, t in zip(part, tot)), (
            f"fig9 ({proto}): expected partial below total, got {part} vs {tot}"
        )
        notes.append(f"fig9/{proto}: partial replication faster than total")
    return notes


def check_fig10(fig: FigureData) -> list[str]:
    """Paper: XDGL response stays low as updates grow; XDGL deadlocks higher."""
    xdgl_rt = fig.series_values("xdgl")
    node_rt = fig.series_values("node2pl")
    assert all(a < b for a, b in zip(xdgl_rt, node_rt)), (
        f"fig10: expected XDGL response below Node2PL, got {xdgl_rt} vs {node_rt}"
    )
    xdgl_dl = sum(fig.series_values("xdgl", "deadlocks"))
    node_dl = sum(fig.series_values("node2pl", "deadlocks"))
    assert xdgl_dl >= node_dl, (
        f"fig10: expected XDGL to deadlock at least as much as Node2PL "
        f"(higher concurrency), got {xdgl_dl} vs {node_dl}"
    )
    return [
        f"fig10: xdgl response {xdgl_rt[0]:.1f}->{xdgl_rt[-1]:.1f} ms vs "
        f"node2pl {node_rt[0]:.1f}->{node_rt[-1]:.1f} ms",
        f"fig10: deadlocks xdgl={xdgl_dl} >= node2pl={node_dl}",
    ]


def check_fig11a(fig: FigureData) -> list[str]:
    """Paper: tree-lock response grows with base size; XDGL stays well below."""
    xdgl = fig.series_values("xdgl")
    node = fig.series_values("node2pl")
    assert all(a < b for a, b in zip(xdgl, node)), (
        f"fig11a: expected XDGL below Node2PL at every size, got {xdgl} vs {node}"
    )
    assert node[-1] > node[0], "fig11a: Node2PL response should grow with base size"
    xdgl_growth = xdgl[-1] / max(xdgl[0], 1e-9)
    node_growth = node[-1] / max(node[0], 1e-9)
    assert node_growth > xdgl_growth * 0.8, (
        f"fig11a: Node2PL should scale no better than XDGL "
        f"({node_growth:.2f}x vs {xdgl_growth:.2f}x)"
    )
    return [
        f"fig11a: growth over sweep xdgl x{xdgl_growth:.2f}, node2pl x{node_growth:.2f}"
    ]


def check_fig11b(fig: FigureData) -> list[str]:
    """Paper: XDGL response improves with more sites and stays below tree locks."""
    xdgl = fig.series_values("xdgl")
    node = fig.series_values("node2pl")
    assert all(a < b for a, b in zip(xdgl, node)), (
        f"fig11b: expected XDGL below Node2PL at every site count, got {xdgl} vs {node}"
    )
    assert xdgl[-1] < xdgl[0], "fig11b: XDGL response should drop as sites grow"
    return [f"fig11b: xdgl response {xdgl[0]:.1f} -> {xdgl[-1]:.1f} ms over the sweep"]


def check_fig12(result: Fig12Result) -> list[str]:
    """Paper: DTX completes its transactions roughly an order of magnitude
    faster than tree locks (218 tx / 1553 s vs 230 tx / 16500 s)."""
    xdgl_t = result.completion_time_ms("xdgl")
    node_t = result.completion_time_ms("node2pl")
    assert xdgl_t < node_t, (
        f"fig12: expected XDGL to finish first ({xdgl_t:.0f} vs {node_t:.0f} ms)"
    )
    ratio = node_t / max(xdgl_t, 1e-9)
    assert ratio > 1.5, f"fig12: expected a clear completion-time gap, got x{ratio:.2f}"
    return [
        f"fig12: xdgl {result.completed('xdgl')} tx in {xdgl_t:.0f} ms; "
        f"node2pl {result.completed('node2pl')} tx in {node_t:.0f} ms (x{ratio:.1f})"
    ]
