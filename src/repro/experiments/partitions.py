"""Partition sweep: availability vs consistency across lease timeouts.

The experiment the perfect failure detector cannot run at all: the network
*splits* mid-workload — every site stays alive, but one side holds the
busiest primary alone while the other holds the majority of its replicas.
Under ``failure_detector="lease"`` both sides suspect each other once
leases expire; the majority side elects a new primary over the wire
(epoch-bumped), the minority primary loses its lease and refuses writes,
and after the heal the deposed side reconciles by catch-up/snapshot.

The sweep varies ``lease_timeout_ms`` with the partition window fixed,
exposing the detector's central trade-off:

* a **short** lease detects the cut fast (little unavailability before the
  new primary serves) but fires *false suspicions* under jitter and pays
  needless elections;
* a **long** lease never suspects a live site but leaves the partition
  undetected — writes hang or abort for most of the window.

Consistency is not traded either way: the no-split-brain checks (at most
one epoch's writes commit during the cut; committed replica state never
diverges; all replicas byte-identical after the heal) must pass in every
cell — fencing and the sync quorum do what the oracle used to.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..config import SystemConfig
from ..core.site import aggregate_site_stats
from ..workload.generator import WorkloadSpec
from ..xml.serializer import serialize_document
from .runner import ExperimentConfig, build_cluster


@dataclass(frozen=True)
class PartitionSweepParams:
    lease_timeouts: tuple = (2.0, 4.0, 8.0, 16.0)
    n_sites: int = 4
    replication_factor: int = 3
    n_clients: int = 9
    tx_per_client: int = 5
    ops_per_tx: int = 3
    update_ratio: float = 0.4
    protocol: str = "xdgl"
    read_policy: str = "nearest"
    db_bytes: int = 18_000
    partition_at_ms: float = 6.0  # when the cut happens
    partition_ms: float = 30.0  # how long it lasts
    heartbeat_interval_ms: float = 1.0
    election_timeout_ms: float = 4.0
    drain_ms: float = 150.0  # post-workload settle (elections, catch-up)
    seed: int | None = None  # None = the SystemConfig default

    @classmethod
    def dense(cls) -> "PartitionSweepParams":
        return cls(
            lease_timeouts=(2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0),
            n_clients=15,
            tx_per_client=8,
            ops_per_tx=4,
        )

    @classmethod
    def from_env(cls) -> "PartitionSweepParams":
        """``REPRO_FULL=1`` selects the denser sweep."""
        return cls.dense() if os.environ.get("REPRO_FULL") == "1" else cls()


@dataclass
class PartitionSweepResult:
    params: PartitionSweepParams = field(default_factory=PartitionSweepParams)
    cells: dict = field(default_factory=dict)  # lease_timeout -> metrics

    def metric(self, lease_timeout: float, name: str):
        return self.cells[lease_timeout][name]

    def render(self, metric: str = "committed", fmt: str = "{:9.2f}") -> str:
        header = (
            f"partition sweep — {metric} "
            f"(cut isolates the busiest primary for {self.params.partition_ms} ms)"
        )
        lines = [
            header,
            "lease_timeout_ms  " + "  ".join(
                f"{t:>9.1f}" for t in self.params.lease_timeouts
            ),
            "                  " + "  ".join(
                fmt.format(self.cells[t][metric]) for t in self.params.lease_timeouts
            ),
        ]
        return "\n".join(lines)


def _minority_partition(cluster) -> tuple[list, list]:
    """Cut the busiest primary off alone; everyone else stays together."""
    catalog = cluster.catalog
    primaries: dict = {}
    for doc_name in catalog.all_documents():
        rset = catalog.replica_set(doc_name)
        if rset.is_replicated:
            primaries[rset.primary] = primaries.get(rset.primary, 0) + 1
    ranked = sorted(primaries, key=lambda s: (-primaries[s], str(s)))
    isolated = ranked[0] if ranked else sorted(cluster.sites, key=str)[0]
    rest = [s for s in sorted(cluster.sites, key=str) if s != isolated]
    return [isolated], rest


def _divergent_pairs(cluster) -> int:
    """Replica pairs whose serialized document states differ at run end."""
    divergent = 0
    for doc_name in cluster.catalog.all_documents():
        rset = cluster.catalog.replica_set(doc_name)
        if not rset.is_replicated:
            continue
        texts = {
            site: serialize_document(cluster.document_at(site, doc_name))
            for site in rset.all_sites
        }
        reference = texts[rset.primary]
        divergent += sum(1 for site, text in texts.items() if text != reference)
    return divergent


def partition_sweep(
    params: PartitionSweepParams | None = None,
) -> PartitionSweepResult:
    """One cell per lease timeout; fixed partition window and workload."""
    params = params or PartitionSweepParams.from_env()
    out = PartitionSweepResult(params=params)
    for lease_timeout in params.lease_timeouts:
        system = SystemConfig().with_(
            client_think_ms=1.0,
            replication_factor=params.replication_factor,
            replica_read_policy=params.read_policy,
            replica_write_policy="primary",
            failure_detector="lease",
            heartbeat_interval_ms=params.heartbeat_interval_ms,
            lease_timeout_ms=lease_timeout,
            election_timeout_ms=params.election_timeout_ms,
            # Safety valve: a transaction stuck behind the cut times out
            # and retries instead of wedging the run.
            lock_wait_timeout_ms=200.0,
            max_restarts=2,
            **({"seed": params.seed} if params.seed is not None else {}),
        )
        cfg = ExperimentConfig(
            protocol=params.protocol,
            n_sites=params.n_sites,
            replication="partial",
            db_bytes=params.db_bytes,
            workload=WorkloadSpec(
                n_clients=params.n_clients,
                tx_per_client=params.tx_per_client,
                ops_per_tx=params.ops_per_tx,
                update_tx_ratio=params.update_ratio,
            ),
            system=system,
            label=f"partitions/lease{lease_timeout}",
        )
        cluster, _ = build_cluster(cfg)
        minority, majority = _minority_partition(cluster)
        cluster.schedule_partition(
            [minority, majority],
            at_ms=params.partition_at_ms,
            heal_at_ms=params.partition_at_ms + params.partition_ms,
        )
        result = cluster.run(label=cfg.label, drain_ms=params.drain_ms)
        duration_s = max(result.duration_ms, 1e-9) / 1000.0
        # Every SiteStats counter, aggregated by field introspection —
        # the named keys below are views into this dict, not a second
        # hand-maintained enumeration that could drift.
        totals = aggregate_site_stats(result.site_stats.values())
        out.cells[lease_timeout] = {
            "committed": len(result.committed),
            "aborted": len(result.aborted),
            "failed": len(result.failed),
            "tx_per_s": len(result.committed) / duration_s,
            "response_ms": result.mean_response_ms(),
            "messages": result.network_messages,
            "promotions": result.promotions,
            "suspicions": totals["suspicions"],
            "false_suspicions": totals["false_suspicions"],
            "elections_won": totals["elections_won"],
            "elections_no_quorum": totals["elections_no_quorum"],
            "lease_refusals": totals["lease_refusals"],
            "heartbeats": totals["heartbeats_sent"],
            "compacted_entries": totals["log_entries_compacted"],
            "partition_drops": cluster.network.stats.partition_drops,
            "divergent_replicas": _divergent_pairs(cluster),
            "site_totals": totals,
        }
    return out


def check_partition_sweep(result: PartitionSweepResult) -> list[str]:
    """Shape checks: the cut was felt, detection fired, consistency held."""
    notes: list[str] = []
    params = result.params
    for lease_timeout, cell in result.cells.items():
        expected = params.n_clients * params.tx_per_client
        assert cell["committed"] + cell["aborted"] + cell["failed"] <= expected
        assert cell["partition_drops"] > 0, (
            f"lease={lease_timeout}: the partition cut no traffic at all"
        )
        # Consistency is non-negotiable in every cell: after the heal and
        # drain, replicas must have reconciled to identical bytes.
        assert cell["divergent_replicas"] == 0, (
            f"lease={lease_timeout}: {cell['divergent_replicas']} replicas "
            f"still divergent after heal + drain"
        )
        if lease_timeout < params.partition_ms / 2:
            assert cell["suspicions"] >= 1, (
                f"lease={lease_timeout}: nobody suspected anybody across a "
                f"{params.partition_ms} ms cut"
            )
    short = min(params.lease_timeouts)
    lo = result.cells[short]
    notes.append(
        f"lease={short}: {lo['committed']} committed, "
        f"{lo['suspicions']} suspicions ({lo['false_suspicions']} false), "
        f"{lo['elections_won']} elections won, "
        f"{lo['lease_refusals']} lease refusals"
    )
    notes.append(
        f"{len(result.cells)} cells, 0 divergent replica pairs everywhere "
        f"(no split-brain at any lease timeout)"
    )
    return notes
