"""Experiment runner: paper §3.1 environment assembly.

"A set of sites S = {S1..SN} is given. Each site possesses a Sedna Native XML
DBMS containing the XML documents adequate for each experiment, and an
instance of DTX. A set of clients C = {C1..CM} is considered. To process a
transaction t, a client connects to DTX and submits t."

One :class:`ExperimentConfig` fully determines a run: protocol, number of
sites, replication regime, database size, workload spec and system config.
Runs with equal configs are bit-identical (everything is seeded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import SystemConfig
from ..core.cluster import DTXCluster
from ..core.results import RunResult
from ..distribution.replication import replica_placement
from ..errors import ConfigError
from ..workload.generator import DTXTester, WorkloadSpec
from ..workload.xmark import generate_xmark, xmark_fragments


@dataclass(frozen=True)
class ExperimentConfig:
    protocol: str = "xdgl"
    n_sites: int = 4
    replication: str = "partial"  # 'partial' | 'total'
    db_bytes: int = 120_000
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    system: SystemConfig = field(default_factory=SystemConfig)
    label: str = ""

    def validate(self) -> None:
        if self.n_sites < 1:
            raise ConfigError("n_sites must be >= 1")
        if self.replication not in ("partial", "total"):
            raise ConfigError(f"unknown replication regime {self.replication!r}")
        if self.system.replication_factor > self.n_sites:
            raise ConfigError(
                f"replication_factor {self.system.replication_factor} exceeds "
                f"n_sites {self.n_sites}"
            )
        self.workload.validate()
        self.system.validate()


def build_cluster(cfg: ExperimentConfig) -> tuple[DTXCluster, DTXTester]:
    """Assemble (but do not run) the cluster + workload for ``cfg``."""
    cfg.validate()
    base_doc, _ = generate_xmark(cfg.db_bytes, seed=cfg.system.seed)
    site_ids = [f"s{i + 1}" for i in range(cfg.n_sites)]

    cluster = DTXCluster(protocol=cfg.protocol, config=cfg.system)
    for sid in site_ids:
        cluster.add_site(sid)

    if cfg.replication == "total":
        documents = [base_doc]
        for sid in site_ids:
            cluster.host_document(sid, base_doc)
    else:
        fragments = xmark_fragments(base_doc, cfg.n_sites)
        documents = fragments
        # replication_factor > 1 places each fragment on that many
        # consecutive sites (primary first), opening the replicated
        # read-one-write-all axis for every figure sweep.
        for i, frag in enumerate(fragments):
            for site in replica_placement(i, site_ids, cfg.system.replication_factor):
                cluster.host_document(site, frag)

    tester = DTXTester(cfg.workload, documents)
    placement = tester.assign_clients_to_sites(site_ids)
    for client_idx, sid in placement.items():
        cluster.add_client(
            f"c{client_idx}", sid, tester.transactions_for_client(client_idx)
        )
    return cluster, tester


def run_experiment(cfg: ExperimentConfig) -> RunResult:
    cluster, _ = build_cluster(cfg)
    label = cfg.label or f"{cfg.protocol}/{cfg.replication}/{cfg.n_sites}sites"
    return cluster.run(label=label)
