"""The paper's evaluation, figure by figure (experiments E1-E6).

Every public ``fig*`` function reproduces one figure of §3 and returns the
measured data; benchmarks and EXPERIMENTS.md are generated from these.

Scaling: the paper ran a 40-200 MB XMark database on eight physical PCs; we
run KB-scale databases on a discrete-event simulator. ``FigureParams.quick()``
(default, CI-friendly) and ``FigureParams.paper()`` (full sweep: every
client count and size point of the paper, scaled 400:1 by bytes) control the
sweep density — the *shapes* are the reproduction target, not absolute
numbers (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from ..config import SystemConfig
from ..core.results import RunResult
from ..distribution.catalog import Catalog
from ..workload.generator import WorkloadSpec
from ..workload.metrics import FigureData, point_from_run
from ..workload.xmark import generate_xmark, xmark_fragments
from .runner import ExperimentConfig, run_experiment

#: 400:1 byte scaling — the paper's 40 MB base maps to 100 kB here.
SCALE = 400
BASE_DB_BYTES = 40 * 1024 * 1024 // SCALE  # "40 MB"

PROTOCOLS = ("xdgl", "node2pl")


def _system() -> SystemConfig:
    return SystemConfig().with_(client_think_ms=1.0)


@dataclass(frozen=True)
class FigureParams:
    client_counts: tuple[int, ...] = (10, 30, 50)
    update_ratios: tuple[float, ...] = (0.2, 0.4, 0.6)
    db_scales: tuple[float, ...] = (1.25, 2.5, 5.0)  # x BASE => "50..200 MB"
    site_counts: tuple[int, ...] = (2, 4, 8)
    fig9_clients_cap: int = 50
    tx_per_client: int = 5
    ops_per_tx: int = 5

    @classmethod
    def quick(cls) -> "FigureParams":
        return cls()

    @classmethod
    def paper(cls) -> "FigureParams":
        return cls(
            client_counts=(10, 20, 30, 40, 50),
            update_ratios=(0.2, 0.3, 0.4, 0.5, 0.6),
            db_scales=(1.25, 2.5, 3.75, 5.0),
            site_counts=(2, 3, 4, 5, 6, 7, 8),
        )

    @classmethod
    def from_env(cls) -> "FigureParams":
        """``REPRO_FULL=1`` selects the paper-density sweeps."""
        return cls.paper() if os.environ.get("REPRO_FULL") == "1" else cls.quick()


def _workload(params: FigureParams, n_clients: int, update_ratio: float) -> WorkloadSpec:
    return WorkloadSpec(
        n_clients=n_clients,
        tx_per_client=params.tx_per_client,
        ops_per_tx=params.ops_per_tx,
        update_tx_ratio=update_ratio,
        update_op_ratio=0.2,
    )


# ---------------------------------------------------------------------------
# Fig. 8 — fragmentation and data allocation
# ---------------------------------------------------------------------------


@dataclass
class Fig8Result:
    rows: list[tuple[int, str, list[str]]] = field(default_factory=list)
    balance_ratios: dict[int, float] = field(default_factory=dict)

    def render(self) -> str:
        lines = ["Fig. 8: fragmentation and data allocation", "sites | site | content"]
        for n, site, content in self.rows:
            lines.append(f"{n:5d} | {site} | {', '.join(content)}")
        return "\n".join(lines)


def fig8(db_bytes: int = BASE_DB_BYTES) -> Fig8Result:
    """Fragment the scaled 40 MB base for 2/4/8 sites (paper Fig. 8)."""
    out = Fig8Result()
    doc, _ = generate_xmark(db_bytes)
    for n_sites in (2, 4, 8):
        frags = xmark_fragments(doc, n_sites)
        sizes = [f.size_bytes() for f in frags]
        out.balance_ratios[n_sites] = max(sizes) / min(sizes)
        for i, frag in enumerate(frags):
            out.rows.append((n_sites, f"s{i + 1}", [f"{frag.name} ({sizes[i]} B)"]))
    return out


# ---------------------------------------------------------------------------
# Fig. 9 — response time vs number of clients (total & partial replication)
# ---------------------------------------------------------------------------


def fig9(params: FigureParams | None = None) -> FigureData:
    """Read-only clients sweep: XDGL vs Node2PL x partial vs total."""
    params = params or FigureParams.from_env()
    fig = FigureData("fig9", "response time vs number of clients", "clients")
    for protocol in PROTOCOLS:
        for replication in ("partial", "total"):
            for n_clients in params.client_counts:
                cfg = ExperimentConfig(
                    protocol=protocol,
                    n_sites=4,
                    replication=replication,
                    db_bytes=BASE_DB_BYTES,
                    workload=_workload(params, n_clients, update_ratio=0.0),
                    system=_system(),
                )
                run = run_experiment(cfg)
                fig.add(point_from_run(f"{protocol}/{replication}", n_clients, run))
    return fig


# ---------------------------------------------------------------------------
# Fig. 10 — response time and deadlocks vs update percentage
# ---------------------------------------------------------------------------


def fig10(params: FigureParams | None = None) -> FigureData:
    """50 clients; update-transaction percentage swept 20-60 %."""
    params = params or FigureParams.from_env()
    fig = FigureData("fig10", "response time / deadlocks vs update %", "update %")
    for protocol in PROTOCOLS:
        for ratio in params.update_ratios:
            cfg = ExperimentConfig(
                protocol=protocol,
                n_sites=4,
                replication="partial",
                db_bytes=BASE_DB_BYTES,
                workload=_workload(params, params.fig9_clients_cap, update_ratio=ratio),
                system=_system(),
            )
            run = run_experiment(cfg)
            fig.add(point_from_run(protocol, round(ratio * 100), run))
    return fig


# ---------------------------------------------------------------------------
# Fig. 11a — response time and deadlocks vs database size
# ---------------------------------------------------------------------------


def fig11a(params: FigureParams | None = None) -> FigureData:
    params = params or FigureParams.from_env()
    fig = FigureData("fig11a", "response time / deadlocks vs base size", "size (scaled MB)")
    for protocol in PROTOCOLS:
        for scale in params.db_scales:
            db_bytes = int(BASE_DB_BYTES * scale)
            cfg = ExperimentConfig(
                protocol=protocol,
                n_sites=4,
                replication="partial",
                db_bytes=db_bytes,
                workload=_workload(params, params.fig9_clients_cap, update_ratio=0.2),
                system=_system(),
            )
            run = run_experiment(cfg)
            fig.add(point_from_run(protocol, round(40 * scale), run))
    return fig


# ---------------------------------------------------------------------------
# Fig. 11b — response time vs number of sites
# ---------------------------------------------------------------------------


def fig11b(params: FigureParams | None = None) -> FigureData:
    params = params or FigureParams.from_env()
    fig = FigureData("fig11b", "response time vs number of sites", "sites")
    for protocol in PROTOCOLS:
        for n_sites in params.site_counts:
            cfg = ExperimentConfig(
                protocol=protocol,
                n_sites=n_sites,
                replication="partial",
                db_bytes=BASE_DB_BYTES,
                workload=_workload(params, params.fig9_clients_cap, update_ratio=0.2),
                system=_system(),
            )
            run = run_experiment(cfg)
            fig.add(point_from_run(protocol, n_sites, run))
    return fig


# ---------------------------------------------------------------------------
# Fig. 12 — throughput and concurrency degree over time
# ---------------------------------------------------------------------------


@dataclass
class Fig12Result:
    runs: dict[str, RunResult] = field(default_factory=dict)
    throughput: dict[str, list[tuple[float, int]]] = field(default_factory=dict)
    concurrency: dict[str, list[tuple[float, int]]] = field(default_factory=dict)
    bucket_ms: float = 0.0

    def completed(self, protocol: str) -> int:
        return len(self.runs[protocol].committed)

    def not_executed(self, protocol: str) -> int:
        r = self.runs[protocol]
        return len(r.records) - len(r.committed)

    def completion_time_ms(self, protocol: str) -> float:
        return self.runs[protocol].completion_time_ms()

    def render(self) -> str:
        lines = ["Fig. 12: throughput and concurrency degree"]
        for proto, run in self.runs.items():
            lines.append(
                f"  {proto}: {len(run.committed)} tx committed in "
                f"{run.completion_time_ms():.1f} ms "
                f"({self.not_executed(proto)} not executed)"
            )
            series = ", ".join(f"{int(c)}" for _, c in self.throughput[proto][:20])
            lines.append(f"    throughput/bucket: {series}")
        return "\n".join(lines)


def fig12(params: FigureParams | None = None, n_buckets: int = 20) -> Fig12Result:
    """250 transactions (50 clients x 5 tx), 20 % updates, 4 sites."""
    params = params or FigureParams.from_env()
    out = Fig12Result()
    for protocol in PROTOCOLS:
        cfg = ExperimentConfig(
            protocol=protocol,
            n_sites=4,
            replication="partial",
            db_bytes=BASE_DB_BYTES,
            workload=_workload(params, 50, update_ratio=0.2),
            system=_system(),
        )
        out.runs[protocol] = run_experiment(cfg)
    horizon = max(r.duration_ms for r in out.runs.values())
    out.bucket_ms = max(1.0, horizon / n_buckets)
    for protocol, run in out.runs.items():
        out.throughput[protocol] = run.throughput_series(out.bucket_ms)
        out.concurrency[protocol] = run.concurrency_series(out.bucket_ms)
    return out
