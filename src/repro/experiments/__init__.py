"""The paper's evaluation: experiment runner, per-figure sweeps, checks."""

from .availability import (
    AvailabilitySweepParams,
    AvailabilitySweepResult,
    availability_sweep,
    check_availability_sweep,
)
from .figures import (
    BASE_DB_BYTES,
    SCALE,
    Fig8Result,
    Fig12Result,
    FigureParams,
    fig8,
    fig9,
    fig10,
    fig11a,
    fig11b,
    fig12,
)
from .partitions import (
    PartitionSweepParams,
    PartitionSweepResult,
    check_partition_sweep,
    partition_sweep,
)
from .quorum import (
    QuorumSweepParams,
    QuorumSweepResult,
    check_quorum_sweep,
    quorum_sweep,
)
from .replication import (
    ReplicationSweepParams,
    ReplicationSweepResult,
    check_replication_sweep,
    replication_sweep,
)
from .report import check_fig9, check_fig10, check_fig11a, check_fig11b, check_fig12
from .runner import ExperimentConfig, build_cluster, run_experiment
from .scale import (
    ScaleSweepParams,
    ScaleSweepResult,
    check_scale_sweep,
    scale_sweep,
)

__all__ = [
    "AvailabilitySweepParams",
    "AvailabilitySweepResult",
    "BASE_DB_BYTES",
    "ExperimentConfig",
    "availability_sweep",
    "check_availability_sweep",
    "Fig12Result",
    "Fig8Result",
    "FigureParams",
    "PartitionSweepParams",
    "PartitionSweepResult",
    "QuorumSweepParams",
    "QuorumSweepResult",
    "ReplicationSweepParams",
    "ReplicationSweepResult",
    "ScaleSweepParams",
    "ScaleSweepResult",
    "check_partition_sweep",
    "check_scale_sweep",
    "scale_sweep",
    "check_quorum_sweep",
    "partition_sweep",
    "quorum_sweep",
    "SCALE",
    "build_cluster",
    "check_replication_sweep",
    "check_fig10",
    "check_fig11a",
    "check_fig11b",
    "check_fig12",
    "check_fig9",
    "fig10",
    "fig11a",
    "fig11b",
    "fig12",
    "fig8",
    "fig9",
    "replication_sweep",
    "run_experiment",
]
