"""Materialized-view sweep: lock-free reads off asynchronously-fed shadows.

The experiment behind README § Materialized views: the same two-phase
read-heavy scenario runs once per regime — ``locked`` (every read takes
XDGL locks at a replica and rides the usual commit path) and ``views-<B>ms``
cells where read-only transactions may be answered by a view host whose
shadow is within a ``B`` ms staleness bound.

Each cell runs two phases over one cluster:

* ``mixed`` — writers and readers interleave. View routing already serves
  part of the read traffic here, but a read arriving inside the
  propagation window falls back to the locked path (the bound decides how
  often).
* ``readonly`` — writes stop, the shadows settle, and a pure read phase
  follows. This is the receipt phase: under every views cell each read
  commits **without a single lock-table operation anywhere and without a
  single 2PC round** — the view host answers from its shadow and never
  joins the transaction, so there is nothing to lock and nobody to
  prepare. Both are measured as deltas over the phase and asserted zero
  by :func:`check_views_sweep` (the locked baseline shows the cost being
  avoided: its counters keep climbing).

Requires a primary-copy write regime: the shadows are maintained from the
primaries' committed update logs (``ViewDeltaBatch`` pushes), which the
write-all regime does not record.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..config import SystemConfig
from ..core.cluster import DTXCluster
from ..core.site import aggregate_site_stats
from ..core.transaction import Operation, Transaction
from ..sim.rng import substream
from ..update.operations import ChangeOp, InsertOp
from ..xml.parser import parse_document


@dataclass(frozen=True)
class ViewsSweepParams:
    staleness_grid: tuple = (2.0, 20.0)  # views-<B>ms cells
    n_sites: int = 3  # data sites; the view host is one extra site on top
    n_clients: int = 8
    tx_per_client: int = 4
    ops_per_tx: int = 2
    update_ratio: float = 0.25  # mixed-phase update-transaction share
    n_docs: int = 4
    items_per_doc: int = 6
    replication_factor: int = 2
    protocol: str = "xdgl"
    view_refresh_ms: float = 2.0
    submit_gap_ms: float = 1.5  # pacing between submissions per phase
    settle_ms: float = 40.0  # between phases: shadows catch up
    seed: int | None = None  # None = the SystemConfig default

    @classmethod
    def dense(cls) -> "ViewsSweepParams":
        return cls(
            staleness_grid=(2.0, 10.0, 50.0),
            n_clients=12,
            tx_per_client=6,
            n_docs=6,
        )

    @classmethod
    def from_env(cls) -> "ViewsSweepParams":
        """``REPRO_FULL=1`` selects the denser sweep."""
        return cls.dense() if os.environ.get("REPRO_FULL") == "1" else cls()

    def regimes(self) -> list[str]:
        return ["locked"] + [f"views-{b:g}ms" for b in self.staleness_grid]


PHASES = ("mixed", "readonly")


@dataclass
class ViewsSweepResult:
    params: ViewsSweepParams = field(default_factory=ViewsSweepParams)
    cells: dict = field(default_factory=dict)  # (regime, phase) -> metrics

    def metric(self, regime: str, phase: str, name: str):
        return self.cells[(regime, phase)][name]

    def render(self, metric: str = "committed", fmt: str = "{:10.2f}") -> str:
        lines = [
            f"views sweep — {metric} "
            f"(refresh every {self.params.view_refresh_ms} ms)",
            "regime \\ phase  " + "  ".join(f"{p:>10s}" for p in PHASES),
        ]
        for regime in self.params.regimes():
            row = [f"{regime:>14s}"]
            for phase in PHASES:
                row.append(fmt.format(self.cells[(regime, phase)][metric]))
            lines.append("  ".join(row))
        return "\n".join(lines)


def _make_docs(params: ViewsSweepParams) -> list:
    docs = []
    for d in range(params.n_docs):
        items = "".join(
            f"<item><id>{i}</id><price>{(i + 1) * 10}</price></item>"
            for i in range(params.items_per_doc)
        )
        docs.append(parse_document(f"<catalog>{items}</catalog>", name=f"d{d + 1}"))
    return docs


def _read_tx(rng, params: ViewsSweepParams, label: str) -> Transaction:
    ops = []
    for _ in range(params.ops_per_tx):
        doc = f"d{rng.randrange(params.n_docs) + 1}"
        # Both shapes are subsumed by the registered //item pattern.
        path = rng.choice(("/catalog/item", "//item"))
        ops.append(Operation.query(doc, path))
    return Transaction(ops, label=label)


def _write_tx(rng, params: ViewsSweepParams, label: str, fresh_id: int) -> Transaction:
    doc = f"d{rng.randrange(params.n_docs) + 1}"
    if rng.random() < 0.5:
        op = Operation.update(
            doc,
            ChangeOp(
                f"/catalog/item[id={rng.randrange(params.items_per_doc)}]/price",
                rng.randrange(10, 1000),
            ),
        )
    else:
        op = Operation.update(
            doc,
            InsertOp(
                f"<item><id>{fresh_id}</id><price>{rng.randrange(10, 1000)}</price></item>",
                "/catalog",
            ),
        )
    return Transaction([op], label=label)


def _counters(cluster) -> dict:
    sites = list(cluster.sites.values())
    # Field-introspected totals (aggregate_site_stats): the named keys
    # below are views into this dict, so new SiteStats counters flow into
    # cells without touching this file.
    totals = aggregate_site_stats(s.stats for s in sites)
    return {
        "lock_ops": sum(s.lock_manager.table.lock_ops for s in sites),
        "commit_requests": cluster.network.stats.by_kind.get("CommitRequest", 0),
        "served": totals["view_reads_served"],
        "routed": totals["view_reads_routed"],
        "fallbacks": totals["view_read_fallbacks"],
        "staleness_sum": totals["view_staleness_sum_ms"],
        "site_totals": totals,
    }


def _run_phase(cluster, txs, gap_ms: float) -> list:
    """Submit ``txs`` round-robin at their home sites, paced ``gap_ms`` apart."""
    outcomes: list = []
    for tx, home in txs:
        cluster.sites[home].submit(tx, outcomes.append)
        cluster.env.run(until=cluster.env.now + gap_ms)
    # Drain: every submission must reach a terminal state.
    deadline = cluster.env.now + 2000.0
    while len(outcomes) < len(txs) and cluster.env.now < deadline:
        cluster.env.run(until=cluster.env.now + 10.0)
    return outcomes


def _run_cell(params: ViewsSweepParams, regime: str) -> dict:
    bound = 0.0 if regime == "locked" else float(regime[len("views-"):-2])
    system = SystemConfig().with_(
        replica_write_policy="primary",
        replica_read_policy="primary",
        view_staleness_ms=bound,
        view_refresh_ms=params.view_refresh_ms,
        lock_wait_timeout_ms=200.0,
        max_restarts=2,
        **({"seed": params.seed} if params.seed is not None else {}),
    )
    data_sites = [f"s{i + 1}" for i in range(params.n_sites)]
    view_host = "v1"
    cluster = DTXCluster(protocol=params.protocol, config=system)
    for sid in (*data_sites, view_host):
        cluster.add_site(sid)
    docs = _make_docs(params)
    for i, doc in enumerate(docs):
        owners = [
            data_sites[(i + k) % len(data_sites)]
            for k in range(params.replication_factor)
        ]
        cluster.replicate_document(doc, owners)
    if regime != "locked":
        for doc in docs:
            cluster.register_view(f"v-{doc.name}", "//item", [doc.name], host=view_host)
    cluster.start()
    cluster.env.run(until=10.0)  # initial hydration settles

    seed = system.seed
    rng = substream(seed, "views-sweep", regime)
    total_tx = params.n_clients * params.tx_per_client
    n_writes = round(total_tx * params.update_ratio)

    def home(i: int) -> str:
        return data_sites[i % len(data_sites)]

    mixed: list = []
    fresh_id = 1000
    for i in range(total_tx):
        if i % max(1, total_tx // max(1, n_writes)) == 0 and n_writes:
            fresh_id += 1
            mixed.append((_write_tx(rng, params, f"w{i}", fresh_id), home(i)))
        else:
            mixed.append((_read_tx(rng, params, f"r{i}"), home(i)))

    cells: dict = {}
    for phase in PHASES:
        if phase == "readonly":
            # Writes stop; give the shadows a settle window to catch up.
            cluster.env.run(until=cluster.env.now + params.settle_ms)
            txs = [
                (_read_tx(rng, params, f"p{i}"), home(i)) for i in range(total_tx)
            ]
        else:
            txs = mixed
        before = _counters(cluster)
        t0 = cluster.env.now
        outcomes = _run_phase(cluster, txs, params.submit_gap_ms)
        after = _counters(cluster)
        duration_s = max(cluster.env.now - t0, 1e-9) / 1000.0
        committed = [o for o in outcomes if o.status == "committed"]
        reads = [t for t, _ in txs if not t.is_update_transaction]
        served = after["served"] - before["served"]
        routed = after["routed"] - before["routed"]
        fallbacks = after["fallbacks"] - before["fallbacks"]
        cells[phase] = {
            "committed": len(committed),
            "aborted": len([o for o in outcomes if o.status == "aborted"]),
            "failed": len([o for o in outcomes if o.status == "failed"]),
            "expected": len(txs),
            "read_tx": len(reads),
            "tx_per_s": len(committed) / duration_s,
            "response_ms": (
                sum(o.finished_ts - o.submitted_ts for o in committed)
                / len(committed)
                if committed
                else 0.0
            ),
            "view_served": served,
            "view_fallbacks": fallbacks,
            "view_hit_rate": routed / max(1, routed + fallbacks),
            "staleness_ms": (
                (after["staleness_sum"] - before["staleness_sum"]) / served
                if served
                else 0.0
            ),
            "lock_ops": after["lock_ops"] - before["lock_ops"],
            "commit_requests": after["commit_requests"] - before["commit_requests"],
            # Cumulative (not per-phase) cluster totals at phase end.
            "site_totals": after["site_totals"],
        }
    return cells


def views_sweep(params: ViewsSweepParams | None = None) -> ViewsSweepResult:
    """Run the regime x phase grid; one two-phase scenario per regime."""
    params = params or ViewsSweepParams.from_env()
    out = ViewsSweepResult(params=params)
    for regime in params.regimes():
        for phase, metrics in _run_cell(params, regime).items():
            out.cells[(regime, phase)] = metrics
    return out


def check_views_sweep(result: ViewsSweepResult) -> list[str]:
    """Shape checks: the receipt — view-served reads take no locks, run no 2PC."""
    notes: list[str] = []
    params = result.params
    for (regime, phase), cell in result.cells.items():
        assert cell["committed"] + cell["aborted"] + cell["failed"] == cell["expected"], (
            f"{regime}/{phase}: {cell['expected']} submitted, "
            f"{cell['committed'] + cell['aborted'] + cell['failed']} resolved"
        )
        assert cell["committed"] > 0, f"{regime}/{phase}: nothing committed"
        if regime == "locked":
            assert cell["view_served"] == 0, (
                f"locked/{phase}: {cell['view_served']} reads view-served with "
                "views off"
            )
            assert cell["lock_ops"] > 0, (
                f"locked/{phase}: the baseline took no locks — nothing to compare"
            )
    for bound in params.staleness_grid:
        regime = f"views-{bound:g}ms"
        ro = result.cells[(regime, "readonly")]
        # The headline receipt: after the shadows settle, every read is
        # answered by the view host — zero lock-table operations at any
        # site and zero 2PC rounds for the whole phase.
        assert ro["committed"] == ro["expected"], (
            f"{regime}/readonly: only {ro['committed']}/{ro['expected']} committed"
        )
        assert ro["view_hit_rate"] == 1.0, (
            f"{regime}/readonly: hit rate {ro['view_hit_rate']:.2f} < 1.0"
        )
        assert ro["lock_ops"] == 0, (
            f"{regime}/readonly: {ro['lock_ops']} lock-table operations "
            "during a phase that should be entirely view-served"
        )
        assert ro["commit_requests"] == 0, (
            f"{regime}/readonly: {ro['commit_requests']} CommitRequests "
            "during a phase that should involve no 2PC at all"
        )
        assert ro["staleness_ms"] <= bound, (
            f"{regime}/readonly: mean staleness at serve "
            f"{ro['staleness_ms']:.2f} ms exceeds the {bound:g} ms bound"
        )
        mixed = result.cells[(regime, "mixed")]
        assert mixed["view_served"] + mixed["view_fallbacks"] > 0, (
            f"{regime}/mixed: no read was ever considered for view routing"
        )
    locked_ro = result.cells[("locked", "readonly")]
    sample = result.cells[(f"views-{params.staleness_grid[-1]:g}ms", "readonly")]
    notes.append(
        f"readonly phase: locked baseline {locked_ro['lock_ops']} lock ops / "
        f"{locked_ro['commit_requests']} CommitRequests vs views 0 / 0 "
        f"({sample['view_served']} reads served from shadows, "
        f"mean staleness {sample['staleness_ms']:.2f} ms)"
    )
    notes.append(
        f"{len(result.cells)} cells; every views readonly phase hit rate 1.0 "
        "with zero primary lock-table operations and zero 2PC participation"
    )
    return notes
