"""Scale sweep: hash-ring placement + online migration under elasticity.

The experiment behind README § Sharding & migration: a (sites x clients)
grid where every cell runs the same elasticity scenario — the cluster
starts with ``n_sites`` loaded sites plus one **empty spare**, placement
driven by :class:`~repro.distribution.placement.HashRingPlacement`; while
the workload runs, the spare *joins* (the ring rebalance migrates the
minimal set of documents onto it) and later one of the original sites is
*decommissioned* (its documents migrate off, again ring-minimal), all with
client traffic flowing throughout.

Reported per cell: commit/abort/fail counts, response time, how many
documents each rebalance moved (the ring's minimal-movement property makes
this ~D/(N+1) instead of ~D), migration telemetry (completed, stalled,
replicas added/retired, cutovers), the decommissioned site's residual
document count (must reach zero) and the divergent-replica count after
settle (must be zero — committed writes survive the moves byte-for-byte).

Runs under the eager primary-copy regime with the perfect detector: the
sweep isolates *elasticity* mechanics; migration under crash and partition
faults is property-tested in ``tests/test_migration.py``, and the lease
detector's fault behaviour has its own sweeps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..config import SystemConfig
from ..distribution.placement import HashRingPlacement, ring_rebalance
from ..core.cluster import DTXCluster
from ..workload.generator import DTXTester, WorkloadSpec
from ..workload.xmark import generate_xmark, xmark_fragments
from ..xml.serializer import serialize_document


@dataclass(frozen=True)
class ScaleSweepParams:
    sites_grid: tuple = (3, 4)
    clients_grid: tuple = (6, 12)
    replication_factor: int = 2
    tx_per_client: int = 4
    ops_per_tx: int = 3
    update_ratio: float = 0.4
    protocol: str = "xdgl"
    db_bytes: int = 18_000
    join_at_ms: float = 8.0  # the spare site joins the ring
    leave_at_ms: float = 60.0  # one original site is decommissioned
    vnodes: int = 64
    seed: int | None = None  # None = the SystemConfig default
    drain_ms: float = 50.0
    settle_ms: float = 3000.0  # post-workload budget for migrations to finish

    @classmethod
    def dense(cls) -> "ScaleSweepParams":
        return cls(
            sites_grid=(3, 4, 6),
            clients_grid=(6, 12, 18),
            tx_per_client=6,
        )

    @classmethod
    def from_env(cls) -> "ScaleSweepParams":
        """``REPRO_FULL=1`` selects the denser sweep."""
        return cls.dense() if os.environ.get("REPRO_FULL") == "1" else cls()


@dataclass
class ScaleSweepResult:
    params: ScaleSweepParams = field(default_factory=ScaleSweepParams)
    cells: dict = field(default_factory=dict)  # (n_sites, n_clients) -> metrics

    def metric(self, n_sites: int, n_clients: int, name: str):
        return self.cells[(n_sites, n_clients)][name]

    def render(self, metric: str = "committed", fmt: str = "{:10.2f}") -> str:
        clients = list(self.params.clients_grid)
        lines = [
            f"scale sweep — {metric} "
            f"(join at t={self.params.join_at_ms} ms, "
            f"decommission at t={self.params.leave_at_ms} ms)",
            "sites \\ clients  " + "  ".join(f"{c:>10d}" for c in clients),
        ]
        for n in self.params.sites_grid:
            row = [f"{n:>15d}"]
            for c in clients:
                row.append(fmt.format(self.cells[(n, c)][metric]))
            lines.append("  ".join(row))
        return "\n".join(lines)


def _divergent_pairs(cluster) -> int:
    """Replica pairs whose serialized document states differ at run end."""
    divergent = 0
    for doc_name in cluster.catalog.all_documents():
        rset = cluster.catalog.replica_set(doc_name)
        if not rset.is_replicated:
            continue
        texts = {
            site: serialize_document(cluster.document_at(site, doc_name))
            for site in rset.all_sites
        }
        reference = texts[rset.primary]
        divergent += sum(1 for text in texts.values() if text != reference)
    return divergent


def _issue_rebalance(cluster, moves: dict, label: str, counter: dict) -> None:
    """Start one migration per moved document, deferring any document whose
    previous migration is still in flight (a join-move may still be
    settling when the decommission rebalance fires)."""
    pending = dict(moves)

    def attempt():
        for doc_name, targets in list(pending.items()):
            if doc_name in cluster.migration.active:
                continue
            cluster.migration.migrate(doc_name, targets, label=label)
            counter[label] = counter.get(label, 0) + 1
            del pending[doc_name]
        if pending:
            cluster.env.schedule_call(10.0, attempt)

    attempt()


def _run_cell(params: ScaleSweepParams, n_sites: int, n_clients: int) -> dict:
    system = SystemConfig().with_(
        client_think_ms=1.0,
        replication_factor=params.replication_factor,
        replica_read_policy="nearest",
        replica_write_policy="primary",
        lock_wait_timeout_ms=200.0,
        max_restarts=2,
        **({"seed": params.seed} if params.seed is not None else {}),
    )
    base_doc, _ = generate_xmark(params.db_bytes, seed=system.seed)
    initial_sites = [f"s{i + 1}" for i in range(n_sites)]
    spare = f"s{n_sites + 1}"
    leaver = initial_sites[0]

    cluster = DTXCluster(protocol=params.protocol, config=system)
    for sid in (*initial_sites, spare):
        cluster.add_site(sid)  # the spare starts empty (sites are fixed at start)

    policy = HashRingPlacement(factor=params.replication_factor, vnodes=params.vnodes)
    ring = policy.ring(initial_sites)
    fragments = xmark_fragments(base_doc, n_sites)
    doc_names = [frag.name for frag in fragments]
    for frag in fragments:
        cluster.replicate_document(
            frag, ring.placement(frag.name, params.replication_factor)
        )

    workload = WorkloadSpec(
        n_clients=n_clients,
        tx_per_client=params.tx_per_client,
        ops_per_tx=params.ops_per_tx,
        update_tx_ratio=params.update_ratio,
    )
    tester = DTXTester(workload, fragments)
    placement = tester.assign_clients_to_sites(initial_sites)
    for client_idx, sid in placement.items():
        cluster.add_client(
            f"c{client_idx}", sid, tester.transactions_for_client(client_idx)
        )

    # The elasticity schedule: the ring decides what moves, the manager
    # moves it — each rebalance only touches the documents whose replica
    # set actually changed (the ring's minimal-movement property).
    grown = [*initial_sites, spare]
    shrunk = [s for s in grown if s != leaver]
    join_moves = ring_rebalance(policy, doc_names, initial_sites, grown)
    leave_moves = ring_rebalance(policy, doc_names, grown, shrunk)
    issued: dict = {}
    cluster.env.schedule_call(
        params.join_at_ms, _issue_rebalance, cluster, join_moves, "join", issued
    )
    cluster.env.schedule_call(
        params.leave_at_ms, _issue_rebalance, cluster, leave_moves, "leave", issued
    )

    label = f"scale/{n_sites}x{n_clients}"
    cluster.run(label=label, drain_ms=params.drain_ms)
    # Migrations may outlive the workload: settle until the manager is
    # quiet (bounded — a stalled migration parks and clears ``active``).
    deadline = cluster.env.now + params.settle_ms
    while not cluster.migration.quiesced() and cluster.env.now < deadline:
        cluster.env.run(until=cluster.env.now + 25.0)
    result = cluster.collect_results(label=label)

    stats = cluster.migration.stats
    duration_s = max(result.duration_ms, 1e-9) / 1000.0
    return {
        "committed": len(result.committed),
        "aborted": len(result.aborted),
        "failed": len(result.failed),
        "tx_per_s": len(result.committed) / duration_s,
        "response_ms": result.mean_response_ms(),
        "messages": result.network_messages,
        "docs": len(doc_names),
        "moved_join": len(join_moves),
        "moved_leave": len(leave_moves),
        "migrations_started": stats.started,
        "migrations_completed": stats.completed,
        "migrations_stalled": stats.stalled,
        "replicas_added": stats.replicas_added,
        "replicas_retired": stats.replicas_retired,
        "cutovers": stats.cutovers,
        "leaver_residual_docs": len(cluster.sites[leaver].documents_hosted()),
        "spare_docs": len(cluster.sites[spare].documents_hosted()),
        "divergent_replicas": _divergent_pairs(cluster),
    }


def scale_sweep(params: ScaleSweepParams | None = None) -> ScaleSweepResult:
    """Run the (sites x clients) grid; one elasticity scenario per cell."""
    params = params or ScaleSweepParams.from_env()
    out = ScaleSweepResult(params=params)
    for n_sites in params.sites_grid:
        for n_clients in params.clients_grid:
            out.cells[(n_sites, n_clients)] = _run_cell(params, n_sites, n_clients)
    return out


def check_scale_sweep(result: ScaleSweepResult) -> list[str]:
    """Shape checks: moves are ring-minimal, migrations land, zero divergence."""
    notes: list[str] = []
    params = result.params
    for (n_sites, n_clients), cell in result.cells.items():
        expected = n_clients * params.tx_per_client
        assert cell["committed"] + cell["aborted"] + cell["failed"] <= expected
        assert cell["committed"] > 0, f"{n_sites}x{n_clients}: nothing committed"
        # Ring rebalances must not reshuffle the world: each move set is a
        # strict subset of the documents (~D/(N+1) for a join of one).
        assert 0 < cell["moved_join"] < cell["docs"], (
            f"{n_sites}x{n_clients}: join moved {cell['moved_join']} of "
            f"{cell['docs']} documents — not ring-minimal"
        )
        assert cell["migrations_stalled"] == 0, (
            f"{n_sites}x{n_clients}: {cell['migrations_stalled']} migrations stalled"
        )
        assert cell["migrations_completed"] == cell["migrations_started"], (
            f"{n_sites}x{n_clients}: "
            f"{cell['migrations_started'] - cell['migrations_completed']} "
            f"migrations never finished"
        )
        assert cell["leaver_residual_docs"] == 0, (
            f"{n_sites}x{n_clients}: decommissioned site still hosts "
            f"{cell['leaver_residual_docs']} documents"
        )
        assert cell["spare_docs"] > 0, (
            f"{n_sites}x{n_clients}: the joining site never received a document"
        )
        assert cell["divergent_replicas"] == 0, (
            f"{n_sites}x{n_clients}: {cell['divergent_replicas']} replica "
            f"pairs divergent after settle"
        )
    moved = [
        f"{ns}x{nc}: join {c['moved_join']}/{c['docs']}, "
        f"leave {c['moved_leave']}/{c['docs']}"
        for (ns, nc), c in result.cells.items()
    ]
    notes.append("ring-minimal moves — " + "; ".join(moved))
    notes.append(
        f"{len(result.cells)} cells; every migration completed, every "
        f"decommissioned site drained to zero documents, 0 divergent "
        f"replica pairs after settle"
    )
    return notes
