"""Replication sweep: read throughput vs replication factor.

Not a figure of the paper — this is the scenario the paper's total/partial
dichotomy cannot express: fragments placed at ``factor`` sites each under
primary-copy read-one-write-all routing. Read-heavy workloads scale with
the factor (each replica serves a share of the reads); write-heavy
workloads pay for it (every commit synchronizes ``factor - 1``
secondaries).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..config import SystemConfig
from ..workload.generator import WorkloadSpec
from .runner import ExperimentConfig, run_experiment


@dataclass(frozen=True)
class ReplicationSweepParams:
    factors: tuple[int, ...] = (1, 2, 4)
    update_ratios: tuple[float, ...] = (0.0, 0.2, 0.5)
    n_sites: int = 4
    n_clients: int = 12
    tx_per_client: int = 4
    ops_per_tx: int = 4
    protocol: str = "xdgl"
    read_policy: str = "nearest"
    db_bytes: int = 24_000
    seed: int | None = None  # None = the SystemConfig default

    @classmethod
    def dense(cls) -> "ReplicationSweepParams":
        return cls(
            factors=(1, 2, 3, 4),
            update_ratios=(0.0, 0.1, 0.2, 0.4, 0.6),
            n_clients=20,
            tx_per_client=5,
            ops_per_tx=5,
        )

    @classmethod
    def from_env(cls) -> "ReplicationSweepParams":
        """``REPRO_FULL=1`` selects the denser sweep."""
        return cls.dense() if os.environ.get("REPRO_FULL") == "1" else cls()


@dataclass
class ReplicationSweepResult:
    params: ReplicationSweepParams = field(default_factory=ReplicationSweepParams)
    # (factor, update_ratio) -> dict of metrics
    cells: dict = field(default_factory=dict)

    def metric(self, factor: int, update_ratio: float, name: str):
        return self.cells[(factor, update_ratio)][name]

    def render(self, metric: str = "tx_per_s", fmt: str = "{:8.2f}") -> str:
        header = f"replication sweep — {metric} (read policy: {self.params.read_policy})"
        lines = [header, "factor \\ update%  " + "  ".join(
            f"{int(u * 100):>8d}" for u in self.params.update_ratios
        )]
        for factor in self.params.factors:
            row = [f"{factor:>6d}          "]
            for u in self.params.update_ratios:
                row.append(fmt.format(self.cells[(factor, u)][metric]))
            lines.append("  ".join(row))
        return "\n".join(lines)


def replication_sweep(
    params: ReplicationSweepParams | None = None,
) -> ReplicationSweepResult:
    """Run the factor x update-ratio grid; one cell per configuration."""
    params = params or ReplicationSweepParams.from_env()
    out = ReplicationSweepResult(params=params)
    for factor in params.factors:
        system = SystemConfig().with_(
            client_think_ms=1.0,
            replication_factor=factor,
            replica_read_policy=params.read_policy,
            replica_write_policy="primary" if factor > 1 else "all",
            **({"seed": params.seed} if params.seed is not None else {}),
        )
        for update_ratio in params.update_ratios:
            cfg = ExperimentConfig(
                protocol=params.protocol,
                n_sites=params.n_sites,
                replication="partial",
                db_bytes=params.db_bytes,
                workload=WorkloadSpec(
                    n_clients=params.n_clients,
                    tx_per_client=params.tx_per_client,
                    ops_per_tx=params.ops_per_tx,
                    update_tx_ratio=update_ratio,
                ),
                system=system,
                label=f"replication/f{factor}/u{update_ratio}",
            )
            result = run_experiment(cfg)
            duration_s = max(result.duration_ms, 1e-9) / 1000.0
            out.cells[(factor, update_ratio)] = {
                "response_ms": result.mean_response_ms(),
                "committed": len(result.committed),
                "aborted": len(result.aborted),
                "tx_per_s": len(result.committed) / duration_s,
                "messages": result.network_messages,
                "bytes": result.network_bytes,
                "deadlocks": result.total_deadlocks,
            }
    return out


def check_replication_sweep(result: ReplicationSweepResult) -> list[str]:
    """Shape checks: replication must help pure reads, not corrupt anything."""
    notes: list[str] = []
    params = result.params
    lo, hi = min(params.factors), max(params.factors)
    if 0.0 in params.update_ratios and lo == 1 and hi > 1:
        base = result.metric(lo, 0.0, "response_ms")
        repl = result.metric(hi, 0.0, "response_ms")
        assert repl <= base * 1.05, (
            f"read-only response time worsened under replication: "
            f"factor {lo} -> {base:.2f} ms, factor {hi} -> {repl:.2f} ms"
        )
        notes.append(
            f"read-only mean response: {base:.2f} ms (factor {lo}) -> "
            f"{repl:.2f} ms (factor {hi})"
        )
    for key, cell in result.cells.items():
        expected = params.n_clients * params.tx_per_client
        assert cell["committed"] + cell["aborted"] <= expected
    notes.append(f"{len(result.cells)} cells, all transaction counts consistent")
    return notes
