"""The lock table: who holds which mode on which structure node.

Generic over the mode vocabulary (a :class:`CompatibilityMatrix` decides
conflicts) and over the key space, so the same table serves XDGL, Node2PL and
DocLock2PL. Transactions are identified by any hashable id.

The table counts every check/insert/release in ``lock_ops`` — the paper's
"lock management overhead" — which the simulation converts to CPU time.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..errors import LockError
from .modes import CompatibilityMatrix
from .requests import LockKey


class LockTable:
    def __init__(self, matrix: CompatibilityMatrix):
        self.matrix = matrix
        # key -> tx -> set of modes held
        self._held: dict[LockKey, dict[Hashable, set]] = {}
        # tx -> key -> set of modes held (release index)
        self._by_tx: dict[Hashable, dict[LockKey, set]] = {}
        self.lock_ops = 0

    # -- acquisition ------------------------------------------------------

    def try_acquire(self, key: LockKey, tx: Hashable, mode) -> tuple[set, bool]:
        """Attempt to take ``mode`` on ``key`` for ``tx``.

        Returns ``(conflicts, is_new)``: ``conflicts`` is the set of *other*
        transactions holding an incompatible mode (empty means granted);
        ``is_new`` is True when the grant added a (key, mode) pair ``tx`` did
        not already hold (callers track new pairs to back out one operation).
        """
        self.lock_ops += 1
        if not isinstance(mode, self.matrix.modes):
            raise LockError(
                f"{self.matrix.name} table cannot hold {mode!r} "
                f"(expected a {self.matrix.modes.__name__})"
            )
        holders = self._held.get(key)
        if holders:
            conflicts = {
                other
                for other, modes in holders.items()
                if other != tx and not self.matrix.compatible_with_all(modes, mode)
            }
            if conflicts:
                return conflicts, False
        own = self._by_tx.setdefault(tx, {}).setdefault(key, set())
        if mode in own:
            return set(), False
        own.add(mode)
        self._held.setdefault(key, {}).setdefault(tx, set()).add(mode)
        return set(), True

    # -- release -----------------------------------------------------------

    def release_one(self, key: LockKey, tx: Hashable, mode) -> None:
        """Release a single (key, mode) pair (used to back out an operation)."""
        self.lock_ops += 1
        try:
            self._by_tx[tx][key].remove(mode)
            self._held[key][tx].remove(mode)
        except KeyError:
            raise LockError(f"{tx} does not hold {mode!r} on {key!r}") from None
        if not self._by_tx[tx][key]:
            del self._by_tx[tx][key]
            del self._held[key][tx]
            if not self._by_tx[tx]:
                del self._by_tx[tx]
            if not self._held[key]:
                del self._held[key]

    def release_transaction(self, tx: Hashable) -> list[LockKey]:
        """Release everything ``tx`` holds (strict 2PL: at commit/abort only)."""
        keys = list(self._by_tx.get(tx, ()))
        self.lock_ops += max(1, len(keys))
        for key in keys:
            holders = self._held[key]
            del holders[tx]
            if not holders:
                del self._held[key]
        self._by_tx.pop(tx, None)
        return keys

    # -- inspection ----------------------------------------------------------

    def holders(self, key: LockKey) -> dict[Hashable, frozenset]:
        return {tx: frozenset(modes) for tx, modes in self._held.get(key, {}).items()}

    def held_by(self, tx: Hashable) -> dict[LockKey, frozenset]:
        return {key: frozenset(modes) for key, modes in self._by_tx.get(tx, {}).items()}

    def transactions(self) -> set:
        return set(self._by_tx)

    def lock_count(self) -> int:
        """Total number of (key, tx, mode) grants currently held."""
        return sum(
            len(modes) for holders in self._held.values() for modes in holders.values()
        )

    def is_empty(self) -> bool:
        return not self._held

    def check_consistency(self) -> None:
        """Assert the two indexes mirror each other (used by tests)."""
        forward = {
            (key, tx, mode)
            for key, holders in self._held.items()
            for tx, modes in holders.items()
            for mode in modes
        }
        backward = {
            (key, tx, mode)
            for tx, keys in self._by_tx.items()
            for key, modes in keys.items()
            for mode in modes
        }
        if forward != backward:
            raise LockError("lock table indexes diverged")
