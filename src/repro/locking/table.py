"""The lock table: who holds which mode on which structure node.

Generic over the mode vocabulary (a :class:`CompatibilityMatrix` decides
conflicts) and over the key space, so the same table serves XDGL, Node2PL and
DocLock2PL. Transactions are identified by any hashable id.

The table counts every check/insert/release in ``lock_ops`` — the paper's
"lock management overhead" — which the simulation converts to CPU time.

Hot-path layout: the two indexes share one mode-set object per (key, tx)
pair, the conflict test uses the matrix's precomputed ``conflicts_with``
frozensets (one C-level ``isdisjoint`` per holder), and a live grant counter
makes :meth:`lock_count` O(1) — it is read once per executed operation for
the peak-lock-count statistic.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..errors import LockError
from .modes import CompatibilityMatrix
from .requests import LockKey

#: Shared empty result for the granted paths of :meth:`LockTable.try_acquire`
#: (callers only read it; compares equal to ``set()``).
_NO_CONFLICTS: frozenset = frozenset()


class LockTable:
    def __init__(self, matrix: CompatibilityMatrix):
        self.matrix = matrix
        # key -> tx -> set of modes held
        self._held: dict[LockKey, dict[Hashable, set]] = {}
        # tx -> key -> set of modes held (release index). The per-(key, tx)
        # mode set is the *same object* in both indexes.
        self._by_tx: dict[Hashable, dict[LockKey, set]] = {}
        self.lock_ops = 0
        self._grants = 0  # live (key, tx, mode) grant count
        self._conflicts_with = matrix.conflicts_with
        self._modes_cls = matrix.modes

    # -- acquisition ------------------------------------------------------

    def try_acquire(self, key: LockKey, tx: Hashable, mode) -> tuple[set, bool]:
        """Attempt to take ``mode`` on ``key`` for ``tx``.

        Returns ``(conflicts, is_new)``: ``conflicts`` is the set of *other*
        transactions holding an incompatible mode (empty means granted);
        ``is_new`` is True when the grant added a (key, mode) pair ``tx`` did
        not already hold (callers track new pairs to back out one operation).
        """
        self.lock_ops += 1
        if not isinstance(mode, self._modes_cls):
            raise LockError(
                f"{self.matrix.name} table cannot hold {mode!r} "
                f"(expected a {self._modes_cls.__name__})"
            )
        holders = self._held.get(key)
        if holders:
            bad = self._conflicts_with[mode]
            conflicts = {
                other
                for other, modes in holders.items()
                if other != tx and not bad.isdisjoint(modes)
            }
            if conflicts:
                return conflicts, False
        by_tx = self._by_tx
        keys = by_tx.get(tx)
        if keys is None:
            keys = by_tx[tx] = {}
        own = keys.get(key)
        if own is None:
            if holders is None:
                holders = self._held[key] = {}
            own = keys[key] = holders[tx] = set()
        elif mode in own:
            return _NO_CONFLICTS, False
        own.add(mode)
        self._grants += 1
        return _NO_CONFLICTS, True

    # -- release -----------------------------------------------------------

    def release_one(self, key: LockKey, tx: Hashable, mode) -> None:
        """Release a single (key, mode) pair (used to back out an operation)."""
        self.lock_ops += 1
        try:
            own = self._by_tx[tx][key]
            own.remove(mode)
        except KeyError:
            raise LockError(f"{tx} does not hold {mode!r} on {key!r}") from None
        self._grants -= 1
        if not own:
            del self._by_tx[tx][key]
            del self._held[key][tx]
            if not self._by_tx[tx]:
                del self._by_tx[tx]
            if not self._held[key]:
                del self._held[key]

    def release_transaction(self, tx: Hashable) -> list[LockKey]:
        """Release everything ``tx`` holds (strict 2PL: at commit/abort only)."""
        held = self._by_tx.pop(tx, None)
        if held is None:
            self.lock_ops += 1
            return []
        keys = list(held)
        self.lock_ops += max(1, len(keys))
        _held = self._held
        released = 0
        for key, modes in held.items():
            released += len(modes)
            holders = _held[key]
            del holders[tx]
            if not holders:
                del _held[key]
        self._grants -= released
        return keys

    # -- inspection ----------------------------------------------------------

    def holders(self, key: LockKey) -> dict[Hashable, frozenset]:
        return {tx: frozenset(modes) for tx, modes in self._held.get(key, {}).items()}

    def held_by(self, tx: Hashable) -> dict[LockKey, frozenset]:
        return {key: frozenset(modes) for key, modes in self._by_tx.get(tx, {}).items()}

    def transactions(self) -> set:
        return set(self._by_tx)

    def lock_count(self) -> int:
        """Total number of (key, tx, mode) grants currently held."""
        return self._grants

    def is_empty(self) -> bool:
        return not self._held

    def check_consistency(self) -> None:
        """Assert the two indexes mirror each other (used by tests)."""
        forward = {
            (key, tx, mode)
            for key, holders in self._held.items()
            for tx, modes in holders.items()
            for mode in modes
        }
        backward = {
            (key, tx, mode)
            for tx, keys in self._by_tx.items()
            for key, modes in keys.items()
            for mode in modes
        }
        if forward != backward:
            raise LockError("lock table indexes diverged")
        if len(forward) != self._grants:
            raise LockError(
                f"grant counter diverged: {self._grants} != {len(forward)}"
            )
