"""Locking subsystem: modes, compatibility, lock table, lock manager."""

from .manager import AcquireOutcome, LockManager
from .modes import (
    DOC_MATRIX,
    TREE_MATRIX,
    XDGL_MATRIX,
    XDGL_EXCLUSIVE_MODES,
    XDGL_SHARED_MODES,
    CompatibilityMatrix,
    DocLockMode,
    LockMode,
    TreeLockMode,
)
from .requests import LockKey, LockRequest, LockSpec
from .table import LockTable

__all__ = [
    "AcquireOutcome",
    "CompatibilityMatrix",
    "DOC_MATRIX",
    "DocLockMode",
    "LockKey",
    "LockManager",
    "LockMode",
    "LockRequest",
    "LockSpec",
    "LockTable",
    "TREE_MATRIX",
    "TreeLockMode",
    "XDGL_EXCLUSIVE_MODES",
    "XDGL_MATRIX",
    "XDGL_SHARED_MODES",
]
