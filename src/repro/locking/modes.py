"""Lock modes and compatibility matrices.

Three protocols, three mode vocabularies:

* **XDGL** (paper §2): eight modes over DataGuide nodes — IS, IX (intention
  shared/exclusive, taken on ancestors), SI/SA/SB (shared insertion locks:
  *into*, *after*, *before*), ST (shared tree), X (exclusive node) and XT
  (exclusive tree).
* **Node2PL** tree locking over document nodes: classic hierarchical
  IS/IX/S/X.
* **DocLock2PL**: whole-document S/X.

The XDGL matrix is reconstructed from the constraints stated in the paper
(see DESIGN.md): ST protects a subtree from updates, so it conflicts with
IX/X/XT (the §2.4 deadlock is IX-requested-under-ST, twice, crosswise); XT
blocks readers and writers alike; SI/SA/SB are shared and conflict only with
X/XT and with a same-positioned insertion (SA–SA, SB–SB).
"""

from __future__ import annotations

from enum import Enum
from itertools import combinations_with_replacement
from typing import Iterable

from ..errors import LockError


class LockMode(str, Enum):
    """XDGL lock modes (DataGuide granularity)."""

    IS = "IS"  # intention shared: on ancestors of share-locked nodes
    IX = "IX"  # intention exclusive: on ancestors of exclusive-locked nodes
    SI = "SI"  # shared-into: on the node an insertion connects to
    SA = "SA"  # shared-after: on the reference sibling of an AFTER insert
    SB = "SB"  # shared-before: on the reference sibling of a BEFORE insert
    ST = "ST"  # shared tree: protects a DataGuide subtree from updates
    X = "X"  # exclusive: the single node being modified
    XT = "XT"  # exclusive tree: blocks reads and updates of a subtree


class TreeLockMode(str, Enum):
    """Node2PL lock modes (document-node granularity)."""

    IS = "IS"
    IX = "IX"
    S = "S"
    X = "X"


class DocLockMode(str, Enum):
    """Whole-document lock modes (the traditional baseline)."""

    S = "S"
    X = "X"


class CompatibilityMatrix:
    """Symmetric lock-compatibility relation over one mode vocabulary."""

    def __init__(self, name: str, modes: type[Enum], incompatible: Iterable[tuple]):
        self.name = name
        self.modes = modes
        self._incompatible: frozenset[frozenset] = frozenset(
            frozenset((a, b)) for a, b in incompatible
        )
        valid = set(modes)
        for pair in self._incompatible:
            for m in pair:
                if m not in valid:
                    raise LockError(f"{name}: unknown mode {m!r} in matrix")
        # requested mode -> frozenset of held modes it conflicts with. The
        # lock table's per-request conflict test becomes one C-level set
        # intersection instead of a frozenset allocation per held pair.
        self.conflicts_with: dict = {
            req: frozenset(
                held for held in modes if frozenset((held, req)) in self._incompatible
            )
            for req in modes
        }

    def compatible(self, held, requested) -> bool:
        """True when ``requested`` can be granted alongside ``held``."""
        return held not in self.conflicts_with[requested]

    def compatible_with_all(self, held_modes: Iterable, requested) -> bool:
        return self.conflicts_with[requested].isdisjoint(held_modes)

    def pairs(self) -> list[tuple]:
        """Every unordered mode pair with its compatibility (for reporting)."""
        out = []
        for a, b in combinations_with_replacement(list(self.modes), 2):
            out.append((a, b, self.compatible(a, b)))
        return out

    def render(self) -> str:
        """ASCII rendering of the matrix (documentation/examples)."""
        modes = list(self.modes)
        width = max(len(m.value) for m in modes) + 1
        header = " " * width + "".join(m.value.ljust(width) for m in modes)
        rows = [header]
        for held in modes:
            cells = "".join(
                ("+" if self.compatible(held, req) else "-").ljust(width) for req in modes
            )
            rows.append(held.value.ljust(width) + cells)
        return "\n".join(rows)


def _xdgl_incompatible() -> list[tuple[LockMode, LockMode]]:
    pairs: list[tuple[LockMode, LockMode]] = []
    for m in LockMode:
        pairs.append((LockMode.X, m))  # X conflicts with everything
        pairs.append((LockMode.XT, m))  # XT conflicts with everything
    pairs.append((LockMode.IX, LockMode.ST))  # updates under a read-protected tree
    pairs.append((LockMode.SA, LockMode.SA))  # two inserts after the same node
    pairs.append((LockMode.SB, LockMode.SB))  # two inserts before the same node
    return pairs


XDGL_MATRIX = CompatibilityMatrix("XDGL", LockMode, _xdgl_incompatible())

TREE_MATRIX = CompatibilityMatrix(
    "Node2PL",
    TreeLockMode,
    [
        (TreeLockMode.X, TreeLockMode.X),
        (TreeLockMode.X, TreeLockMode.S),
        (TreeLockMode.X, TreeLockMode.IS),
        (TreeLockMode.X, TreeLockMode.IX),
        (TreeLockMode.S, TreeLockMode.IX),
    ],
)

DOC_MATRIX = CompatibilityMatrix(
    "DocLock2PL",
    DocLockMode,
    [
        (DocLockMode.X, DocLockMode.X),
        (DocLockMode.X, DocLockMode.S),
    ],
)

#: Shared (read-side) XDGL modes — used in tests and sanity checks.
XDGL_SHARED_MODES = frozenset(
    {LockMode.IS, LockMode.SI, LockMode.SA, LockMode.SB, LockMode.ST}
)
#: Exclusive (write-side) XDGL modes.
XDGL_EXCLUSIVE_MODES = frozenset({LockMode.X, LockMode.XT})
