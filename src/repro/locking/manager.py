"""The LockManager: Algorithm 3 of the paper.

``process_operation`` walks the operation's lock spec; at each structure node
it tries to obtain the lock. On the first conflict it (i) adds wait-for edges
from the requesting transaction to every conflicting holder, (ii) checks
whether the new edges closed a cycle (an immediate local deadlock), (iii)
backs out the locks this operation had just taken — "the modifications made
by the operation in the DataGuide and the lock manager are undone" — and
reports failure. Only a fully granted spec lets the operation execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from ..deadlock.wfg import WaitForGraph
from .requests import LockSpec
from .table import LockTable


@dataclass
class AcquireOutcome:
    """Result of one ``process_operation`` attempt."""

    granted: bool
    conflicts: set = field(default_factory=set)
    deadlock: bool = False
    cycle: Optional[list] = None
    lock_ops: int = 0  # table operations performed (cost model input)
    new_pairs: list = field(default_factory=list)  # (key, mode) newly granted
    # On failure: every (key, mode) the blocked spec requested. A targeted
    # wake policy wakes the waiter only when a release could actually have
    # unblocked it — some released (key, modes) is incompatible with a
    # requested pair. Recording the full requested set (not just the first
    # conflicting key) keeps the policy conservative: any released
    # conflicting key may change what the retry can acquire.
    blocked_pairs: frozenset = frozenset()


class LockManager:
    """Per-site lock manager: one lock table + the site's wait-for graph."""

    def __init__(self, table: LockTable, wfg: WaitForGraph):
        self.table = table
        self.wfg = wfg

    def process_operation(self, tx: Hashable, spec: LockSpec) -> AcquireOutcome:
        """Try to take every lock in ``spec`` for ``tx`` (Algorithm 3)."""
        spec = spec.deduplicated()
        ops_before = self.table.lock_ops
        new_pairs: list = []
        for req in spec:
            conflicts, is_new = self.table.try_acquire(req.key, tx, req.mode)
            if conflicts:
                # Back out this operation's partial grants (Alg. 3 l. 12).
                for key, mode in reversed(new_pairs):
                    self.table.release_one(key, tx, mode)
                for other in conflicts:
                    self.wfg.add_edge(tx, other)
                cycle = self.wfg.find_cycle_from(tx)
                return AcquireOutcome(
                    granted=False,
                    conflicts=conflicts,
                    deadlock=cycle is not None,
                    cycle=cycle,
                    lock_ops=self.table.lock_ops - ops_before,
                    blocked_pairs=frozenset((r.key, r.mode) for r in spec),
                )
            if is_new:
                new_pairs.append((req.key, req.mode))
        # All granted: the transaction no longer waits on anyone.
        self.wfg.clear_waits(tx)
        return AcquireOutcome(
            granted=True,
            lock_ops=self.table.lock_ops - ops_before,
            new_pairs=new_pairs,
        )

    def release_transaction(self, tx: Hashable) -> tuple[dict, int]:
        """Release all of ``tx``'s locks and drop it from the wait-for graph.

        Returns the released locks as ``{key: frozenset(modes)}`` (the
        targeted wake policy tests waiters' requested pairs against them)
        and the number of table operations (for cost accounting). Called on
        commit and on abort — strict 2PL holds every lock until
        transaction end.
        """
        ops_before = self.table.lock_ops
        released = self.table.held_by(tx)
        self.table.release_transaction(tx)
        self.wfg.remove_node(tx)
        return released, self.table.lock_ops - ops_before

    def held_by(self, tx: Hashable) -> dict:
        return self.table.held_by(tx)
