"""Lock request/specification value objects shared by protocols and managers.

A :class:`LockSpec` is the full set of locks one operation needs, computed by
a concurrency protocol *before* any lock is taken (so a failed acquisition
can back out cleanly, per Algorithm 3). ``nodes_visited`` meters how many
structure nodes the protocol examined to compute the spec — the simulation
charges CPU time for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

#: A lock key identifies one lockable structure node. Protocols choose the
#: key space: XDGL uses ``(doc_name, label_path)``, Node2PL uses
#: ``(doc_name, node_id)``, DocLock2PL uses ``(doc_name,)``.
LockKey = Hashable


@dataclass(frozen=True, slots=True)
class LockRequest:
    key: LockKey
    mode: object  # a member of the protocol's mode enum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LockRequest({self.key!r}, {getattr(self.mode, 'value', self.mode)})"


@dataclass
class LockSpec:
    """All locks one operation must hold, in acquisition order.

    ``transient_ops`` counts short-lived lock-manager operations (e.g. the
    navigation locks a DOM protocol acquires and releases *within* one
    operation under read-committed): they are charged as lock-management
    work by the cost model but are not retained, so they never block.
    """

    requests: list[LockRequest] = field(default_factory=list)
    nodes_visited: int = 0
    transient_ops: int = 0
    # Memoized deduplicated() result — specs are computed once and then
    # replayed on every retry of a blocked operation (and served from the
    # spec cache), so the dedup pass runs many times per spec. Invalidated
    # by add(); mutating ``requests`` directly after the first
    # deduplicated() call is unsupported.
    _dedup: "LockSpec | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def add(self, key: LockKey, mode) -> None:
        self.requests.append(LockRequest(key, mode))
        self._dedup = None

    def deduplicated(self) -> "LockSpec":
        """Drop repeated (key, mode) pairs, keeping first-occurrence order."""
        memo = self._dedup
        if memo is not None:
            return memo
        seen: set[tuple] = set()
        out: list[LockRequest] = []
        for req in self.requests:
            marker = (req.key, req.mode)
            if marker not in seen:
                seen.add(marker)
                out.append(req)
        memo = LockSpec(
            requests=out,
            nodes_visited=self.nodes_visited,
            transient_ops=self.transient_ops,
        )
        memo._dedup = memo  # a deduplicated spec is its own fixed point
        self._dedup = memo
        return memo

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)
