"""Materialized XPath views: asynchronous read replicas for query traffic.

A :class:`ViewDefinition` names an XPath pattern over one or more documents
and a hosting site. The host's :class:`ViewManager` materializes each source
document from a primary snapshot and then maintains it incrementally by
consuming committed :class:`~repro.replication.log.UpdateLogEntry` batches
pushed off the primary (``ViewDeltaBatch`` — a view host is a log subscriber
next to the secondaries, fed by the same outbox discipline as lazy
replication). A coordinator routes a read-only query to a view host when a
registered view's pattern *subsumes* the query and the view's freshness is
within the transaction's staleness bound; the served read takes no locks and
joins no 2PC round.

Correctness never depends on a view being alive: any refusal (not hydrated,
stale, epoch-fenced), timeout or host crash falls back to the normal locked
read path at the coordinator. The maintained state is a full shadow of each
source document, kept exact by replaying the committed log in LSN order —
so a view serve observes precisely the primary's committed state at some
LSN prefix, never a torn or fenced intermediate. (Pruning the shadow to the
pattern's fragment would need inverse-path analysis of the XDGL update
language; the routing/maintenance machinery here is agnostic to it.)

Epoch fencing mirrors ``_ingest_sync_entry``: deltas stamped with an older
epoch than the view's are dropped; a *newer* epoch invalidates the shadow
(the materialized suffix may have been fenced away by failover) and forces
re-hydration from the new primary.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Hashable, Sequence

from .errors import ConfigError, UpdateError
from .update.applier import apply_update
from .xml.parser import parse_document
from .xml.serializer import serialize_document
from .xpath.ast import Axis, LocationPath, NodeTest, NodeTestKind, Step
from .xpath.evaluator import EvalStats, evaluate
from .xpath.parser import parse_xpath


# ----------------------------------------------------------------------
# pattern subsumption
# ----------------------------------------------------------------------

def _test_subsumes(vt: NodeTest, qt: NodeTest) -> bool:
    if vt.kind is not qt.kind:
        return False
    if vt.kind is NodeTestKind.NAME and vt.name == "*":
        return True
    return vt.name == qt.name


def _step_subsumes(v: Step, q: Step) -> bool:
    """One view step covers one query step: test covers, predicates weaker.

    A view step with *fewer* predicates selects a superset; predicate sets
    compare by their canonical string form (the AST round-trips through
    ``__str__``), so ``[id=4]`` matches ``[id=4]`` regardless of object
    identity.
    """
    if not _test_subsumes(v.test, q.test):
        return False
    vpreds = {str(p) for p in v.predicates}
    qpreds = {str(p) for p in q.predicates}
    return vpreds <= qpreds


def _covers(vsteps: tuple, qsteps: tuple) -> bool:
    if not vsteps:
        return not qsteps
    if not qsteps:
        return False
    v = vsteps[0]
    if v.axis is Axis.DESCENDANT:
        # A descendant step may absorb any prefix of the query path.
        return any(
            _step_subsumes(v, qsteps[i]) and _covers(vsteps[1:], qsteps[i + 1:])
            for i in range(len(qsteps))
        )
    q = qsteps[0]
    if q.axis is Axis.DESCENDANT:
        # The query reaches arbitrary depth; a child step fixes one level.
        return False
    return _step_subsumes(v, q) and _covers(vsteps[1:], qsteps[1:])


def subsumes(view_path: LocationPath, query_path: LocationPath) -> bool:
    """True when every node the query can select matches the view pattern.

    Conservative by construction: only absolute paths over the child /
    descendant axes with name, wildcard, attribute and text() tests are
    reasoned about, and any uncertainty answers False (the read then takes
    the locked path — subsumption gates *routing*, never correctness).
    """
    if not (view_path.absolute and query_path.absolute):
        return False
    return _covers(tuple(view_path.steps), tuple(query_path.steps))


# ----------------------------------------------------------------------
# view definitions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ViewDefinition:
    """An XPath pattern over ``doc_names``, materialized at ``host``."""

    name: str
    pattern: str
    doc_names: tuple
    host: Hashable
    path: LocationPath

    @classmethod
    def define(
        cls,
        name: str,
        pattern: str,
        doc_names: Sequence[str],
        host: Hashable,
    ) -> "ViewDefinition":
        path = parse_xpath(pattern)
        if not path.absolute:
            raise ConfigError(f"view pattern must be absolute: {pattern!r}")
        names = tuple(doc_names)
        if not names:
            raise ConfigError(f"view {name!r} needs at least one document")
        return cls(name=name, pattern=pattern, doc_names=names, host=host, path=path)

    def covers(self, doc_name: str, query_path: LocationPath) -> bool:
        return doc_name in self.doc_names and subsumes(self.path, query_path)


# ----------------------------------------------------------------------
# per-host maintenance
# ----------------------------------------------------------------------

class _ViewState:
    """Shadow of one source document at a view host (volatile)."""

    __slots__ = ("doc", "applied_lsn", "epoch", "synced_at", "pending", "fetching")

    def __init__(self) -> None:
        self.doc = None  # materialized Document; None until hydrated
        self.applied_lsn = 0
        self.epoch = 0
        self.synced_at = -1.0  # sim-time the shadow last provably matched
        #                        the primary's watermark; -1 = never
        self.pending: dict[int, object] = {}  # out-of-order delta buffer
        self.fetching = False  # one snapshot fetch in flight at a time

    def invalidate(self) -> None:
        self.doc = None
        self.synced_at = -1.0
        self.pending.clear()


class ViewManager:
    """Maintains and serves the view shadows hosted at one site.

    Built lazily by :attr:`DTXSite.views` — a site that hosts no view never
    constructs one, so default schedules are untouched.
    """

    def __init__(self, site) -> None:
        self.site = site
        self.states: dict[str, _ViewState] = {}
        self.trace = None  # tests set a list to record every serve

    def add_doc(self, doc_name: str) -> _ViewState:
        return self.states.setdefault(doc_name, _ViewState())

    def wipe(self) -> None:
        """Crash: the shadows are volatile, recovery re-hydrates."""
        for state in self.states.values():
            state.invalidate()
            state.applied_lsn = 0
            state.epoch = 0
            state.fetching = False

    # -- maintenance -------------------------------------------------------

    def install_snapshot(
        self, doc_name: str, snapshot: str, lsn: int, epoch: int
    ) -> float:
        """(Re)materialize one shadow from a primary snapshot; returns cost."""
        state = self.add_doc(doc_name)
        state.doc = parse_document(snapshot, name=doc_name)
        state.applied_lsn = lsn
        state.epoch = epoch
        state.pending = {
            n: e for n, e in state.pending.items() if n > lsn and e.epoch >= epoch
        }
        state.synced_at = self.site.env.now
        self.site.stats.view_hydrations += 1
        return (len(snapshot) / 1024.0) * self.site.costs.parse_per_kb_ms

    def ingest_delta(self, msg) -> tuple[float, bool]:
        """Apply one ``ViewDeltaBatch``; returns ``(cost_ms, need_hydrate)``.

        Idempotent and epoch-fenced like ``_ingest_sync_entry``: duplicate
        LSNs are no-ops, older-epoch batches are dropped, a newer epoch
        invalidates the shadow (re-hydrate), and a watermark the contiguous
        prefix cannot reach signals a lost batch or failover gap that only
        a fresh snapshot can close.
        """
        state = self.states.get(msg.doc_name)
        if state is None:
            return 0.0, False
        stats = self.site.stats
        if msg.epoch < state.epoch:
            stats.view_fenced_deltas += 1
            return 0.0, False
        if state.doc is None:
            return 0.0, True  # awaiting first hydration (or post-crash)
        if msg.epoch > state.epoch:
            state.invalidate()
            return 0.0, True
        for entry in msg.entries:
            if entry.lsn <= state.applied_lsn or entry.lsn in state.pending:
                continue
            state.pending[entry.lsn] = entry
        cost = 0.0
        applied = 0
        while state.doc is not None and state.applied_lsn + 1 in state.pending:
            entry = state.pending.pop(state.applied_lsn + 1)
            cost += self._apply_entry(state, entry)
            if state.doc is None:
                break
            state.applied_lsn = entry.lsn
            applied += 1
        stats.view_deltas_applied += applied
        if state.doc is None:
            return cost, True
        if state.applied_lsn >= msg.watermark:
            state.synced_at = self.site.env.now
            return cost, False
        return cost, True

    def _apply_entry(self, state: _ViewState, entry) -> float:
        cost = 0.0
        for op in entry.ops:
            eval_stats = EvalStats()
            try:
                changes = apply_update(op.payload, state.doc, None, eval_stats)
            except UpdateError:
                # The shadow diverged (lost the replay invariant): drop it
                # and re-hydrate rather than ever serving a wrong answer.
                state.invalidate()
                return cost
            cost += (
                eval_stats.nodes_visited * self.site.costs.node_visit_ms
                + max(1, len(changes)) * self.site.costs.update_apply_ms
            )
        return cost

    # -- serving -----------------------------------------------------------

    def serve(
        self, op, epoch: int, bound_ms: float
    ) -> tuple[bool, str, int, float, int, float]:
        """Answer one routed read-only query — no locks, no 2PC.

        Returns ``(ok, reason, result_size, staleness_ms, lsn, cost_ms)``.
        Refuses (coordinator falls back to the locked path) when the shadow
        is not hydrated, its epoch differs from the coordinator's view, or
        its freshness exceeds ``bound_ms``.
        """
        site = self.site
        stats = site.stats
        state = self.states.get(op.doc_name)
        if state is None or state.doc is None or state.synced_at < 0.0:
            return False, "no-view", 0, 0.0, 0, 0.0
        if state.epoch != epoch:
            stats.view_epoch_refusals += 1
            return False, "epoch-fenced", 0, 0.0, 0, 0.0
        staleness = site.env.now - state.synced_at
        if staleness > bound_ms:
            stats.view_stale_refusals += 1
            return False, "stale", 0, staleness, 0, 0.0
        eval_stats = EvalStats()
        result = evaluate(op.payload, state.doc, eval_stats)
        cost = eval_stats.nodes_visited * site.costs.node_visit_ms
        stats.view_reads_served += 1
        stats.view_staleness_sum_ms += staleness
        if self.trace is not None:
            digest = hashlib.sha256(
                serialize_document(state.doc).encode()
            ).hexdigest()
            self.trace.append(
                {
                    "doc": op.doc_name,
                    "lsn": state.applied_lsn,
                    "epoch": state.epoch,
                    "staleness_ms": staleness,
                    "digest": digest,
                    "at_ms": site.env.now,
                }
            )
        return True, "", 96 * len(result), staleness, state.applied_lsn, cost
