"""Serialization of :mod:`repro.xml.model` trees back to XML text."""

from __future__ import annotations

from .model import Document, Element


def _escape_text(s: str) -> str:
    return s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attr(s: str) -> str:
    return _escape_text(s).replace('"', "&quot;")


def _serialize_compact(root: Element) -> str:
    """Compact serialization with an explicit stack.

    This is the state-digest hot path (every probe digests serialized
    documents), so it avoids both recursion and the per-node tuple copy the
    public ``children`` property makes. Items on the stack are either
    elements still to open or close-tag strings already rendered.
    """
    out: list[str] = []
    append = out.append
    stack: list = [root]
    pop = stack.pop
    while stack:
        node = pop()
        if node.__class__ is str:
            append(node)
            continue
        attrib = node.attrib
        if attrib:
            attrs = "".join(f' {k}="{_escape_attr(v)}"' for k, v in attrib.items())
        else:
            attrs = ""
        children = node._children
        text = node.text
        if not children and text is None:
            append(f"<{node.tag}{attrs}/>")
            continue
        append(f"<{node.tag}{attrs}>")
        if text is not None:
            append(_escape_text(text))
        stack.append(f"</{node.tag}>")
        for i in range(len(children) - 1, -1, -1):
            stack.append(children[i])
    return "".join(out)


def serialize_element(elem: Element, indent: int | None = None, _depth: int = 0) -> str:
    """Serialize one element (and subtree).

    ``indent=None`` produces compact one-line output; an integer produces
    pretty-printed output with that many spaces per level. Pretty printing
    only reflows structure (never text content), so compact and pretty forms
    parse back to identical trees.
    """
    if indent is None:
        return _serialize_compact(elem)
    pad = " " * (indent * _depth)
    attrs = "".join(f' {k}="{_escape_attr(v)}"' for k, v in elem.attrib.items())
    open_tag = f"{pad}<{elem.tag}{attrs}"
    if not elem.children and elem.text is None:
        return open_tag + "/>"
    parts = [open_tag + ">"]
    if elem.text is not None:
        parts.append(_escape_text(elem.text))
    if elem.children:
        child_parts = [serialize_element(c, indent, _depth + 1) for c in elem.children]
        parts.append("\n" + "\n".join(child_parts) + "\n" + pad)
        parts.append(f"</{elem.tag}>")
    else:
        parts.append(f"</{elem.tag}>")
    return "".join(parts)


def serialize_document(doc: Document, indent: int | None = None, declaration: bool = False) -> str:
    """Serialize a whole document; optionally prepend an XML declaration."""
    if doc.root is None:
        raise ValueError(f"document {doc.name!r} has no root")
    body = serialize_element(doc.root, indent)
    if declaration:
        return '<?xml version="1.0" encoding="UTF-8"?>\n' + body
    return body
