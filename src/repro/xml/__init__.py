"""XML substrate: tree model, parser, serializer, builder.

This package is the storage-independent in-memory representation DTX works
on (paper §2: "XML data handling is conducted in the main memory").
"""

from .builder import E, doc
from .model import Document, Element
from .parser import parse_document, parse_fragment
from .serializer import serialize_document, serialize_element

__all__ = [
    "Document",
    "Element",
    "E",
    "doc",
    "parse_document",
    "parse_fragment",
    "serialize_document",
    "serialize_element",
]
