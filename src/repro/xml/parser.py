"""A small, dependency-free XML parser.

Parses the subset of XML needed for XML data management workloads: elements,
attributes, character data with entity references, CDATA sections, comments,
processing instructions and a DOCTYPE prolog (skipped). Namespaces are kept
verbatim in tags (``ns:tag`` is just a name).

The parser is a single forward scan with precise line/column error reporting;
it builds :class:`repro.xml.model.Document` trees directly.
"""

from __future__ import annotations

from typing import Optional

from ..errors import XMLParseError
from .model import Document, Element

_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}


class _Scanner:
    """Cursor over the input with line/column tracking."""

    __slots__ = ("data", "pos", "n")

    def __init__(self, data: str):
        self.data = data
        self.pos = 0
        self.n = len(data)

    def eof(self) -> bool:
        return self.pos >= self.n

    def peek(self, k: int = 1) -> str:
        return self.data[self.pos : self.pos + k]

    def advance(self, k: int = 1) -> None:
        self.pos += k

    def starts_with(self, s: str) -> bool:
        return self.data.startswith(s, self.pos)

    def skip_ws(self) -> None:
        while self.pos < self.n and self.data[self.pos] in " \t\r\n":
            self.pos += 1

    def location(self, pos: Optional[int] = None) -> tuple[int, int]:
        """1-based (line, column) of ``pos`` (default: current position)."""
        p = self.pos if pos is None else pos
        line = self.data.count("\n", 0, p) + 1
        last_nl = self.data.rfind("\n", 0, p)
        col = p - last_nl
        return line, col

    def error(self, message: str) -> XMLParseError:
        line, col = self.location()
        return XMLParseError(message, position=self.pos, line=line, column=col)


def parse_document(text: str, name: str = "document", keep_whitespace: bool = False) -> Document:
    """Parse ``text`` into a :class:`Document` called ``name``.

    Whitespace-only text between elements is dropped unless
    ``keep_whitespace`` is true. Text interleaved with child elements (mixed
    content) is concatenated into the parent's single ``text`` slot, which is
    sufficient for the data-centric documents used throughout the paper.
    """
    sc = _Scanner(text)
    _skip_prolog(sc)
    sc.skip_ws()
    if sc.eof() or sc.peek() != "<":
        raise sc.error("expected root element")
    root = _parse_element(sc, keep_whitespace)
    # Trailing misc: whitespace, comments, PIs only.
    while True:
        sc.skip_ws()
        if sc.eof():
            break
        if sc.starts_with("<!--"):
            _skip_comment(sc)
        elif sc.starts_with("<?"):
            _skip_pi(sc)
        else:
            raise sc.error("content after document root")
    return Document(name, root)


def parse_fragment_prefix(text: str, start: int = 0) -> tuple[Element, int]:
    """Parse one element starting at ``text[start]``; also return the end offset.

    The update-language parser uses this to carve an XML fragment out of a
    larger statement (``INSERT <product>...</product> INTO /products``)
    without needing a fragile textual delimiter scan.
    """
    sc = _Scanner(text)
    sc.pos = start
    sc.skip_ws()
    if sc.eof() or sc.peek() != "<":
        raise sc.error("expected an XML fragment")
    elem = _parse_element(sc, keep_ws=False)
    return elem, sc.pos


def parse_fragment(text: str) -> Element:
    """Parse a standalone element (no document wrapper).

    Useful for the update language: ``INSERT <product>...</product> INTO ...``
    carries a fragment, not a document.
    """
    doc = parse_document(text, name="__fragment__")
    root = doc.root
    assert root is not None
    doc._unregister_subtree(root)
    root.parent = None
    for n in root.iter_subtree():
        n.node_id = -1
    doc.root = None
    return root


# ---------------------------------------------------------------------------


def _skip_prolog(sc: _Scanner) -> None:
    while True:
        sc.skip_ws()
        if sc.starts_with("<?"):
            _skip_pi(sc)
        elif sc.starts_with("<!--"):
            _skip_comment(sc)
        elif sc.starts_with("<!DOCTYPE"):
            _skip_doctype(sc)
        else:
            return


def _skip_pi(sc: _Scanner) -> None:
    end = sc.data.find("?>", sc.pos)
    if end < 0:
        raise sc.error("unterminated processing instruction")
    sc.pos = end + 2


def _skip_comment(sc: _Scanner) -> None:
    end = sc.data.find("-->", sc.pos + 4)
    if end < 0:
        raise sc.error("unterminated comment")
    sc.pos = end + 3


def _skip_doctype(sc: _Scanner) -> None:
    # Balance '<' and '>' to step over an internal subset if present.
    depth = 0
    while not sc.eof():
        c = sc.data[sc.pos]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                sc.advance()
                return
        sc.advance()
    raise sc.error("unterminated DOCTYPE")


def _parse_name(sc: _Scanner) -> str:
    start = sc.pos
    data, n = sc.data, sc.n
    while sc.pos < n and data[sc.pos] not in " \t\r\n/>=":
        sc.pos += 1
    if sc.pos == start:
        raise sc.error("expected a name")
    return data[start : sc.pos]


def _parse_attributes(sc: _Scanner) -> dict[str, str]:
    attrib: dict[str, str] = {}
    while True:
        sc.skip_ws()
        if sc.eof():
            raise sc.error("unterminated start tag")
        if sc.peek() in (">", "/"):
            return attrib
        key = _parse_name(sc)
        sc.skip_ws()
        if sc.peek() != "=":
            raise sc.error(f"attribute {key!r} missing '='")
        sc.advance()
        sc.skip_ws()
        quote = sc.peek()
        if quote not in ("'", '"'):
            raise sc.error(f"attribute {key!r} value must be quoted")
        sc.advance()
        end = sc.data.find(quote, sc.pos)
        if end < 0:
            raise sc.error(f"unterminated value for attribute {key!r}")
        raw = sc.data[sc.pos : end]
        sc.pos = end + 1
        if key in attrib:
            raise sc.error(f"duplicate attribute {key!r}")
        attrib[key] = _decode_entities(raw, sc)


def _parse_element(sc: _Scanner, keep_ws: bool) -> Element:
    if sc.peek() != "<":
        raise sc.error("expected '<'")
    sc.advance()
    tag = _parse_name(sc)
    attrib = _parse_attributes(sc)
    if sc.starts_with("/>"):
        sc.advance(2)
        return Element(tag, attrib)
    if sc.peek() != ">":
        raise sc.error(f"malformed start tag <{tag}>")
    sc.advance()

    elem = Element(tag, attrib)
    text_parts: list[str] = []
    while True:
        if sc.eof():
            raise sc.error(f"unexpected end of input inside <{tag}>")
        if sc.starts_with("</"):
            sc.advance(2)
            end_tag = _parse_name(sc)
            if end_tag != tag:
                raise sc.error(f"mismatched end tag </{end_tag}> for <{tag}>")
            sc.skip_ws()
            if sc.peek() != ">":
                raise sc.error(f"malformed end tag </{end_tag}>")
            sc.advance()
            break
        if sc.starts_with("<!--"):
            _skip_comment(sc)
        elif sc.starts_with("<![CDATA["):
            end = sc.data.find("]]>", sc.pos + 9)
            if end < 0:
                raise sc.error("unterminated CDATA section")
            text_parts.append(sc.data[sc.pos + 9 : end])
            sc.pos = end + 3
        elif sc.starts_with("<?"):
            _skip_pi(sc)
        elif sc.peek() == "<":
            child = _parse_element(sc, keep_ws)
            elem._children.append(child)
            child.parent = elem
        else:
            start = sc.pos
            nxt = sc.data.find("<", sc.pos)
            if nxt < 0:
                raise sc.error(f"unexpected end of input inside <{tag}>")
            raw = sc.data[start:nxt]
            sc.pos = nxt
            decoded = _decode_entities(raw, sc)
            if keep_ws or decoded.strip():
                text_parts.append(decoded if keep_ws else decoded.strip())
    if text_parts:
        elem.text = " ".join(p for p in text_parts if p) if not keep_ws else "".join(text_parts)
        if elem.text == "":
            elem.text = None
    return elem


def _decode_entities(raw: str, sc: _Scanner) -> str:
    if "&" not in raw:
        return raw
    out: list[str] = []
    i, n = 0, len(raw)
    while i < n:
        c = raw[i]
        if c != "&":
            out.append(c)
            i += 1
            continue
        semi = raw.find(";", i + 1)
        if semi < 0:
            raise sc.error("unterminated entity reference")
        name = raw[i + 1 : semi]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                out.append(chr(int(name[2:], 16)))
            except ValueError:
                raise sc.error(f"bad character reference &{name};") from None
        elif name.startswith("#"):
            try:
                out.append(chr(int(name[1:])))
            except ValueError:
                raise sc.error(f"bad character reference &{name};") from None
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise sc.error(f"unknown entity &{name};")
        i = semi + 1
    return "".join(out)
