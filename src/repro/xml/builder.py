"""Concise programmatic construction of XML trees.

``E("person", E("id", text="4"), E("name", text="Ana"))`` builds a detached
subtree; :func:`doc` wraps a root element into a named document. Used
pervasively in tests and by the XMark generator.
"""

from __future__ import annotations

from .model import Document, Element


def E(tag: str, *children: Element, text: str | None = None, **attrib: str) -> Element:
    """Build a detached element with ``children``, ``text`` and attributes.

    Attribute values are coerced to ``str`` so numeric literals read
    naturally: ``E("product", id="13")`` and ``E("product", id=13)`` agree.
    """
    elem = Element(tag, {k: str(v) for k, v in attrib.items()}, text)
    for child in children:
        elem.append(child)
    return elem


def doc(name: str, root: Element) -> Document:
    """Wrap a detached element tree into a :class:`Document`."""
    return Document(name, root)
