"""In-memory XML tree model.

DTX handles XML data in main memory (paper §2): the :class:`Document` /
:class:`Element` pair here is that representation. Compared to a generic DOM
it is deliberately lean but adds the two properties the concurrency layer
needs:

* **stable node identities** — every element attached to a document gets a
  document-unique integer ``node_id`` that survives for the node's lifetime;
  lock tables, undo logs and DataGuide target sets refer to nodes by id;
* **label paths** — each node knows its root-to-node tag path, the key used
  to map document nodes onto DataGuide nodes.

Mixed content is simplified: an element carries a single optional ``text``
payload plus element children, which covers the XMark-style data-management
workloads of the paper.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from ..errors import XMLModelError

#: Value type produced by :meth:`Element.typed_value`.
Scalar = Union[str, float]


class Element:
    """A single XML element: tag, attributes, optional text, children."""

    __slots__ = ("tag", "attrib", "text", "_children", "parent", "node_id", "document")

    def __init__(self, tag: str, attrib: Optional[dict] = None, text: Optional[str] = None):
        if not tag or not _is_name(tag):
            raise XMLModelError(f"invalid element tag: {tag!r}")
        self.tag = tag
        self.attrib: dict[str, str] = dict(attrib) if attrib else {}
        self.text = text
        self._children: list[Element] = []
        self.parent: Optional[Element] = None
        self.node_id: int = -1  # assigned when attached to a Document
        self.document: Optional["Document"] = None

    # -- structure -----------------------------------------------------

    @property
    def children(self) -> tuple["Element", ...]:
        """Immutable view of the element children, in document order."""
        return tuple(self._children)

    def __len__(self) -> int:
        return len(self._children)

    def __iter__(self) -> Iterator["Element"]:
        return iter(self._children)

    def child_index(self, child: "Element") -> int:
        """Position of ``child`` among this element's children."""
        for i, c in enumerate(self._children):
            if c is child:
                return i
        raise XMLModelError(f"<{child.tag}> is not a child of <{self.tag}>")

    def append(self, child: "Element") -> "Element":
        """Attach ``child`` as the last child. Returns ``child``."""
        return self.insert(len(self._children), child)

    def insert(self, index: int, child: "Element") -> "Element":
        """Attach ``child`` at ``index`` (clamped to the valid range)."""
        if not isinstance(child, Element):
            raise XMLModelError(f"cannot insert non-element {child!r}")
        if child.parent is not None:
            raise XMLModelError(
                f"<{child.tag}> already has a parent <{child.parent.tag}>; detach it first"
            )
        if child is self or self._has_ancestor(child):
            raise XMLModelError("inserting a node under itself would create a cycle")
        index = max(0, min(index, len(self._children)))
        self._children.insert(index, child)
        child.parent = self
        if self.document is not None:
            self.document._register_subtree(child)
        return child

    def remove(self, child: "Element") -> "Element":
        """Detach ``child`` (and its subtree) from this element."""
        idx = self.child_index(child)
        self._children.pop(idx)
        child.parent = None
        if self.document is not None:
            self.document._unregister_subtree(child)
        return child

    def detach(self) -> "Element":
        """Detach this element from its parent; no-op for parentless nodes."""
        if self.parent is not None:
            self.parent.remove(self)
        return self

    def _has_ancestor(self, node: "Element") -> bool:
        cur = self.parent
        while cur is not None:
            if cur is node:
                return True
            cur = cur.parent
        return False

    # -- navigation ----------------------------------------------------

    def ancestors(self) -> Iterator["Element"]:
        """Yield ancestors from parent up to the root."""
        cur = self.parent
        while cur is not None:
            yield cur
            cur = cur.parent

    def iter_subtree(self) -> Iterator["Element"]:
        """Pre-order traversal of this node and all descendants."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node._children))

    def descendants(self) -> Iterator["Element"]:
        """Pre-order traversal of strict descendants."""
        it = self.iter_subtree()
        next(it)  # skip self
        return it

    def subtree_size(self) -> int:
        """Number of elements in this subtree, including ``self``."""
        return sum(1 for _ in self.iter_subtree())

    @property
    def depth(self) -> int:
        """0 for the root, parents + 1 otherwise."""
        return sum(1 for _ in self.ancestors())

    def label_path(self) -> tuple[str, ...]:
        """Root-to-node tag path, e.g. ``('people', 'person', 'id')``."""
        parts = [self.tag]
        parts.extend(a.tag for a in self.ancestors())
        parts.reverse()
        return tuple(parts)

    # -- content helpers -------------------------------------------------

    def find_children(self, tag: str) -> list["Element"]:
        """All direct children with the given tag."""
        return [c for c in self._children if c.tag == tag]

    def child(self, tag: str) -> Optional["Element"]:
        """First direct child with the given tag, or ``None``."""
        for c in self._children:
            if c.tag == tag:
                return c
        return None

    def typed_value(self) -> Optional[Scalar]:
        """Text content coerced to ``float`` when possible, else ``str``."""
        if self.text is None:
            return None
        try:
            return float(self.text)
        except ValueError:
            return self.text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.tag!r} id={self.node_id} children={len(self._children)}>"


class Document:
    """An XML document: a named tree with a node-id registry.

    A document owns its nodes: attaching a subtree registers every node and
    assigns fresh ids; detaching unregisters them (their ids are retired,
    never reused, so stale references can be detected).
    """

    __slots__ = ("name", "root", "_nodes", "_next_id")

    def __init__(self, name: str, root: Optional[Element] = None):
        if not name:
            raise XMLModelError("document name must be non-empty")
        self.name = name
        self.root: Optional[Element] = None
        self._nodes: dict[int, Element] = {}
        self._next_id = 0
        if root is not None:
            self.set_root(root)

    # -- registry --------------------------------------------------------

    def set_root(self, root: Element) -> Element:
        """Install ``root`` as the document root (document must be empty)."""
        if self.root is not None:
            raise XMLModelError(f"document {self.name!r} already has a root")
        if root.parent is not None or root.document is not None:
            raise XMLModelError("root must be a detached, unowned element")
        self.root = root
        self._register_subtree(root)
        return root

    def _register_subtree(self, node: Element) -> None:
        for n in node.iter_subtree():
            if n.document is not None and n.document is not self:
                raise XMLModelError(
                    f"<{n.tag}> belongs to document {n.document.name!r}"
                )
            if n.node_id < 0:
                n.node_id = self._next_id
                self._next_id += 1
            n.document = self
            self._nodes[n.node_id] = n

    def _unregister_subtree(self, node: Element) -> None:
        for n in node.iter_subtree():
            self._nodes.pop(n.node_id, None)
            n.document = None

    def node(self, node_id: int) -> Element:
        """Look up a live node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise XMLModelError(
                f"node id {node_id} is not live in document {self.name!r}"
            ) from None

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __contains__(self, node: Element) -> bool:
        return self._nodes.get(node.node_id) is node

    def __len__(self) -> int:
        """Number of live elements."""
        return len(self._nodes)

    def iter(self) -> Iterator[Element]:
        """Pre-order traversal of the whole document."""
        if self.root is None:
            return iter(())
        return self.root.iter_subtree()

    # -- measures ----------------------------------------------------------

    def size_bytes(self) -> int:
        """Approximate serialized size (used by the network/persist models)."""
        total = 0
        for n in self.iter():
            total += 2 * len(n.tag) + 5  # <tag></tag>
            for k, v in n.attrib.items():
                total += len(k) + len(v) + 4
            if n.text:
                total += len(n.text)
        return total

    def clone(self, name: Optional[str] = None) -> "Document":
        """Deep copy with fresh node ids (a replica at another site)."""
        copy = Document(name or self.name)
        if self.root is not None:
            copy.set_root(_clone_subtree(self.root))
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Document {self.name!r} nodes={len(self._nodes)}>"


def _clone_subtree(node: Element) -> Element:
    new = Element(node.tag, dict(node.attrib), node.text)
    # Iterate the private list: ``children`` allocates a defensive tuple per
    # node, which adds up when cloning replicas on every host_document call.
    for child in node._children:
        copy = _clone_subtree(child)
        copy.parent = new
        new._children.append(copy)
    return new


_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


def _is_name(s: str) -> bool:
    """True when ``s`` is a valid (simplified) XML name."""
    if not s or s[0] not in _NAME_START:
        return False
    return all(c in _NAME_CHARS for c in s[1:])
