"""Shim for legacy editable installs (no `wheel` package in this environment)."""

from setuptools import setup

setup()
