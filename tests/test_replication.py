"""Replication layer: replica sets, primary-copy ROWA routing, sync-on-commit."""

import pytest

from repro import DTXCluster, Operation, SystemConfig, Transaction, TxState
from repro.distribution import (
    Catalog,
    ReplicaSet,
    ReplicationPolicy,
    allocate_replicated,
    replica_placement,
)
from repro.errors import ConfigError, DistributionError
from repro.sim.rng import substream
from repro.update import ChangeOp, InsertOp, TransposeOp
from repro.verify import final_state_serializable
from repro.xml import serialize_document

from .conftest import make_people_doc, make_products_doc

ROWA = SystemConfig().with_(
    client_think_ms=0.0,
    detector_interval_ms=50.0,
    detector_initial_delay_ms=10.0,
    replication_factor=2,
    replica_read_policy="nearest",
    replica_write_policy="primary",
)


def rowa_cluster(protocol="xdgl", config=ROWA, n_sites=3, replicate_at=None):
    """d1 replicated at ``replicate_at`` (default: all sites, primary s1)."""
    cluster = DTXCluster(protocol=protocol, config=config)
    sites = [f"s{i + 1}" for i in range(n_sites)]
    for s in sites:
        cluster.add_site(s)
    cluster.replicate_document(make_people_doc(), replicate_at or sites)
    return cluster


# ---------------------------------------------------------------------------
# units: ReplicaSet / catalog / policy / placement
# ---------------------------------------------------------------------------


class TestReplicaSet:
    def test_basic_properties(self):
        rset = ReplicaSet("d1", primary="s1", secondaries=("s2", "s3"))
        assert rset.all_sites == ("s1", "s2", "s3")
        assert rset.degree == 3
        assert rset.is_replicated
        assert "s2" in rset and "s9" not in rset

    def test_unreplicated_set(self):
        rset = ReplicaSet("d1", primary="s1")
        assert rset.degree == 1
        assert not rset.is_replicated
        assert rset.all_sites == ("s1",)

    def test_primary_among_secondaries_rejected(self):
        with pytest.raises(DistributionError):
            ReplicaSet("d1", primary="s1", secondaries=("s1", "s2"))


class TestCatalogReplicaSets:
    def test_replica_set_primary_is_first_site(self):
        catalog = Catalog()
        catalog.add("d1", ["s2", "s1", "s3"])
        rset = catalog.replica_set("d1")
        assert rset.primary == "s2"
        assert rset.secondaries == ("s1", "s3")

    def test_set_primary_reorders_placement(self):
        catalog = Catalog()
        catalog.add("d1", ["s1", "s2", "s3"])
        catalog.set_primary("d1", "s3")
        assert catalog.replica_set("d1").primary == "s3"
        assert set(catalog.sites_for("d1")) == {"s1", "s2", "s3"}

    def test_set_primary_requires_existing_replica(self):
        catalog = Catalog()
        catalog.add("d1", ["s1"])
        with pytest.raises(DistributionError):
            catalog.set_primary("d1", "s9")

    def test_multi_site_lookup_unknown_document(self):
        with pytest.raises(DistributionError):
            Catalog().replica_set("ghost")


class TestReplicationPolicy:
    RSET = ReplicaSet("d1", primary="s1", secondaries=("s2", "s3"))

    def test_default_policy_is_the_papers_regime(self):
        policy = ReplicationPolicy()
        policy.validate()
        assert policy.route_read(self.RSET, origin="s9") == ["s1", "s2", "s3"]
        assert policy.route_write(self.RSET) == ["s1", "s2", "s3"]
        assert policy.sync_targets(self.RSET) == []
        assert not policy.is_primary_copy

    def test_primary_copy_write_routing(self):
        policy = ReplicationPolicy(read_policy="primary", write_policy="primary")
        assert policy.route_write(self.RSET) == ["s1"]
        assert policy.sync_targets(self.RSET) == ["s2", "s3"]
        assert policy.is_primary_copy

    def test_nearest_read_prefers_local_replica(self):
        policy = ReplicationPolicy(read_policy="nearest", write_policy="primary")
        assert policy.route_read(self.RSET, origin="s3") == ["s3"]
        assert policy.route_read(self.RSET, origin="s9") == ["s1"]

    def test_random_read_stays_inside_the_replica_set(self):
        policy = ReplicationPolicy(read_policy="random", write_policy="primary")
        rng = substream(7, "test-route")
        picks = {policy.route_read(self.RSET, "s9", rng=rng)[0] for _ in range(40)}
        assert picks <= {"s1", "s2", "s3"}
        assert len(picks) > 1  # actually spreads the reads

    def test_read_your_writes_pins_to_primary(self):
        policy = ReplicationPolicy(read_policy="nearest", write_policy="primary")
        routed = policy.route_read(self.RSET, origin="s3", wrote_before=True)
        assert routed == ["s1"]

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigError):
            ReplicationPolicy(read_policy="quorum").validate()
        with pytest.raises(ConfigError):
            ReplicationPolicy(write_policy="none").validate()
        with pytest.raises(ConfigError):
            ReplicationPolicy(factor=0).validate()

    def test_config_knobs_validated_through_system_config(self):
        with pytest.raises(ConfigError):
            SystemConfig().with_(replica_read_policy="quorum")
        with pytest.raises(ConfigError):
            SystemConfig().with_(replication_factor=0)


class TestReplicatedAllocation:
    def test_replica_placement_round_robin(self):
        sites = ["s1", "s2", "s3"]
        assert replica_placement(0, sites, 2) == ["s1", "s2"]
        assert replica_placement(2, sites, 2) == ["s3", "s1"]

    def test_replica_placement_bounds(self):
        with pytest.raises(DistributionError):
            replica_placement(0, ["s1"], 2)
        with pytest.raises(DistributionError):
            replica_placement(0, [], 1)

    def test_allocate_replicated_rotates_primaries(self):
        docs = [make_people_doc("d1"), make_products_doc("d2")]
        alloc = allocate_replicated(docs, ["s1", "s2", "s3"], factor=2)
        assert alloc.catalog.replica_set("d1").primary == "s1"
        assert alloc.catalog.replica_set("d2").primary == "s2"
        for name in ("d1", "d2"):
            assert alloc.catalog.replication_degree(name) == 2

    def test_replicate_document_elects_primary_over_existing_placement(self):
        cluster = DTXCluster(protocol="xdgl", config=ROWA)
        for s in ("s1", "s2", "s3"):
            cluster.add_site(s)
        d = make_people_doc()
        cluster.host_document("s3", d)  # pre-existing single-site placement
        cluster.replicate_document(d, ["s1", "s2"])
        assert cluster.catalog.replica_set("d1").primary == "s1"
        assert set(cluster.catalog.sites_for("d1")) == {"s1", "s2", "s3"}

    def test_allocated_cluster_runs(self):
        docs = [make_people_doc("d1"), make_products_doc("d2")]
        alloc = allocate_replicated(docs, ["s1", "s2", "s3"], factor=2)
        cluster = DTXCluster.from_allocation(alloc, protocol="xdgl", config=ROWA)
        tx = Transaction(
            [Operation.update("d1", InsertOp("<person><id>8</id></person>", "/people"))]
        )
        cluster.add_client("c1", "s3", [tx])
        res = cluster.run()
        assert len(res.committed) == 1
        assert serialize_document(cluster.document_at("s1", "d1")) == serialize_document(
            cluster.document_at("s2", "d1")
        )


# ---------------------------------------------------------------------------
# integration: sync-on-commit visibility, routing, rollback
# ---------------------------------------------------------------------------


class TestPrimaryCopyIntegration:
    def test_write_at_primary_visible_at_every_secondary(self):
        cluster = rowa_cluster(n_sites=4)
        tx = Transaction(
            [Operation.update("d1", InsertOp("<person><id>9</id><name>Rui</name></person>", "/people"))]
        )
        cluster.add_client("c1", "s1", [tx])
        res = cluster.run()
        assert len(res.committed) == 1
        texts = {
            s: serialize_document(cluster.document_at(s, "d1"))
            for s in ("s1", "s2", "s3", "s4")
        }
        assert len(set(texts.values())) == 1
        assert "Rui" in texts["s1"]
        # Persisted to storage at every replica, not just live memory.
        for s in texts:
            assert "Rui" in cluster.site(s).data_manager.backend.raw("d1")

    def test_write_from_secondary_coordinator_routes_to_primary(self):
        cluster = rowa_cluster(n_sites=3)
        tx = Transaction(
            [Operation.update("d1", ChangeOp("/people/person[id=4]/name", "Ana"))]
        )
        cluster.add_client("c1", "s3", [tx])  # s3 is a secondary of d1
        res = cluster.run()
        assert len(res.committed) == 1
        assert tx.sites_involved == {"s1"}  # locked at the primary only
        for s in ("s1", "s2", "s3"):
            assert "Ana" in serialize_document(cluster.document_at(s, "d1"))

    def test_write_then_read_pins_read_to_primary(self):
        cluster = rowa_cluster(n_sites=3)
        tx = Transaction(
            [
                Operation.update("d1", InsertOp("<person><id>9</id></person>", "/people")),
                Operation.query("d1", "/people/person"),
            ]
        )
        cluster.add_client("c1", "s3", [tx])
        res = cluster.run()
        assert len(res.committed) == 1
        # Without read-your-writes the query would run at the local s3
        # replica; with it, the whole transaction stays at the primary.
        assert tx.sites_involved == {"s1"}

    def test_read_only_transaction_stays_local(self):
        cluster = rowa_cluster(n_sites=3)
        tx = Transaction([Operation.query("d1", "/people/person[id=4]")])
        cluster.add_client("c1", "s2", [tx])
        res = cluster.run()
        assert len(res.committed) == 1
        assert tx.sites_involved == {"s2"}
        assert cluster.site("s1").stats.ops_executed == 0
        assert cluster.site("s2").stats.ops_executed == 1
        assert cluster.site("s2").stats.reads_routed == 1

    def test_abort_never_reaches_secondaries(self):
        cluster = rowa_cluster(n_sites=3)
        before = serialize_document(make_people_doc())
        tx = Transaction(
            [
                Operation.update("d1", InsertOp("<person><id>9</id></person>", "/people")),
                # Fails at the primary -> abort before any sync is sent.
                Operation.update("d1", TransposeOp("/people", "/people/person")),
            ]
        )
        cluster.add_client("c1", "s1", [tx])
        res = cluster.run()
        assert len(res.aborted) == 1
        for s in ("s1", "s2", "s3"):
            assert serialize_document(cluster.document_at(s, "d1")) == before
            assert cluster.site(s).stats.replica_syncs_served == 0
            assert cluster.site(s).lock_manager.table.is_empty()

    def test_sync_messages_counted_per_secondary(self):
        cluster = rowa_cluster(n_sites=3)
        txs = [
            Transaction([Operation.update("d1", InsertOp(f"<person><id>{i}</id></person>", "/people"))])
            for i in range(50, 53)
        ]
        cluster.add_client("c1", "s1", txs)
        res = cluster.run()
        assert len(res.committed) == 3
        assert cluster.network.stats.by_kind.get("ReplicaSyncRequest") == 6  # 3 tx x 2 secondaries
        assert cluster.site("s2").stats.replica_syncs_served == 3
        assert cluster.site("s3").stats.replica_syncs_served == 3
        assert cluster.site("s1").stats.replica_syncs_served == 0

    def test_commit_refused_after_sync_fails_without_diverging(self):
        """A participant refusing the commit vote *after* secondaries were
        synced must not undo at the primary alone: the transaction fails
        with its effects kept everywhere, and replicas stay identical."""
        cluster = rowa_cluster(n_sites=3, replicate_at=["s1", "s2"])
        cluster.host_document("s3", make_products_doc())
        cluster.site("s3").refuse_commit.add("*")
        tx = Transaction(
            [
                Operation.query("d2", "/products/product"),  # involves s3
                Operation.update("d1", InsertOp("<person><id>9</id></person>", "/people")),
            ]
        )
        cluster.add_client("c1", "s1", [tx])
        res = cluster.run()
        assert len(res.failed) == 1
        s1_doc = serialize_document(cluster.document_at("s1", "d1"))
        s2_doc = serialize_document(cluster.document_at("s2", "d1"))
        assert s1_doc == s2_doc  # no divergence: effects kept at both
        assert "<id>9</id>" in s1_doc
        for s in ("s1", "s2"):  # durable at both, like a normal sync
            assert "<id>9</id>" in cluster.site(s).data_manager.backend.raw("d1")
        for s in ("s1", "s2", "s3"):
            assert cluster.site(s).lock_manager.table.is_empty()

    def test_commit_refused_after_sync_persists_at_remote_primary(self):
        """Coordinator, primary and secondary on three different sites: the
        post-sync failure must persist the kept effects at the *primary*
        (a remote participant that only receives a FailNotice), not just
        wherever the coordinator happens to be."""
        cluster = rowa_cluster(n_sites=3, replicate_at=["s2", "s3"])  # primary s2
        cluster.host_document("s1", make_products_doc())
        cluster.site("s2").refuse_commit.add("*")
        tx = Transaction(
            [Operation.update("d1", InsertOp("<person><id>9</id></person>", "/people"))]
        )
        cluster.add_client("c1", "s1", [tx])  # s1 holds no replica of d1
        res = cluster.run()
        assert len(res.failed) == 1
        for s in ("s2", "s3"):
            assert "<id>9</id>" in cluster.site(s).data_manager.backend.raw("d1")
        assert serialize_document(cluster.document_at("s2", "d1")) == serialize_document(
            cluster.document_at("s3", "d1")
        )

    def test_read_your_writes_pin_outranks_read_policy_all(self):
        """write_policy='primary' + read_policy='all': a read of a document
        the transaction already wrote must stay at the primary — the
        secondaries do not have the update before commit."""
        cfg = ROWA.with_(replica_read_policy="all")
        cluster = rowa_cluster(config=cfg, n_sites=3)
        tx = Transaction(
            [
                Operation.update("d1", InsertOp("<person><id>9</id></person>", "/people")),
                Operation.query("d1", "/people/person[id=9]"),
            ]
        )
        cluster.add_client("c1", "s2", [tx])
        res = cluster.run()
        assert len(res.committed) == 1
        assert tx.sites_involved == {"s1"}  # both ops pinned to the primary

    def test_commit_refused_before_sync_still_aborts_cleanly(self):
        """Same fault but with no executed update: nothing was synced, so
        the ordinary abort path runs and nothing changes anywhere."""
        before = serialize_document(make_people_doc())
        cluster = rowa_cluster(n_sites=3, replicate_at=["s1", "s2"])
        cluster.site("s2").refuse_commit.add("*")
        tx = Transaction(
            [
                Operation.query("d1", "/people/person"),
                Operation.query("d1", "/people/person[id=4]"),
            ]
        )
        cfg_all_reads = ROWA.with_(replica_read_policy="all")
        cluster2 = rowa_cluster(config=cfg_all_reads, n_sites=2, replicate_at=["s1", "s2"])
        cluster2.site("s2").refuse_commit.add("*")
        cluster2.add_client("c1", "s1", [tx])
        res = cluster2.run()
        assert len(res.aborted) == 1
        assert res.aborted[0].reason == "commit-refused"
        assert serialize_document(cluster2.document_at("s1", "d1")) == before

    def test_dataguides_stay_synced_at_secondaries(self):
        cluster = rowa_cluster(n_sites=3)
        tx = Transaction(
            [Operation.update("d1", InsertOp("<person><id>9</id><tag/></person>", "/people"))]
        )
        cluster.add_client("c1", "s1", [tx])
        cluster.run()
        for s in ("s1", "s2", "s3"):
            site = cluster.site(s)
            site.protocol.guide("d1").validate_against(site.data_manager.document("d1"))


class TestConflictSerialization:
    def test_two_writers_on_different_replicas_serialize_through_primary(self):
        """Writers connected to *different* replicas of d1 both route their
        updates to the primary, whose lock table orders them."""
        initial = {"d1": make_people_doc()}
        cluster = rowa_cluster(n_sites=2, replicate_at=["s1", "s2"])
        t1 = Transaction(
            [Operation.update("d1", ChangeOp("/people/person[id=4]/name", "A"))],
            label="t1",
        )
        t2 = Transaction(
            [Operation.update("d1", ChangeOp("/people/person[id=4]/name", "B"))],
            label="t2",
        )
        cluster.add_client("c1", "s1", [t1])
        cluster.add_client("c2", "s2", [t2])
        res = cluster.run()
        # No replica-acquisition race exists under primary-copy routing:
        # both writers commit, one strictly after the other.
        assert sorted(r.status for r in res.records) == ["committed", "committed"]
        assert t1.sites_involved == t2.sites_involved == {"s1"}
        # Primary's lock table made one of them wait (or at least ordered
        # them); the final state matches exactly one serial order.
        final = {
            s: serialize_document(cluster.document_at(s, "d1")) for s in ("s1", "s2")
        }
        assert final["s1"] == final["s2"]
        committed = [t for t in (t1, t2) if t.state is TxState.COMMITTED]
        observed = {"d1": final["s1"]}
        assert final_state_serializable(initial, committed, observed)

    def test_conflicting_writer_waits_for_primary_lock(self):
        cluster = rowa_cluster(n_sites=2, replicate_at=["s1", "s2"])
        t1 = Transaction(
            [
                Operation.update("d1", ChangeOp("/people/person[id=4]/name", "A")),
                Operation.update("d1", ChangeOp("/people/person[id=1]/name", "AA")),
            ],
            label="t1",
        )
        t2 = Transaction(
            [Operation.update("d1", ChangeOp("/people/person[id=4]/name", "B"))],
            label="t2",
        )
        cluster.add_client("c1", "s1", [t1])
        cluster.add_client("c2", "s2", [t2])
        res = cluster.run()
        assert sorted(r.status for r in res.records) == ["committed", "committed"]
        # The loser blocked at the primary at least once.
        assert cluster.site("s1").stats.ops_blocked >= 1
        assert t1.stats.waits + t2.stats.waits >= 1

    @pytest.mark.parametrize("protocol", ["xdgl", "node2pl", "doclock2pl"])
    def test_replicated_mixed_workload_serializable(self, protocol):
        initial = {"d1": make_people_doc(), "d2": make_products_doc()}
        cluster = DTXCluster(protocol=protocol, config=ROWA)
        for s in ("s1", "s2", "s3"):
            cluster.add_site(s)
        cluster.replicate_document(initial["d1"], ["s1", "s2"])
        cluster.replicate_document(initial["d2"], ["s2", "s3"])
        all_txs = []
        for c in range(4):
            if c % 2 == 0:
                ops = [
                    Operation.update(
                        "d1", InsertOp(f"<person><id>{80 + c}</id></person>", "/people")
                    ),
                    Operation.query("d2", "/products/product"),
                ]
            else:
                ops = [
                    Operation.query("d1", "/people/person"),
                    Operation.update(
                        "d2", ChangeOp("/products/product[id=4]/price", f"{c}.00")
                    ),
                ]
            tx = Transaction(ops, label=f"m{c}")
            all_txs.append(tx)
            cluster.add_client(f"c{c}", f"s{c % 3 + 1}", [tx])
        cluster.run()
        committed = [t for t in all_txs if t.state is TxState.COMMITTED]
        assert committed  # at least someone made it
        for sid in ("s1", "s2", "s3"):
            site = cluster.site(sid)
            observed = {
                name: serialize_document(site.data_manager.document(name))
                for name in site.data_manager.live_documents()
            }
            site_initial = {n: d for n, d in initial.items() if n in observed}
            assert final_state_serializable(site_initial, committed, observed), (
                f"{protocol}: state at {sid} matches no serial order"
            )
        # Replicas byte-identical pairwise.
        assert serialize_document(cluster.document_at("s1", "d1")) == serialize_document(
            cluster.document_at("s2", "d1")
        )
        assert serialize_document(cluster.document_at("s2", "d2")) == serialize_document(
            cluster.document_at("s3", "d2")
        )
