"""Unit tests for storage backends and the DataManager."""

import pytest

from repro.errors import StorageError
from repro.storage import DataManager, FileStore, InMemoryStore
from repro.update import ChangeOp, apply_update
from repro.xml import E, doc, serialize_document

from .conftest import make_people_doc


class TestInMemoryStore:
    def test_store_and_load_roundtrip(self):
        store = InMemoryStore()
        d = make_people_doc()
        size = store.store(d)
        assert size > 0
        loaded = store.load("d1")
        assert serialize_document(loaded) == serialize_document(d)
        assert loaded.name == "d1"

    def test_load_missing_raises(self):
        with pytest.raises(StorageError):
            InMemoryStore().load("ghost")

    def test_exists_delete_list(self):
        store = InMemoryStore()
        store.store(doc("a", E("r")))
        store.store(doc("b", E("r")))
        assert store.exists("a")
        assert store.list_documents() == ["a", "b"]
        store.delete("a")
        assert not store.exists("a")
        with pytest.raises(StorageError):
            store.delete("a")

    def test_size_bytes(self):
        store = InMemoryStore()
        store.store(doc("a", E("r", text="hello")))
        assert store.size_bytes("a") == len(store.raw("a").encode())
        with pytest.raises(StorageError):
            store.size_bytes("ghost")

    def test_stats(self):
        store = InMemoryStore()
        d = make_people_doc()
        store.store(d)
        store.store(d)
        store.load("d1")
        assert store.stats.stores == 2
        assert store.stats.loads == 1
        assert store.stats.per_document_stores["d1"] == 2
        assert store.stats.bytes_written > 0

    def test_loaded_copies_are_independent(self):
        store = InMemoryStore()
        store.store(make_people_doc())
        c1 = store.load("d1")
        c2 = store.load("d1")
        c1.root.children[0].child("name").text = "Mutated"
        assert c2.root.children[0].child("name").text == "Carlos"


class TestFileStore:
    def test_roundtrip(self, tmp_path):
        store = FileStore(str(tmp_path))
        d = make_people_doc()
        store.store(d)
        loaded = store.load("d1")
        assert serialize_document(loaded) == serialize_document(d)

    def test_fragment_names_sanitized(self, tmp_path):
        store = FileStore(str(tmp_path))
        store.store(doc("xmark#2", E("site")))
        assert store.exists("xmark#2")
        assert store.load("xmark#2").root.tag == "site"

    def test_missing_operations_raise(self, tmp_path):
        store = FileStore(str(tmp_path))
        with pytest.raises(StorageError):
            store.load("nope")
        with pytest.raises(StorageError):
            store.delete("nope")
        with pytest.raises(StorageError):
            store.size_bytes("nope")

    def test_delete(self, tmp_path):
        store = FileStore(str(tmp_path))
        store.store(doc("a", E("r")))
        store.delete("a")
        assert not store.exists("a")

    def test_size_bytes_positive(self, tmp_path):
        store = FileStore(str(tmp_path))
        store.store(doc("a", E("r", text="x" * 100)))
        assert store.size_bytes("a") > 100


class TestDataManager:
    def make(self):
        store = InMemoryStore()
        store.store(make_people_doc())
        return DataManager(store), store

    def test_load_parses_once(self):
        dm, _ = self.make()
        d1, parsed = dm.load("d1")
        assert parsed > 0
        again, parsed2 = dm.load("d1")
        assert again is d1
        assert parsed2 == 0  # already live

    def test_document_requires_load(self):
        dm, _ = self.make()
        with pytest.raises(StorageError):
            dm.document("d1")
        dm.load("d1")
        assert dm.document("d1").name == "d1"

    def test_persist_writes_back_changes(self):
        dm, store = self.make()
        d, _ = dm.load("d1")
        apply_update(ChangeOp("/people/person[id=1]/name", "Renamed"), d)
        written = dm.persist("d1")
        assert written > 0
        assert "Renamed" in store.raw("d1")

    def test_persist_many(self):
        dm, store = self.make()
        store.store(doc("d9", E("r")))
        dm.load("d1")
        dm.load("d9")
        assert dm.persist_many(["d1", "d9"]) > 0

    def test_install_and_evict(self):
        dm, store = self.make()
        dm.install(doc("new", E("r")))
        assert store.exists("new")
        assert dm.is_loaded("new")
        with pytest.raises(StorageError):
            dm.install(doc("new", E("r")))
        dm.evict("new")
        assert not dm.is_loaded("new")
        assert dm.live_documents() == []
