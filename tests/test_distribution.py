"""Unit tests for fragmentation, allocation and the catalog."""

import pytest

from repro.distribution import (
    Catalog,
    allocate_explicit,
    allocate_partial,
    allocate_total,
    fragment_document,
    fragment_name,
    is_fragment_of,
)
from repro.errors import DistributionError
from repro.xml import E, doc

from .conftest import make_people_doc, make_products_doc


def uneven_doc(n=12):
    """A document whose subtrees differ in size (harder to balance)."""
    root = E("site")
    for i in range(n):
        item = E("item", E("id", text=str(i)))
        for j in range(i % 4 + 1):
            item.append(E("data", text="x" * (20 * (j + 1))))
        root.append(item)
    return doc("base", root)


class TestFragmentation:
    def test_fragment_count_and_names(self):
        plan = fragment_document(uneven_doc(), 4)
        assert len(plan.fragments) == 4
        assert plan.names == ["base#0", "base#1", "base#2", "base#3"]

    def test_fragments_partition_children(self):
        d = uneven_doc()
        plan = fragment_document(d, 3)
        covered = []
        for f in plan.fragments:
            a, b = f.child_range
            covered.extend(range(a, b))
        assert covered == list(range(len(d.root.children)))

    def test_fragments_preserve_content(self):
        d = uneven_doc()
        plan = fragment_document(d, 3)
        total_items = sum(len(f.document.root.children) for f in plan.fragments)
        assert total_items == len(d.root.children)
        ids = [
            item.child("id").text
            for f in plan.fragments
            for item in f.document.root.children
        ]
        assert ids == [str(i) for i in range(12)]

    def test_fragments_share_root_tag(self):
        plan = fragment_document(uneven_doc(), 2)
        assert all(f.document.root.tag == "site" for f in plan.fragments)

    def test_balance_is_reasonable(self):
        plan = fragment_document(uneven_doc(24), 4)
        assert plan.balance_ratio() < 2.0  # similar sizes, paper's contract

    def test_single_fragment_is_a_copy(self):
        d = make_people_doc()
        plan = fragment_document(d, 1)
        assert len(plan.fragments) == 1
        assert plan.fragments[0].name == "d1#0"
        assert len(plan.fragments[0].document) == len(d)

    def test_too_many_fragments_rejected(self):
        with pytest.raises(DistributionError):
            fragment_document(make_people_doc(), 10)

    def test_empty_document_rejected(self):
        from repro.xml.model import Document

        with pytest.raises(DistributionError):
            fragment_document(Document("empty"), 2)

    def test_describe_mentions_every_fragment(self):
        plan = fragment_document(uneven_doc(), 3)
        text = plan.describe()
        for name in plan.names:
            assert name in text

    def test_fragment_name_helpers(self):
        assert fragment_name("xmark", 2) == "xmark#2"
        assert is_fragment_of("xmark#2", "xmark")
        assert not is_fragment_of("xmark", "xmark")
        assert not is_fragment_of("other#1", "xmark")


class TestCatalog:
    def test_basic_placement(self):
        cat = Catalog()
        cat.add("d1", ["s1", "s2"])
        cat.add("d2", ["s2"])
        assert cat.sites_for("d1") == ("s1", "s2")
        assert cat.documents_at("s2") == ["d1", "d2"]
        assert cat.all_sites() == ["s1", "s2"]
        assert cat.replication_degree("d1") == 2
        assert cat.primary_site("d2") == "s2"

    def test_unknown_document(self):
        with pytest.raises(DistributionError):
            Catalog().sites_for("ghost")

    def test_empty_placement_rejected(self):
        with pytest.raises(DistributionError):
            Catalog().add("d", [])

    def test_duplicate_sites_rejected(self):
        with pytest.raises(DistributionError):
            Catalog().add("d", ["s1", "s1"])

    def test_describe_marks_replicated(self):
        cat = Catalog()
        cat.add("d1", ["s1", "s2"])
        cat.add("d2", ["s1"])
        text = cat.describe()
        assert "*d1*" in text and "d2" in text


class TestAllocation:
    def test_total_replication(self):
        alloc = allocate_total([make_people_doc(), make_products_doc()], ["s1", "s2", "s3"])
        assert alloc.catalog.replication_degree("d1") == 3
        for site in ["s1", "s2", "s3"]:
            names = [d.name for d in alloc.documents_for(site)]
            assert names == ["d1", "d2"]

    def test_total_replication_copies_are_independent(self):
        alloc = allocate_total([make_people_doc()], ["s1", "s2"])
        c1 = alloc.documents_for("s1")[0]
        c2 = alloc.documents_for("s2")[0]
        c1.root.children[0].child("name").text = "Mutated"
        assert c2.root.children[0].child("name").text == "Carlos"

    def test_partial_replication_spreads_fragments(self):
        alloc, plans = allocate_partial([uneven_doc()], ["s1", "s2", "s3", "s4"])
        assert len(plans) == 1
        assert len(plans[0].fragments) == 4
        for i, site in enumerate(["s1", "s2", "s3", "s4"]):
            names = [d.name for d in alloc.documents_for(site)]
            assert names == [f"base#{i}"]
            assert alloc.catalog.replication_degree(f"base#{i}") == 1

    def test_partial_with_replicas(self):
        alloc, _ = allocate_partial([uneven_doc()], ["s1", "s2", "s3", "s4"], replicas=2)
        assert alloc.catalog.sites_for("base#0") == ("s1", "s2")
        assert alloc.catalog.sites_for("base#3") == ("s4", "s1")

    def test_partial_sites_have_similar_volume(self):
        alloc, _ = allocate_partial([uneven_doc(32)], ["s1", "s2", "s3", "s4"])
        volumes = alloc.total_bytes_per_site()
        assert max(volumes.values()) / min(volumes.values()) < 2.5

    def test_invalid_replicas(self):
        with pytest.raises(DistributionError):
            allocate_partial([uneven_doc()], ["s1"], replicas=2)
        with pytest.raises(DistributionError):
            allocate_partial([uneven_doc()], ["s1"], replicas=0)

    def test_no_sites_rejected(self):
        with pytest.raises(DistributionError):
            allocate_total([make_people_doc()], [])

    def test_explicit_allocation_paper_scenario(self):
        # §2.4: s1 holds d1; s2 holds d1 and d2.
        alloc = allocate_explicit(
            {"d1": ["s1", "s2"], "d2": ["s2"]},
            {"d1": make_people_doc(), "d2": make_products_doc()},
        )
        assert alloc.catalog.sites_for("d1") == ("s1", "s2")
        assert [d.name for d in alloc.documents_for("s1")] == ["d1"]
        assert sorted(d.name for d in alloc.documents_for("s2")) == ["d1", "d2"]

    def test_explicit_allocation_missing_doc(self):
        with pytest.raises(DistributionError):
            allocate_explicit({"d1": ["s1"]}, {})
