"""Serializability verification: unit tests + end-to-end cluster checks."""

import pytest

from repro import DTXCluster, Operation, SystemConfig, Transaction, TxState
from repro.update import ChangeOp, InsertOp
from repro.verify import (
    final_state_serializable,
    find_equivalent_serial_order,
    replay_serial,
)
from repro.xml import serialize_document

from .conftest import make_people_doc, make_products_doc

CFG = SystemConfig().with_(client_think_ms=0.0)


class TestReplay:
    def test_replay_applies_updates_in_order(self):
        initial = {"d2": make_products_doc()}
        t1 = Transaction([Operation.update("d2", ChangeOp("/products/product[id=4]/price", "1"))])
        t2 = Transaction([Operation.update("d2", ChangeOp("/products/product[id=4]/price", "2"))])
        state12 = replay_serial(initial, [t1, t2])
        state21 = replay_serial(initial, [t2, t1])
        assert "<price>2</price>" in state12["d2"]
        assert "<price>1</price>" in state21["d2"]

    def test_replay_does_not_mutate_initial(self):
        initial = {"d2": make_products_doc()}
        before = serialize_document(initial["d2"])
        tx = Transaction([Operation.update("d2", InsertOp("<product/>", "/products"))])
        replay_serial(initial, [tx])
        assert serialize_document(initial["d2"]) == before

    def test_queries_are_ignored(self):
        initial = {"d1": make_people_doc()}
        tx = Transaction([Operation.query("d1", "/people/person")])
        state = replay_serial(initial, [tx])
        assert state["d1"] == serialize_document(initial["d1"])


class TestSerialOrderSearch:
    def test_order_dependent_final_state(self):
        initial = {"d2": make_products_doc()}
        t1 = Transaction([Operation.update("d2", ChangeOp("/products/product[id=4]/price", "1"))])
        t2 = Transaction([Operation.update("d2", ChangeOp("/products/product[id=4]/price", "2"))])
        observed = replay_serial(initial, [t1, t2])
        order = find_equivalent_serial_order(initial, [t1, t2], observed)
        assert order is not None
        assert order[-1] is t2  # only t1,t2 matches this final state

    def test_impossible_state_rejected(self):
        initial = {"d2": make_products_doc()}
        t1 = Transaction([Operation.update("d2", ChangeOp("/products/product[id=4]/price", "1"))])
        observed = {"d2": "<products><bogus/></products>"}
        assert not final_state_serializable(initial, [t1], observed)


class TestClusterSerializability:
    """End-to-end: committed transactions' effects must equal some serial order."""

    def _run_and_check(self, protocol, txs_builder, n_clients=4):
        initial = {"d1": make_people_doc(), "d2": make_products_doc()}
        cluster = DTXCluster(protocol=protocol, config=CFG)
        cluster.add_site("s1", [initial["d1"]])
        cluster.add_site("s2", [initial["d1"], initial["d2"]])
        all_txs = []
        for c in range(n_clients):
            txs = txs_builder(c)
            all_txs.extend(txs)
            cluster.add_client(f"c{c}", "s1" if c % 2 == 0 else "s2", txs)
        cluster.run()
        committed = [t for t in all_txs if t.state is TxState.COMMITTED]
        # Check against each site's subset of the database.
        for sid in ("s1", "s2"):
            site = cluster.site(sid)
            observed = {
                name: serialize_document(site.data_manager.document(name))
                for name in site.data_manager.live_documents()
            }
            site_initial = {n: d for n, d in initial.items() if n in observed}
            assert final_state_serializable(site_initial, committed, observed), (
                f"state at {sid} matches no serial order of the committed txs"
            )
        return committed

    @pytest.mark.parametrize("protocol", ["xdgl", "node2pl", "doclock2pl"])
    def test_concurrent_writers_final_state_serializable(self, protocol):
        # Writers take their locks in a uniform document order (d1 then d2)
        # and do not read-then-upgrade. Replica-acquisition races (two
        # coordinators each winning a different copy of d1) can still abort
        # a transaction, but never all of them.
        def build(c):
            return [
                Transaction(
                    [
                        Operation.update(
                            "d1",
                            InsertOp(f"<person><id>{900 + c}</id></person>", "/people"),
                        ),
                        Operation.update(
                            "d2",
                            ChangeOp("/products/product[id=4]/price", f"{100 + c}"),
                        ),
                    ],
                    label=f"w{c}",
                )
            ]

        committed = self._run_and_check(protocol, build)
        assert len(committed) >= 2

    @pytest.mark.parametrize("protocol", ["xdgl"])
    def test_upgrade_deadlock_storm_still_serializable(self, protocol):
        # The adversarial pattern: every client reads /people/person (ST)
        # then inserts (X) — a symmetric lock-conversion deadlock. Victims
        # abort, and whatever committed must still be serializable.
        def build(c):
            return [
                Transaction(
                    [
                        Operation.query("d1", "/people/person"),
                        Operation.update(
                            "d1",
                            InsertOp(f"<person><id>{900 + c}</id></person>", "/people"),
                        ),
                    ],
                    label=f"u{c}",
                )
            ]

        self._run_and_check(protocol, build)  # serializability is the assert

    @pytest.mark.parametrize("protocol", ["xdgl", "node2pl"])
    def test_mixed_workload_final_state_serializable(self, protocol):
        def build(c):
            if c % 2 == 0:
                ops = [
                    Operation.update(
                        "d2", InsertOp(f"<product><id>{70 + c}</id></product>", "/products")
                    ),
                    Operation.query("d2", "/products/product"),
                ]
            else:
                ops = [
                    Operation.query("d1", "/people/person[id=4]"),
                    Operation.update(
                        "d1", ChangeOp("/people/person[id=4]/name", f"N{c}")
                    ),
                ]
            return [Transaction(ops, label=f"m{c}")]

        self._run_and_check(protocol, build, n_clients=5)
