"""Unit tests for lock modes and compatibility matrices."""

import pytest

from repro.errors import LockError
from repro.locking import (
    DOC_MATRIX,
    TREE_MATRIX,
    XDGL_MATRIX,
    XDGL_EXCLUSIVE_MODES,
    XDGL_SHARED_MODES,
    CompatibilityMatrix,
    DocLockMode,
    LockMode,
    TreeLockMode,
)


class TestXDGLMatrix:
    def test_exclusive_conflict_with_everything(self):
        for exclusive in XDGL_EXCLUSIVE_MODES:
            for mode in LockMode:
                assert not XDGL_MATRIX.compatible(exclusive, mode)
                assert not XDGL_MATRIX.compatible(mode, exclusive)

    def test_is_compatible_with_all_shared(self):
        for mode in XDGL_SHARED_MODES | {LockMode.IX}:
            assert XDGL_MATRIX.compatible(LockMode.IS, mode)

    def test_st_ix_conflict_drives_paper_scenario(self):
        # Paper §2.4: "Transaction t1 needs to carry out lock IX in the node
        # ... This node has a lock ST that generates an incompatibility".
        assert not XDGL_MATRIX.compatible(LockMode.ST, LockMode.IX)
        assert not XDGL_MATRIX.compatible(LockMode.IX, LockMode.ST)

    def test_st_compatible_with_reads_and_inserts(self):
        for mode in (LockMode.IS, LockMode.ST, LockMode.SI, LockMode.SA, LockMode.SB):
            assert XDGL_MATRIX.compatible(LockMode.ST, mode)

    def test_positional_insert_self_conflicts(self):
        assert not XDGL_MATRIX.compatible(LockMode.SA, LockMode.SA)
        assert not XDGL_MATRIX.compatible(LockMode.SB, LockMode.SB)
        assert XDGL_MATRIX.compatible(LockMode.SA, LockMode.SB)
        assert XDGL_MATRIX.compatible(LockMode.SI, LockMode.SI)

    def test_symmetry(self):
        for a in LockMode:
            for b in LockMode:
                assert XDGL_MATRIX.compatible(a, b) == XDGL_MATRIX.compatible(b, a)

    def test_compatible_with_all(self):
        held = [LockMode.IS, LockMode.ST]
        assert XDGL_MATRIX.compatible_with_all(held, LockMode.SI)
        assert not XDGL_MATRIX.compatible_with_all(held, LockMode.IX)


class TestTreeAndDocMatrices:
    def test_tree_matrix_hierarchical_classics(self):
        assert TREE_MATRIX.compatible(TreeLockMode.IS, TreeLockMode.IX)
        assert TREE_MATRIX.compatible(TreeLockMode.S, TreeLockMode.S)
        assert not TREE_MATRIX.compatible(TreeLockMode.S, TreeLockMode.IX)
        assert not TREE_MATRIX.compatible(TreeLockMode.S, TreeLockMode.X)
        assert not TREE_MATRIX.compatible(TreeLockMode.IS, TreeLockMode.X)
        assert TREE_MATRIX.compatible(TreeLockMode.IX, TreeLockMode.IX)

    def test_doc_matrix(self):
        assert DOC_MATRIX.compatible(DocLockMode.S, DocLockMode.S)
        assert not DOC_MATRIX.compatible(DocLockMode.S, DocLockMode.X)
        assert not DOC_MATRIX.compatible(DocLockMode.X, DocLockMode.X)


class TestMatrixInfrastructure:
    def test_unknown_mode_rejected(self):
        with pytest.raises(LockError):
            CompatibilityMatrix("bad", LockMode, [(LockMode.X, TreeLockMode.S)])

    def test_render_contains_all_modes(self):
        out = XDGL_MATRIX.render()
        for mode in LockMode:
            assert mode.value in out

    def test_pairs_enumeration(self):
        pairs = DOC_MATRIX.pairs()
        assert (DocLockMode.S, DocLockMode.S, True) in pairs
        assert (DocLockMode.S, DocLockMode.X, False) in pairs
        assert len(pairs) == 3  # SS, SX, XX
