"""Unit tests for the discrete-event kernel: events, processes, conditions."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Event, Store


class TestClockAndTimeouts:
    def test_time_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_timeout_advances_clock(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5)
            log.append(env.now)
            yield env.timeout(2.5)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [5.0, 7.5]

    def test_zero_delay_timeout(self):
        env = Environment()
        done = []

        def proc():
            yield env.timeout(0)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_timeout_carries_value(self):
        env = Environment()
        got = []

        def proc():
            v = yield env.timeout(1, value="hello")
            got.append(v)

        env.process(proc())
        env.run()
        assert got == ["hello"]

    def test_event_ordering_fifo_at_same_time(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1)
            order.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_run_until_time(self):
        env = Environment()
        fired = []

        def proc():
            while True:
                yield env.timeout(10)
                fired.append(env.now)

        env.process(proc())
        env.run(until=35)
        assert fired == [10.0, 20.0, 30.0]
        assert env.now == 35.0

    def test_run_until_past_rejected(self):
        env = Environment()
        env.run(until=5)
        with pytest.raises(SimulationError):
            env.run(until=1)


class TestProcessesAndEvents:
    def test_process_return_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            return 42

        p = env.process(proc())
        assert env.run(until=p) == 42

    def test_manual_event_wakes_waiter(self):
        env = Environment()
        gate = env.event()
        woke = []

        def waiter():
            v = yield gate
            woke.append((env.now, v))

        def opener():
            yield env.timeout(3)
            gate.succeed("open")

        env.process(waiter())
        env.process(opener())
        env.run()
        assert woke == [(3.0, "open")]

    def test_multiple_waiters_one_event(self):
        env = Environment()
        gate = env.event()
        woke = []

        def waiter(tag):
            yield gate
            woke.append(tag)

        for tag in "abc":
            env.process(waiter(tag))

        def opener():
            yield env.timeout(1)
            gate.succeed()

        env.process(opener())
        env.run()
        assert sorted(woke) == ["a", "b", "c"]

    def test_event_cannot_trigger_twice(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_process_waiting_on_processed_event(self):
        env = Environment()
        ev = env.event()
        ev.succeed("early")
        env.run()
        got = []

        def late():
            v = yield ev
            got.append(v)

        env.process(late())
        env.run()
        assert got == ["early"]

    def test_unhandled_failure_crashes_run(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise ValueError("boom")

        env.process(bad())
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_waiter_catches_failure_of_subprocess(self):
        env = Environment()
        caught = []

        def bad():
            yield env.timeout(1)
            raise ValueError("boom")

        def guard():
            try:
                yield env.process(bad())
            except ValueError as exc:
                caught.append(str(exc))

        env.process(guard())
        env.run()
        assert caught == ["boom"]

    def test_run_until_failed_process_raises(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise RuntimeError("x")

        p = env.process(bad())
        with pytest.raises(RuntimeError):
            env.run(until=p)

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_run_until_event_never_fires(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            env.run(until=ev)


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()
        done = []

        def proc():
            t1 = env.timeout(2, value="a")
            t2 = env.timeout(5, value="b")
            results = yield env.all_of([t1, t2])
            done.append((env.now, sorted(results.values())))

        env.process(proc())
        env.run()
        assert done == [(5.0, ["a", "b"])]

    def test_any_of_fires_on_first(self):
        env = Environment()
        done = []

        def proc():
            slow = env.timeout(10, value="slow")
            fast = env.timeout(1, value="fast")
            results = yield env.any_of([slow, fast])
            done.append((env.now, list(results.values())))

        env.process(proc())
        env.run()
        assert done == [(1.0, ["fast"])]

    def test_all_of_empty_fires_immediately(self):
        env = Environment()
        done = []

        def proc():
            yield env.all_of([])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]

    def test_any_of_empty_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.any_of([])

    def test_all_of_with_already_processed_children(self):
        env = Environment()
        ev = env.event()
        ev.succeed("x")
        env.run()
        done = []

        def proc():
            results = yield env.all_of([ev, env.timeout(1, "y")])
            done.append(sorted(results.values()))

        env.process(proc())
        env.run()
        assert done == [["x", "y"]]


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        store.put("m1")
        env.process(consumer())
        env.run()
        assert got == ["m1"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append((env.now, item))

        def producer():
            yield env.timeout(4)
            store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [(4.0, "late")]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            while True:
                item = yield store.get()
                got.append(item)
                if item == "c":
                    return

        for x in "abc":
            store.put(x)
        env.process(consumer())
        env.run()
        assert got == ["a", "b", "c"]

    def test_multiple_getters_fifo(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        env.process(consumer("g1"))
        env.process(consumer("g2"))
        env.run()
        store.put("x")
        store.put("y")
        env.run()
        assert got == [("g1", "x"), ("g2", "y")]

    def test_len_and_waiting(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.waiting_getters == 0


class TestRealtime:
    def test_realtime_roughly_tracks_wall_clock(self):
        import time

        from repro.sim import RealtimeEnvironment

        env = RealtimeEnvironment(factor=0.001)  # 1 sim unit = 1 ms

        def proc():
            yield env.timeout(30)

        p = env.process(proc())
        start = time.monotonic()
        env.run(until=p)
        elapsed = time.monotonic() - start
        assert elapsed >= 0.02  # at least ~20ms of real waiting happened
