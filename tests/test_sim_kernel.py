"""Unit tests for the discrete-event kernel: events, processes, conditions."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Event, Store


class TestClockAndTimeouts:
    def test_time_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_timeout_advances_clock(self):
        env = Environment()
        log = []

        def proc():
            yield env.timeout(5)
            log.append(env.now)
            yield env.timeout(2.5)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [5.0, 7.5]

    def test_zero_delay_timeout(self):
        env = Environment()
        done = []

        def proc():
            yield env.timeout(0)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_timeout_carries_value(self):
        env = Environment()
        got = []

        def proc():
            v = yield env.timeout(1, value="hello")
            got.append(v)

        env.process(proc())
        env.run()
        assert got == ["hello"]

    def test_event_ordering_fifo_at_same_time(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1)
            order.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_run_until_time(self):
        env = Environment()
        fired = []

        def proc():
            while True:
                yield env.timeout(10)
                fired.append(env.now)

        env.process(proc())
        env.run(until=35)
        assert fired == [10.0, 20.0, 30.0]
        assert env.now == 35.0

    def test_run_until_past_rejected(self):
        env = Environment()
        env.run(until=5)
        with pytest.raises(SimulationError):
            env.run(until=1)


class TestProcessesAndEvents:
    def test_process_return_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
            return 42

        p = env.process(proc())
        assert env.run(until=p) == 42

    def test_manual_event_wakes_waiter(self):
        env = Environment()
        gate = env.event()
        woke = []

        def waiter():
            v = yield gate
            woke.append((env.now, v))

        def opener():
            yield env.timeout(3)
            gate.succeed("open")

        env.process(waiter())
        env.process(opener())
        env.run()
        assert woke == [(3.0, "open")]

    def test_multiple_waiters_one_event(self):
        env = Environment()
        gate = env.event()
        woke = []

        def waiter(tag):
            yield gate
            woke.append(tag)

        for tag in "abc":
            env.process(waiter(tag))

        def opener():
            yield env.timeout(1)
            gate.succeed()

        env.process(opener())
        env.run()
        assert sorted(woke) == ["a", "b", "c"]

    def test_event_cannot_trigger_twice(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_process_waiting_on_processed_event(self):
        env = Environment()
        ev = env.event()
        ev.succeed("early")
        env.run()
        got = []

        def late():
            v = yield ev
            got.append(v)

        env.process(late())
        env.run()
        assert got == ["early"]

    def test_unhandled_failure_crashes_run(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise ValueError("boom")

        env.process(bad())
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_waiter_catches_failure_of_subprocess(self):
        env = Environment()
        caught = []

        def bad():
            yield env.timeout(1)
            raise ValueError("boom")

        def guard():
            try:
                yield env.process(bad())
            except ValueError as exc:
                caught.append(str(exc))

        env.process(guard())
        env.run()
        assert caught == ["boom"]

    def test_run_until_failed_process_raises(self):
        env = Environment()

        def bad():
            yield env.timeout(1)
            raise RuntimeError("x")

        p = env.process(bad())
        with pytest.raises(RuntimeError):
            env.run(until=p)

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def bad():
            yield "not an event"

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_yield_bool_fails_process(self):
        # bool is an int subclass, but ``yield True`` is a bug, not a timer
        env = Environment()

        def bad():
            yield True

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_run_until_event_never_fires(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            env.run(until=ev)


class TestFlatTimers:
    """``yield <number>`` — the allocation-free form of ``yield env.timeout(n)``."""

    def test_numeric_yield_advances_clock(self):
        env = Environment()
        log = []

        def proc():
            yield 5
            log.append(env.now)
            yield 2.5
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [5.0, 7.5]

    def test_zero_delay_numeric_yield(self):
        env = Environment()
        done = []

        def proc():
            yield 0
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]

    def test_negative_numeric_yield_fails_process(self):
        env = Environment()

        def bad():
            yield -1

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_numeric_yield_interleaves_like_timeout(self):
        # A flat timer and an equal-delay Timeout created at the same moment
        # keep their creation order at the common firing time.
        env = Environment()
        order = []

        def flat(tag):
            yield 1
            order.append(tag)

        def classic(tag):
            yield env.timeout(1)
            order.append(tag)

        env.process(flat("f1"))
        env.process(classic("c1"))
        env.process(flat("f2"))
        env.run()
        assert order == ["f1", "c1", "f2"]

    def test_numeric_yield_in_loop_reuses_tick(self):
        env = Environment()
        fired = []

        def ticker():
            while env.now < 50:
                yield 10
                fired.append(env.now)

        env.process(ticker())
        env.run()
        assert fired == [10.0, 20.0, 30.0, 40.0, 50.0]

    def test_process_return_after_numeric_yield(self):
        env = Environment()

        def proc():
            yield 3
            return "done"

        p = env.process(proc())
        assert env.run(until=p) == "done"


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()
        done = []

        def proc():
            t1 = env.timeout(2, value="a")
            t2 = env.timeout(5, value="b")
            results = yield env.all_of([t1, t2])
            done.append((env.now, sorted(results.values())))

        env.process(proc())
        env.run()
        assert done == [(5.0, ["a", "b"])]

    def test_any_of_fires_on_first(self):
        env = Environment()
        done = []

        def proc():
            slow = env.timeout(10, value="slow")
            fast = env.timeout(1, value="fast")
            results = yield env.any_of([slow, fast])
            done.append((env.now, list(results.values())))

        env.process(proc())
        env.run()
        assert done == [(1.0, ["fast"])]

    def test_all_of_empty_fires_immediately(self):
        env = Environment()
        done = []

        def proc():
            yield env.all_of([])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]

    def test_any_of_empty_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.any_of([])

    def test_all_of_with_already_processed_children(self):
        env = Environment()
        ev = env.event()
        ev.succeed("x")
        env.run()
        done = []

        def proc():
            results = yield env.all_of([ev, env.timeout(1, "y")])
            done.append(sorted(results.values()))

        env.process(proc())
        env.run()
        assert done == [["x", "y"]]


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        store.put("m1")
        env.process(consumer())
        env.run()
        assert got == ["m1"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append((env.now, item))

        def producer():
            yield env.timeout(4)
            store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [(4.0, "late")]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            while True:
                item = yield store.get()
                got.append(item)
                if item == "c":
                    return

        for x in "abc":
            store.put(x)
        env.process(consumer())
        env.run()
        assert got == ["a", "b", "c"]

    def test_multiple_getters_fifo(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        env.process(consumer("g1"))
        env.process(consumer("g2"))
        env.run()
        store.put("x")
        store.put("y")
        env.run()
        assert got == [("g1", "x"), ("g2", "y")]

    def test_len_and_waiting(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.waiting_getters == 0


class NaiveQueueModel:
    """Sorted-list oracle for SchedulerQueue: one (time, seq) entry per item."""

    def __init__(self):
        self.entries = []  # list of [time, seq, item, live]
        self.seq = 0

    def schedule(self, time, item):
        handle = [time, self.seq, item, True]
        self.seq += 1
        self.entries.append(handle)
        return handle

    def cancel(self, handle):
        if not handle[3]:
            return False
        handle[3] = False
        return True

    def reschedule(self, handle, new_time):
        if not self.cancel(handle):
            return None
        return self.schedule(new_time, handle[2])

    def pop(self):
        live = [e for e in self.entries if e[3]]
        if not live:
            return None
        e = min(live, key=lambda e: (e[0], e[1]))
        e[3] = False
        return (e[0], e[2])

    def __len__(self):
        return sum(1 for e in self.entries if e[3])


class TestSchedulerQueue:
    def test_pop_orders_by_time_then_fifo(self):
        from repro.sim import SchedulerQueue

        q = SchedulerQueue()
        q.schedule(5.0, "a")
        q.schedule(1.0, "b")
        q.schedule(5.0, "c")
        q.schedule(1.0, "d")
        assert [q.pop() for _ in range(4)] == [(1.0, "b"), (1.0, "d"), (5.0, "a"), (5.0, "c")]
        assert q.pop() is None

    def test_cancel_removes_entry(self):
        from repro.sim import SchedulerQueue

        q = SchedulerQueue()
        h1 = q.schedule(1.0, "a")
        q.schedule(1.0, "b")
        assert q.cancel(h1) is True
        assert q.cancel(h1) is False  # idempotent
        assert q.pop() == (1.0, "b")
        assert len(q) == 0

    def test_cancel_after_pop_reports_false(self):
        from repro.sim import SchedulerQueue

        q = SchedulerQueue()
        h = q.schedule(1.0, "a")
        assert q.pop() == (1.0, "a")
        assert q.cancel(h) is False

    def test_reschedule_moves_item(self):
        from repro.sim import SchedulerQueue

        q = SchedulerQueue()
        h = q.schedule(9.0, "late")
        q.schedule(5.0, "mid")
        assert q.reschedule(h, 1.0) is not None
        assert q.pop() == (1.0, "late")
        assert q.pop() == (5.0, "mid")

    def test_peek_does_not_consume(self):
        from repro.sim import SchedulerQueue

        q = SchedulerQueue()
        q.schedule(2.0, "x")
        assert q.peek() == (2.0, "x")
        assert q.peek() == (2.0, "x")
        assert q.pop() == (2.0, "x")
        assert q.peek() is None


class TestSchedulerQueueProperties:
    """Random interleaved schedule/cancel/reschedule/pop against the model."""

    @staticmethod
    def _run_ops(ops):
        from repro.sim import SchedulerQueue

        real, model = SchedulerQueue(), NaiveQueueModel()
        real_handles, model_handles = [], []
        popped_real, popped_model = [], []
        item_counter = 0
        for kind, a, b in ops:
            if kind == "schedule":
                item = f"item{item_counter}"
                item_counter += 1
                real_handles.append(real.schedule(a, item))
                model_handles.append(model.schedule(a, item))
            elif kind == "cancel" and real_handles:
                idx = a % len(real_handles)
                assert real.cancel(real_handles[idx]) == model.cancel(model_handles[idx])
            elif kind == "reschedule" and real_handles:
                idx = a % len(real_handles)
                nh_real = real.reschedule(real_handles[idx], b)
                nh_model = model.reschedule(model_handles[idx], b)
                assert (nh_real is None) == (nh_model is None)
                if nh_real is not None:
                    real_handles.append(nh_real)
                    model_handles.append(nh_model)
            elif kind == "pop":
                popped_real.append(real.pop())
                popped_model.append(model.pop())
            assert len(real) == len(model)
        assert popped_real == popped_model
        # Drain both: no lost or duplicated events.
        rest_real = list(real.drain())
        rest_model = []
        while True:
            nxt = model.pop()
            if nxt is None:
                break
            rest_model.append(nxt)
        assert rest_real == rest_model
        assert len(real) == 0

    def test_known_interleaving(self):
        self._run_ops(
            [
                ("schedule", 3.0, None),
                ("schedule", 1.0, None),
                ("pop", 0, None),
                ("schedule", 1.0, None),
                ("cancel", 0, None),
                ("reschedule", 2, 0.5),
                ("pop", 0, None),
                ("pop", 0, None),
            ]
        )

    def test_property_random_interleavings(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings
        from hypothesis import strategies as st

        times = st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.0, 3.5, 7.0])
        op = st.one_of(
            st.tuples(st.just("schedule"), times, st.none()),
            st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=63), st.none()),
            st.tuples(st.just("reschedule"), st.integers(min_value=0, max_value=63), times),
            st.tuples(st.just("pop"), st.just(0), st.none()),
        )

        @given(ops=st.lists(op, max_size=60))
        @settings(deadline=None)
        def check(ops):
            self._run_ops(ops)

        check()


class TestRealtime:
    def test_realtime_roughly_tracks_wall_clock(self):
        import time

        from repro.sim import RealtimeEnvironment

        env = RealtimeEnvironment(factor=0.001)  # 1 sim unit = 1 ms

        def proc():
            yield env.timeout(30)

        p = env.process(proc())
        start = time.monotonic()
        env.run(until=p)
        elapsed = time.monotonic() - start
        assert elapsed >= 0.02  # at least ~20ms of real waiting happened
